//! Shared machinery for threshold-based learners: entropy, numeric
//! split search, and class histograms.

use crate::data::Dataset;

/// Shannon entropy (bits) of a class histogram.
pub(crate) fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Class histogram over the instances at `indices`.
pub(crate) fn histogram(data: &Dataset, indices: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; data.num_classes()];
    for &i in indices {
        counts[data.labels()[i]] += 1;
    }
    counts
}

/// Majority label among `indices` (falls back to dataset majority when
/// empty).
pub(crate) fn majority(data: &Dataset, indices: &[usize]) -> usize {
    let counts = histogram(data, indices);
    if counts.iter().all(|&c| c == 0) {
        return data.majority_class();
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, usize::MAX - i))
        .map(|(i, _)| i)
        .expect("non-empty histogram")
}

/// A candidate numeric split: `feature <= threshold` goes left.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Split {
    pub feature: usize,
    pub threshold: f64,
    /// Information gain of the split.
    pub gain: f64,
    /// Gain ratio (gain / split info); equals gain when split info is
    /// degenerate.
    pub gain_ratio: f64,
}

/// Find the best threshold split of `indices` on `feature`.
///
/// Candidate thresholds are midpoints between consecutive distinct
/// values; gain is computed incrementally in one sorted pass.
pub(crate) fn best_split_on_feature(
    data: &Dataset,
    indices: &[usize],
    feature: usize,
    min_leaf: usize,
) -> Option<Split> {
    let n = indices.len();
    if n < 2 * min_leaf {
        return None;
    }
    let mut order: Vec<usize> = indices.to_vec();
    order.sort_by(|&a, &b| {
        data.rows()[a][feature]
            .partial_cmp(&data.rows()[b][feature])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let total_counts = histogram(data, indices);
    let parent_entropy = entropy(&total_counts);
    let total = n as f64;

    let mut left_counts = vec![0usize; data.num_classes()];
    let mut best: Option<Split> = None;

    for k in 0..n - 1 {
        let i = order[k];
        left_counts[data.labels()[i]] += 1;
        let left_n = k + 1;
        let right_n = n - left_n;
        let value = data.rows()[i][feature];
        let next_value = data.rows()[order[k + 1]][feature];
        if value == next_value {
            continue; // can't split between equal values
        }
        if left_n < min_leaf || right_n < min_leaf {
            continue;
        }
        let right_counts: Vec<usize> = total_counts
            .iter()
            .zip(&left_counts)
            .map(|(&t, &l)| t - l)
            .collect();
        let p_left = left_n as f64 / total;
        let p_right = right_n as f64 / total;
        let child_entropy = p_left * entropy(&left_counts) + p_right * entropy(&right_counts);
        let gain = parent_entropy - child_entropy;
        if gain <= 1e-12 {
            continue;
        }
        let split_info = -(p_left * p_left.log2() + p_right * p_right.log2());
        let gain_ratio = if split_info > 1e-12 {
            gain / split_info
        } else {
            gain
        };
        let threshold = (value + next_value) / 2.0;
        let candidate = Split {
            feature,
            threshold,
            gain,
            gain_ratio,
        };
        let better = match &best {
            None => true,
            Some(b) => candidate.gain > b.gain,
        };
        if better {
            best = Some(candidate);
        }
    }
    best
}

/// Find the best split over all features, comparing by `use_gain_ratio`
/// (J48) or raw gain (REPTree).
pub(crate) fn best_split(
    data: &Dataset,
    indices: &[usize],
    min_leaf: usize,
    use_gain_ratio: bool,
) -> Option<Split> {
    let mut best: Option<Split> = None;
    for feature in 0..data.num_features() {
        if let Some(candidate) = best_split_on_feature(data, indices, feature, min_leaf) {
            let better = match &best {
                None => true,
                Some(b) => {
                    if use_gain_ratio {
                        candidate.gain_ratio > b.gain_ratio
                    } else {
                        candidate.gain > b.gain
                    }
                }
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    fn toy() -> Dataset {
        // Feature 0 separates perfectly at 4.5; feature 1 is noise.
        let mut d = Dataset::new(
            vec!["signal".into(), "noise".into()],
            vec!["neg".into(), "pos".into()],
        )
        .expect("schema");
        for i in 0..10 {
            d.push(vec![i as f64, (i % 3) as f64], usize::from(i >= 5))
                .expect("row");
        }
        d
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(entropy(&[0, 0]), 0.0);
        assert_eq!(entropy(&[10, 0]), 0.0);
        assert!((entropy(&[5, 5]) - 1.0).abs() < 1e-12);
        assert!(entropy(&[3, 3, 3]) > 1.0);
    }

    #[test]
    fn perfect_split_is_found() {
        let d = toy();
        let indices: Vec<usize> = (0..10).collect();
        let split = best_split(&d, &indices, 1, true).expect("split exists");
        assert_eq!(split.feature, 0);
        assert!((split.threshold - 4.5).abs() < 1e-9);
        assert!((split.gain - 1.0).abs() < 1e-9, "full bit of information");
    }

    #[test]
    fn min_leaf_blocks_tiny_partitions() {
        let d = toy();
        let indices: Vec<usize> = (0..10).collect();
        assert!(best_split(&d, &indices, 6, true).is_none());
    }

    #[test]
    fn constant_feature_yields_no_split() {
        let mut d =
            Dataset::new(vec!["flat".into()], vec!["a".into(), "b".into()]).expect("schema");
        for i in 0..6 {
            d.push(vec![1.0], i % 2).expect("row");
        }
        let indices: Vec<usize> = (0..6).collect();
        assert!(best_split(&d, &indices, 1, true).is_none());
    }

    #[test]
    fn majority_and_histogram() {
        let d = toy();
        let all: Vec<usize> = (0..10).collect();
        assert_eq!(histogram(&d, &all), vec![5, 5]);
        assert_eq!(majority(&d, &all), 0, "tie to lower index");
        assert_eq!(majority(&d, &[9]), 1);
        assert_eq!(majority(&d, &[]), 0, "empty falls back to dataset majority");
    }
}
