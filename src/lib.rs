//! `hbmd` — hardware-based malware detection, end to end.
//!
//! The facade crate of the suite: re-exports every subsystem so
//! downstream users depend on one crate.
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`events`] | `hbmd-events` | HPC event taxonomy and counter sets |
//! | [`uarch`] | `hbmd-uarch` | Haswell-shaped microarchitecture simulator |
//! | [`malware`] | `hbmd-malware` | behavioural malware/benign sample substrate |
//! | [`perf`] | `hbmd-perf` | PMU multiplexing, sampling, containers, CSV/ARFF |
//! | [`ml`] | `hbmd-ml` | WEKA-like classifiers, PCA, evaluation |
//! | [`fpga`] | `hbmd-fpga` | HLS-like area/latency/power cost model |
//! | [`core`] | `hbmd-core` | detector pipeline and experiment presets |
//! | [`obs`] | `hbmd-obs` | tracing spans, metrics, and run manifests |
//!
//! # Quickstart
//!
//! ```
//! use hbmd::core::{ClassifierKind, DetectorBuilder, FeatureSet};
//! use hbmd::malware::SampleCatalog;
//! use hbmd::perf::{Collector, CollectorConfig};
//!
//! // 1. Generate a labelled sample database (Table 1, shrunk).
//! let catalog = SampleCatalog::scaled(0.02, 7);
//! // 2. Run every sample in its container and collect HPC windows.
//! let collection = Collector::new(CollectorConfig::fast())?.collect(&catalog)?;
//! // 3. Train a detector with PCA-reduced features and evaluate 70/30.
//! let detector = DetectorBuilder::new()
//!     .classifier(ClassifierKind::JRip)
//!     .feature_set(FeatureSet::Top(8))
//!     .train_binary(&collection.dataset)?;
//! println!("accuracy: {:.1}%", detector.evaluation().accuracy() * 100.0);
//! # Ok::<(), hbmd::core::CoreError>(())
//! ```

pub use hbmd_core as core;
pub use hbmd_events as events;
pub use hbmd_fpga as fpga;
pub use hbmd_malware as malware;
pub use hbmd_ml as ml;
pub use hbmd_obs as obs;
pub use hbmd_perf as perf;
pub use hbmd_uarch as uarch;
