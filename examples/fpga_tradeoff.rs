//! The embedded-deployment trade-off: sweep feature counts and MLP
//! widths, watching accuracy, area, latency, power and energy move —
//! the design space behind the paper's "simple classifiers win in
//! hardware" conclusion.
//!
//! ```text
//! cargo run --release --example fpga_tradeoff
//! ```

use hbmd::core::{to_binary_dataset, FeaturePlan, FeatureSet};
use hbmd::fpga::{synthesize, SynthConfig, ToDatapath};
use hbmd::malware::SampleCatalog;
use hbmd::ml::{Classifier, Evaluation, JRip, Mlp, Mlr};
use hbmd::perf::{Collector, CollectorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = SampleCatalog::scaled(0.08, 3);
    let hpc = Collector::new(CollectorConfig::paper())
        .expect("config")
        .collect(&catalog)
        .expect("collect")
        .dataset;
    let (train_hpc, test_hpc) = hpc.split(0.7, 42);
    let plan = FeaturePlan::fit(&train_hpc)?;
    let train_full = to_binary_dataset(&train_hpc);
    let test_full = to_binary_dataset(&test_hpc);
    let synth = SynthConfig::default();

    println!("feature sweep (Logistic vs JRip):");
    println!(
        "{:>9} {:>10} {:>10} {:>12} {:>12}",
        "features", "MLR acc", "MLR area", "JRip acc", "JRip area"
    );
    for k in [2usize, 4, 8, 12, 16] {
        let indices = plan.resolve(FeatureSet::Top(k))?;
        let train = train_full.select_features(&indices)?;
        let test = test_full.select_features(&indices)?;

        let mut mlr = Mlr::new();
        mlr.fit(&train)?;
        let mlr_acc = Evaluation::of(&mlr, &test).accuracy();
        let mlr_area = synthesize(&mlr.datapath()?, &synth).area_units();

        let mut jrip = JRip::new();
        jrip.fit(&train)?;
        let jrip_acc = Evaluation::of(&jrip, &test).accuracy();
        let jrip_area = synthesize(&jrip.datapath()?, &synth).area_units();

        println!(
            "{:>9} {:>9.1}% {:>10.0} {:>11.1}% {:>12.0}",
            k,
            mlr_acc * 100.0,
            mlr_area,
            jrip_acc * 100.0,
            jrip_area
        );
    }

    println!("\nMLP width sweep (top-8 features):");
    println!(
        "{:>7} {:>10} {:>10} {:>9} {:>10} {:>12}",
        "hidden", "accuracy", "area", "cycles", "power mW", "energy nJ"
    );
    let indices = plan.resolve(FeatureSet::Top(8))?;
    let train = train_full.select_features(&indices)?;
    let test = test_full.select_features(&indices)?;
    for hidden in [2usize, 4, 8, 16, 32] {
        let mut mlp = Mlp::with_hidden(hidden);
        mlp.fit(&train)?;
        let accuracy = Evaluation::of(&mlp, &test).accuracy();
        let report = synthesize(&mlp.datapath()?, &synth);
        println!(
            "{:>7} {:>9.1}% {:>10.0} {:>9} {:>10.1} {:>12.2}",
            hidden,
            accuracy * 100.0,
            report.area_units(),
            report.latency_cycles,
            report.power_mw,
            report.energy_per_inference_nj()
        );
    }
    println!(
        "\nReading: the MLP buys a few accuracy points with an order of\n\
         magnitude more silicon — the wrong trade for an embedded monitor."
    );
    Ok(())
}
