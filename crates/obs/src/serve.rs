//! A tiny, dependency-free HTTP exposition server for long-running
//! monitors: `/metrics` (Prometheus text format 0.0.4), `/healthz`
//! (liveness), `/readyz` (readiness, from the supervisor's
//! [`Health`]), `/manifest` (the run's
//! [`RunManifest`](crate::manifest) JSON), and — when the host wires a
//! [`DebugHandler`] — `/debug/...` diagnostic endpoints (the fleet
//! monitor serves `/debug/recorder` ring statistics and
//! `/debug/bundle` on-demand diagnostic bundles through it).
//!
//! This is deliberately not a web framework: one `TcpListener`, one
//! accept-loop thread, one short-lived thread per connection, HTTP/1.0
//! semantics (`Connection: close`, explicit `Content-Length`). That is
//! all a scrape endpoint needs, and it keeps the observability layer's
//! "std only, loadable from every crate" contract intact.
//!
//! # Examples
//!
//! ```
//! use hbmd_obs::{serve, Registry};
//! use std::io::{Read, Write};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new());
//! registry.counter("demo.requests").add(3);
//! // Port 0 = ephemeral: the OS picks a free port.
//! let server = serve::serve("127.0.0.1:0", serve::ServeContext {
//!     registry: registry.clone(),
//!     manifest_json: "{}".to_owned(),
//!     health: None,
//!     fleet: None,
//!     debug: None,
//! })?;
//!
//! let mut stream = std::net::TcpStream::connect(server.local_addr())?;
//! write!(stream, "GET /metrics HTTP/1.0\r\n\r\n")?;
//! let mut response = String::new();
//! stream.read_to_string(&mut response)?;
//! assert!(response.starts_with("HTTP/1.0 200 OK"));
//! assert!(response.contains("hbmd_demo_requests_total 3"));
//! server.shutdown()?;
//! # Ok::<(), std::io::Error>(())
//! ```

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::health::{FleetHealth, Health};
use crate::metrics::Registry;
use crate::prom;

/// A reply from a [`DebugHandler`]: an HTTP status code plus a JSON
/// body. Unknown status codes are served as `500`.
#[derive(Debug, Clone)]
pub struct DebugReply {
    /// HTTP status code (200, 404, 500, or 503).
    pub status: u16,
    /// JSON response body.
    pub body: String,
}

/// Host-provided handler for `/debug/...` paths. Returning `None`
/// falls through to the server's 404; this keeps the dependency
/// direction clean — the fleet layer hands its recorder hooks down
/// instead of `hbmd-obs` reaching up.
pub type DebugHandler = Arc<dyn Fn(&str) -> Option<DebugReply> + Send + Sync>;

/// What the server exposes: a live registry and a pre-rendered
/// manifest document.
#[derive(Clone)]
pub struct ServeContext {
    /// Snapshotted afresh on every `/metrics` request.
    pub registry: Arc<Registry>,
    /// Served verbatim at `/manifest` (must be a JSON document).
    pub manifest_json: String,
    /// Supervisor health backing `/readyz`. With `None`, `/readyz`
    /// mirrors `/healthz` (an unsupervised exposition is ready as soon
    /// as it binds).
    pub health: Option<Arc<Health>>,
    /// Sharded fleet health; when set it takes precedence over
    /// `health` and `/readyz` reports quorum readiness plus one line
    /// per shard.
    pub fleet: Option<Arc<FleetHealth>>,
    /// Handler for `/debug/...` paths (`/debug/recorder`,
    /// `/debug/bundle`); with `None` they 404 like any other path.
    pub debug: Option<DebugHandler>,
}

impl std::fmt::Debug for ServeContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeContext").finish_non_exhaustive()
    }
}

/// A running exposition server; dropping it (or calling
/// [`shutdown`](Server::shutdown)) stops the accept loop.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
}

/// Bind `addr` (e.g. `"127.0.0.1:9185"`, port `0` for ephemeral) and
/// serve the context until [`Server::shutdown`] or drop.
///
/// # Errors
///
/// Propagates the bind failure; per-connection I/O errors are absorbed
/// by the accept loop (a broken scrape must not kill the monitor).
pub fn serve(addr: impl ToSocketAddrs, context: ServeContext) -> io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let loop_stop = Arc::clone(&stop);
    let accept_loop = std::thread::Builder::new()
        .name("hbmd-obs-serve".to_owned())
        .spawn(move || {
            for stream in listener.incoming() {
                if loop_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let context = context.clone();
                // Short-lived worker per connection so one stuck
                // client cannot block the next scrape.
                let _ = std::thread::Builder::new()
                    .name("hbmd-obs-conn".to_owned())
                    .spawn(move || {
                        let _ = handle_connection(stream, &context);
                    });
            }
        })?;
    Ok(Server {
        local_addr,
        stop,
        accept_loop: Some(accept_loop),
    })
}

impl Server {
    /// The bound address — with port `0` this is where the OS put us.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting connections and join the accept loop.
    ///
    /// # Errors
    ///
    /// Returns an error when the accept-loop thread panicked.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop_and_join()
            .map_err(|_| io::Error::other("serve accept loop panicked"))
    }

    fn stop_and_join(&mut self) -> std::thread::Result<()> {
        let Some(handle) = self.accept_loop.take() else {
            return Ok(());
        };
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept so the loop observes the flag. A
        // failure here means the listener is already dead, which is
        // fine — the loop exits on the accept error path too.
        let _ = TcpStream::connect(self.local_addr);
        handle.join()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.stop_and_join();
    }
}

/// Maximum bytes of request head we are willing to buffer.
const MAX_REQUEST: usize = 16 * 1024;

fn handle_connection(mut stream: TcpStream, context: &ServeContext) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let request = match read_request_head(&mut stream)? {
        RequestHead::Complete(request) => request,
        RequestHead::TooLarge => {
            // Refuse to buffer an unbounded header block; answer with
            // 431 and drop the connection without reading further.
            return write_response(
                &mut stream,
                "431 Request Header Fields Too Large",
                "text/plain; charset=utf-8",
                "request header too large\n",
                false,
            );
        }
    };
    let (status, content_type, body) = route(&request, context);
    let head_only = request.method == "HEAD";
    write_response(&mut stream, status, content_type, &body, head_only)
}

struct Request {
    method: String,
    path: String,
}

enum RequestHead {
    Complete(Request),
    /// The header block exceeded [`MAX_REQUEST`] before terminating.
    TooLarge,
}

fn read_request_head(stream: &mut TcpStream) -> io::Result<RequestHead> {
    let mut buffer = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buffer.extend_from_slice(&chunk[..n]);
        if buffer.windows(4).any(|w| w == b"\r\n\r\n") || buffer.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buffer.len() > MAX_REQUEST {
            return Ok(RequestHead::TooLarge);
        }
    }
    let text = String::from_utf8_lossy(&buffer);
    let first = text.lines().next().unwrap_or_default();
    let mut parts = first.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let target = parts.next().unwrap_or_default();
    // Strip any query string; scrape endpoints take no parameters.
    let path = target.split('?').next().unwrap_or_default().to_owned();
    Ok(RequestHead::Complete(Request { method, path }))
}

fn route(request: &Request, context: &ServeContext) -> (&'static str, &'static str, String) {
    if request.method != "GET" && request.method != "HEAD" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_owned(),
        );
    }
    match request.path.as_str() {
        "/metrics" => (
            "200 OK",
            prom::CONTENT_TYPE,
            prom::render(&context.registry.snapshot()),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
        "/readyz" => {
            match (&context.fleet, &context.health) {
                (Some(fleet), _) => {
                    // Quorum readiness plus one line per shard — the
                    // bulkhead view: a restarting shard is visible without
                    // flipping the fleet out of the load balancer.
                    let mut body =
                        format!(
                    "{}\nrestarts {}\ntrips {}\nshards {} ready {}\nquarantined {}\nshed {}\n",
                    if fleet.is_ready() { "ready" } else { "degraded" },
                    fleet.restarts(),
                    fleet.trips(),
                    fleet.shards(),
                    fleet.ready_shards(),
                    fleet.quarantined(),
                    fleet.shed(),
                );
                    for shard in 0..fleet.shards() {
                        let health = fleet.shard(shard);
                        body.push_str(&format!(
                            "shard {} {} restarts {} trips {}\n",
                            shard,
                            health.state(),
                            health.restarts(),
                            health.trips()
                        ));
                    }
                    if fleet.is_ready() {
                        ("200 OK", "text/plain; charset=utf-8", body)
                    } else {
                        ("503 Service Unavailable", "text/plain; charset=utf-8", body)
                    }
                }
                // Unsupervised expositions are ready by construction.
                (None, None) => ("200 OK", "text/plain; charset=utf-8", "ready\n".to_owned()),
                (None, Some(health)) => {
                    let state = health.state();
                    let body = format!(
                        "{}\nrestarts {}\ntrips {}\n",
                        state,
                        health.restarts(),
                        health.trips()
                    );
                    if health.is_ready() {
                        ("200 OK", "text/plain; charset=utf-8", body)
                    } else {
                        ("503 Service Unavailable", "text/plain; charset=utf-8", body)
                    }
                }
            }
        }
        "/manifest" => (
            "200 OK",
            "application/json; charset=utf-8",
            context.manifest_json.clone(),
        ),
        path if path.starts_with("/debug/") => {
            if let Some(reply) = context.debug.as_ref().and_then(|handler| handler(path)) {
                let status = match reply.status {
                    200 => "200 OK",
                    404 => "404 Not Found",
                    503 => "503 Service Unavailable",
                    _ => "500 Internal Server Error",
                };
                return (status, "application/json; charset=utf-8", reply.body);
            }
            (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found; no debug handler for this path\n".to_owned(),
            )
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /healthz, /readyz, /manifest, /debug/recorder\n".to_owned(),
        ),
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
    head_only: bool,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    if !head_only {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    fn routes_and_shutdown() {
        let registry = Arc::new(Registry::new());
        registry.counter("serve.test").add(9);
        let server = serve(
            "127.0.0.1:0",
            ServeContext {
                registry,
                manifest_json: "{\"tool\": \"test\"}".to_owned(),
                health: None,
                fleet: None,
                debug: None,
            },
        )
        .expect("bind ephemeral");
        let addr = server.local_addr();

        let metrics = get(addr, "GET /metrics HTTP/1.0\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.0 200 OK"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("hbmd_serve_test_total 9"));

        let health = get(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(health.ends_with("ok\n"));

        let manifest = get(addr, "GET /manifest HTTP/1.0\r\n\r\n");
        assert!(manifest.contains("application/json"));
        assert!(manifest.contains("{\"tool\": \"test\"}"));

        let missing = get(addr, "GET /nope HTTP/1.0\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.0 404"));

        let put = get(addr, "PUT /metrics HTTP/1.0\r\n\r\n");
        assert!(put.starts_with("HTTP/1.0 405"));

        server.shutdown().expect("clean shutdown");
    }

    #[test]
    fn head_requests_omit_the_body() {
        let server = serve(
            "127.0.0.1:0",
            ServeContext {
                registry: Arc::new(Registry::new()),
                manifest_json: "{}".to_owned(),
                health: None,
                fleet: None,
                debug: None,
            },
        )
        .expect("bind");
        let response = get(server.local_addr(), "HEAD /healthz HTTP/1.0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 200 OK"));
        assert!(response.contains("Content-Length: 3"));
        assert!(!response.ends_with("ok\n"));
    }

    #[test]
    fn readyz_reflects_supervisor_state() {
        let health = Arc::new(crate::health::Health::new());
        let server = serve(
            "127.0.0.1:0",
            ServeContext {
                registry: Arc::new(Registry::new()),
                manifest_json: "{}".to_owned(),
                health: Some(Arc::clone(&health)),
                fleet: None,
                debug: None,
            },
        )
        .expect("bind");
        let addr = server.local_addr();

        // Starting → not ready.
        let starting = get(addr, "GET /readyz HTTP/1.0\r\n\r\n");
        assert!(starting.starts_with("HTTP/1.0 503"));
        assert!(starting.contains("starting"));

        health.set_state(crate::health::ServiceState::Ready);
        health.record_restart();
        let ready = get(addr, "GET /readyz HTTP/1.0\r\n\r\n");
        assert!(ready.starts_with("HTTP/1.0 200"));
        assert!(ready.contains("ready"));
        assert!(ready.contains("restarts 1"));

        health.set_state(crate::health::ServiceState::Degraded);
        let degraded = get(addr, "GET /readyz HTTP/1.0\r\n\r\n");
        assert!(degraded.starts_with("HTTP/1.0 503"));
        assert!(degraded.contains("degraded"));

        // Liveness stays 200 regardless of readiness.
        let live = get(addr, "GET /healthz HTTP/1.0\r\n\r\n");
        assert!(live.starts_with("HTTP/1.0 200"));
    }

    #[test]
    fn readyz_reports_per_shard_fleet_state() {
        let fleet = Arc::new(crate::health::FleetHealth::new(3));
        let server = serve(
            "127.0.0.1:0",
            ServeContext {
                registry: Arc::new(Registry::new()),
                manifest_json: "{}".to_owned(),
                health: None,
                fleet: Some(Arc::clone(&fleet)),
                debug: None,
            },
        )
        .expect("bind");
        let addr = server.local_addr();

        // All shards starting → no quorum → 503.
        let starting = get(addr, "GET /readyz HTTP/1.0\r\n\r\n");
        assert!(starting.starts_with("HTTP/1.0 503"));
        assert!(starting.contains("shards 3 ready 0"));

        // Two of three ready is a strict majority, even with the third
        // shard restarting — the bulkhead keeps the fleet in rotation.
        fleet.shard(0).set_state(crate::health::ServiceState::Ready);
        fleet.shard(1).set_state(crate::health::ServiceState::Ready);
        fleet
            .shard(2)
            .set_state(crate::health::ServiceState::Restarting);
        fleet.shard(2).record_restart();
        fleet.record_quarantine();
        let ready = get(addr, "GET /readyz HTTP/1.0\r\n\r\n");
        assert!(ready.starts_with("HTTP/1.0 200"), "got: {ready}");
        assert!(ready.contains("shards 3 ready 2"));
        assert!(ready.contains("shard 2 restarting restarts 1"));
        assert!(ready.contains("quarantined 1"));
    }

    #[test]
    fn readyz_without_health_mirrors_healthz() {
        let server = serve(
            "127.0.0.1:0",
            ServeContext {
                registry: Arc::new(Registry::new()),
                manifest_json: "{}".to_owned(),
                health: None,
                fleet: None,
                debug: None,
            },
        )
        .expect("bind");
        let response = get(server.local_addr(), "GET /readyz HTTP/1.0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 200"));
    }

    #[test]
    fn oversized_request_heads_get_431() {
        let server = serve(
            "127.0.0.1:0",
            ServeContext {
                registry: Arc::new(Registry::new()),
                manifest_json: "{}".to_owned(),
                health: None,
                fleet: None,
                debug: None,
            },
        )
        .expect("bind");
        // A header block that never terminates and exceeds the cap.
        // The server may answer (and stop reading) mid-write, so write
        // errors are expected and ignored.
        let mut request = String::from("GET /metrics HTTP/1.0\r\n");
        request.push_str(&"X-Filler: aaaaaaaaaaaaaaaaaaaaaaaa\r\n".repeat(1024));
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let _ = stream.write_all(request.as_bytes());
        let _ = stream.flush();
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(
            response.starts_with("HTTP/1.0 431"),
            "expected 431, got: {}",
            response.lines().next().unwrap_or_default()
        );
    }

    #[test]
    fn query_strings_are_ignored() {
        let server = serve(
            "127.0.0.1:0",
            ServeContext {
                registry: Arc::new(Registry::new()),
                manifest_json: "{}".to_owned(),
                health: None,
                fleet: None,
                debug: None,
            },
        )
        .expect("bind");
        let response = get(
            server.local_addr(),
            "GET /healthz?verbose=1 HTTP/1.0\r\n\r\n",
        );
        assert!(response.starts_with("HTTP/1.0 200 OK"));
    }
}
