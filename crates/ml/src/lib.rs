//! A WEKA-like machine learning library, implemented from scratch.
//!
//! The reference evaluation trained and tested its malware classifiers
//! in WEKA 3. This crate provides the same toolbox as a pure-Rust
//! library with no external ML dependencies:
//!
//! * [`Dataset`] — instances with numeric features and a nominal class
//!   (the in-memory ARFF equivalent),
//! * the [`Classifier`] trait and twelve implementations mirroring the
//!   WEKA classifiers the evaluation exercises:
//!   [`ZeroR`], [`OneR`], [`DecisionStump`], [`J48`] (C4.5),
//!   [`RepTree`], [`JRip`] (RIPPER), [`NaiveBayes`],
//!   [`Logistic`]/[`Mlr`] (multinomial logistic regression),
//!   [`Mlp`] (multilayer perceptron), [`LinearSvm`] (Pegasos SVM),
//!   and [`Ibk`] (k-nearest neighbours),
//! * [`Pca`] — principal component analysis with WEKA-Ranker-style
//!   attribute ranking (the paper's feature-reduction engine),
//! * [`Standardize`] / [`MinMaxNormalize`] filters,
//! * [`Evaluation`] / [`ConfusionMatrix`] / [`cross_validate`] —
//!   train/test and k-fold evaluation with per-class metrics,
//! * [`par`] — a deterministic, ordering-preserving `par_map` used to
//!   fan training/evaluation loops out across scoped threads,
//! * [`compiled`] — flat, branchless evaluators ([`CompiledModel`])
//!   that fitted tree/rule/ensemble schemes lower into for fast
//!   batched prediction.
//!
//! [`Dataset`] stores its feature matrix as one contiguous row-major
//! allocation; [`Dataset::rows`] hands out `&[f64]` views
//! ([`RowsView`]), so scans stay cache-friendly and projections are
//! single allocations.
//!
//! # Examples
//!
//! ```
//! use hbmd_ml::{Classifier, Dataset, Evaluation, J48};
//!
//! // A trivially separable two-class problem.
//! let mut data = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()])?;
//! for i in 0..60 {
//!     data.push(vec![i as f64], usize::from(i >= 30))?;
//! }
//! let (train, test) = data.split(0.7, 42);
//!
//! let mut tree = J48::new();
//! tree.fit(&train)?;
//! let eval = Evaluation::of(&tree, &test);
//! assert!(eval.accuracy() > 0.9);
//! # Ok::<(), hbmd_ml::MlError>(())
//! ```

mod classifier;
mod classifiers;
pub mod compiled;
mod data;
mod ensemble;
mod eval;
mod filter;
mod linalg;
pub mod par;
mod pca;
mod roc;
pub mod snap;

pub use classifier::{fit_timed, Classifier};
pub use classifiers::ibk::Ibk;
pub use classifiers::j48::J48;
pub use classifiers::jrip::{Condition, JRip, Rule};
pub use classifiers::logistic::{Logistic, Mlr};
pub use classifiers::mlp::Mlp;
pub use classifiers::naive_bayes::NaiveBayes;
pub use classifiers::one_r::OneR;
pub use classifiers::rep_tree::RepTree;
pub use classifiers::stump::DecisionStump;
pub use classifiers::svm::LinearSvm;
pub use classifiers::zero_r::ZeroR;
pub use compiled::{CompiledEnsemble, CompiledForest, CompiledModel, CompiledRules, CompiledTree};
pub use data::{Dataset, MlError, RowsView};
pub use ensemble::{AdaBoostM1, Bagging, RandomForest};
pub use eval::{cross_validate, cross_validate_with_threads, ConfusionMatrix, Evaluation};
pub use filter::{Impute, MinMaxNormalize, Standardize};
pub use linalg::{covariance_matrix, jacobi_eigen, Matrix};
pub use pca::{Pca, RankedAttribute};
pub use roc::{RocCurve, RocPoint};
pub use snap::{Snap, SnapError, SnapReader, SnapWriter};
