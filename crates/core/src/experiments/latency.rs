//! Run-time detection-latency extension: how many 10 ms windows does
//! the online monitor need before a freshly launched specimen trips
//! the alarm?
//!
//! The thesis' future-work section calls out "reducing latency in the
//! process of data collection" for real-time deployment; this
//! experiment quantifies the baseline the suite achieves.

use hbmd_malware::{AppClass, Sample, SampleId};
use hbmd_perf::{Sampler, SamplerConfig};
use serde::{Deserialize, Serialize};

use crate::detector::DetectorBuilder;
use crate::error::CoreError;
use crate::experiments::cache::CollectCache;
use crate::experiments::ExperimentConfig;
use crate::features::FeatureSet;
use crate::online::{OnlineDetector, OnlineVerdict};
use crate::suite::ClassifierKind;

/// Detection-latency statistics for one malware family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Malware family observed.
    pub class: AppClass,
    /// Specimens that tripped the alarm within the observation budget.
    pub detected: usize,
    /// Specimens observed.
    pub observed: usize,
    /// Mean windows-to-alarm among detected specimens (each window is
    /// one 10 ms sampling period).
    pub mean_windows_to_alarm: f64,
}

impl LatencyRow {
    /// Detection rate within the observation budget.
    pub fn detection_rate(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.detected as f64 / self.observed as f64
        }
    }

    /// Mean time to alarm in simulated milliseconds (10 ms per window).
    pub fn mean_ms_to_alarm(&self) -> f64 {
        self.mean_windows_to_alarm * 10.0
    }
}

/// Measure windows-to-alarm per family: train a J48 detector on the
/// configured collection, then stream `specimens_per_class` *unseen*
/// specimens (fresh ids beyond the catalog) through an
/// [`OnlineDetector`] with a 4-window voting window and a 3-vote
/// threshold, for up to `max_windows` windows each.
///
/// # Errors
///
/// Propagates collection, training, and sampler-configuration errors.
pub fn windows_to_alarm(
    config: &ExperimentConfig,
    specimens_per_class: usize,
    max_windows: usize,
) -> Result<Vec<LatencyRow>, CoreError> {
    windows_to_alarm_with(
        CollectCache::global(),
        config,
        specimens_per_class,
        max_windows,
    )
}

/// [`windows_to_alarm`] against an explicit [`CollectCache`].
///
/// # Errors
///
/// Propagates collection, training, and sampler-configuration errors.
pub fn windows_to_alarm_with(
    cache: &CollectCache,
    config: &ExperimentConfig,
    specimens_per_class: usize,
    max_windows: usize,
) -> Result<Vec<LatencyRow>, CoreError> {
    if specimens_per_class == 0 || max_windows == 0 {
        return Err(CoreError::Config(
            "need at least one specimen and one window".to_owned(),
        ));
    }
    let collection = cache.collect(config)?;
    let detector = DetectorBuilder::new()
        .classifier(ClassifierKind::J48)
        .feature_set(FeatureSet::Top(8))
        .train_binary(&collection.dataset)?;

    let sampler = Sampler::new(SamplerConfig {
        windows_per_sample: max_windows,
        ..config.collector.sampler.clone()
    })?;

    let mut rows = Vec::with_capacity(AppClass::MALWARE.len());
    for class in AppClass::MALWARE {
        let mut detected = 0usize;
        let mut total_windows = 0usize;
        for k in 0..specimens_per_class {
            // Fresh specimen ids beyond any catalog id, so the detector
            // has never seen these samples.
            let sample = Sample::generate(
                SampleId(1_000_000 + (class.index() * specimens_per_class + k) as u32),
                class,
                config.catalog_seed ^ 0xDEC0DE,
            );
            let mut monitor = OnlineDetector::builder(detector.clone())
                .window(4)
                .threshold(3)
                .build()
                .expect("static monitor shape");
            for (w, window) in sampler.collect_sample(&sample).iter().enumerate() {
                if matches!(monitor.observe(window), OnlineVerdict::Alarm { .. }) {
                    detected += 1;
                    total_windows += w + 1;
                    break;
                }
            }
        }
        rows.push(LatencyRow {
            class,
            detected,
            observed: specimens_per_class,
            mean_windows_to_alarm: if detected == 0 {
                f64::NAN
            } else {
                total_windows as f64 / detected as f64
            },
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_families_trip_the_alarm_quickly() {
        let rows = windows_to_alarm(&ExperimentConfig::fast(), 4, 16).expect("experiment");
        assert_eq!(rows.len(), 5);
        let total_detected: usize = rows.iter().map(|r| r.detected).sum();
        let total_observed: usize = rows.iter().map(|r| r.observed).sum();
        assert!(
            total_detected as f64 / total_observed as f64 > 0.6,
            "detected {total_detected}/{total_observed}"
        );
        for row in &rows {
            if row.detected > 0 {
                // The voting window needs at least 3 votes.
                assert!(row.mean_windows_to_alarm >= 3.0, "{}", row.class);
                assert!(row.mean_ms_to_alarm() >= 30.0);
            }
        }
    }

    #[test]
    fn degenerate_budgets_are_rejected() {
        assert!(windows_to_alarm(&ExperimentConfig::fast(), 0, 8).is_err());
        assert!(windows_to_alarm(&ExperimentConfig::fast(), 1, 0).is_err());
    }
}
