//! Run-time monitoring: a trained detector watches a live stream of
//! 10 ms counter windows through a sliding majority-vote window — a
//! benign workload, then a worm infection mid-stream.
//!
//! ```text
//! cargo run --release --example online_monitor
//! ```

use hbmd::core::{ClassifierKind, DetectorBuilder, FeatureSet, OnlineDetector, OnlineVerdict};
use hbmd::malware::{AppClass, Sample, SampleCatalog, SampleId};
use hbmd::perf::{Collector, CollectorConfig, Sampler, SamplerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train offline, as the paper does.
    let catalog = SampleCatalog::scaled(0.05, 21);
    let dataset = Collector::new(CollectorConfig::paper())?
        .collect(&catalog)?
        .dataset;
    let detector = DetectorBuilder::new()
        .classifier(ClassifierKind::J48)
        .feature_set(FeatureSet::Top(8))
        .train_binary(&dataset)?;
    println!(
        "trained J48 detector: {:.1}% held-out accuracy",
        detector.evaluation().accuracy() * 100.0
    );

    // Monitor a synthetic timeline: 12 benign windows, then the worm.
    let mut monitor = OnlineDetector::builder(detector)
        .window(4)
        .threshold(3)
        .build()?;
    let sampler = Sampler::new(SamplerConfig {
        windows_per_sample: 12,
        ..SamplerConfig::paper()
    })?;
    let benign = Sample::generate(SampleId(5000), AppClass::Benign, 77);
    let worm = Sample::generate(SampleId(5001), AppClass::Worm, 78);

    println!("\ntime    phase    verdict");
    let mut t_ms = 0.0;
    for (phase, sample) in [("benign", &benign), ("WORM", &worm)] {
        for window in sampler.collect_sample(sample) {
            t_ms += 10.0;
            let verdict = monitor.observe(&window);
            let text = match verdict {
                OnlineVerdict::Warmup => "warming up".to_owned(),
                OnlineVerdict::Clean => "clean".to_owned(),
                OnlineVerdict::Alarm { family, votes, of } => {
                    format!("ALARM ({family}, {votes}/{of} windows)")
                }
            };
            println!("{t_ms:>5.0}ms  {phase:<7}  {text}");
        }
    }
    Ok(())
}
