//! Minimal dense linear algebra: just enough for PCA (covariance and a
//! Jacobi eigensolver for symmetric matrices).

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use hbmd_ml::Matrix;
///
/// let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.transposed().get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics when `rows` is empty or ragged.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Matrix {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "ragged rows are not a matrix"
        );
        let data = rows.into_iter().flatten().collect();
        Matrix {
            rows: 0,
            cols,
            data,
        }
        .with_recomputed_rows()
    }

    fn with_recomputed_rows(mut self) -> Matrix {
        self.rows = self.data.len() / self.cols;
        self
    }

    /// Row count.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Set the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// One row as a slice.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row out of range");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// One column, copied.
    pub fn col(&self, col: usize) -> Vec<f64> {
        assert!(col < self.cols, "column out of range");
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// The transpose.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// `true` when the matrix equals its transpose within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != num_cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }
}

/// Covariance matrix of `rows` (population covariance over mean-centred
/// columns).
///
/// # Panics
///
/// Panics when `rows` is empty or ragged.
pub fn covariance_matrix(rows: &[Vec<f64>]) -> Matrix {
    assert!(!rows.is_empty(), "covariance needs at least one row");
    let d = rows[0].len();
    assert!(rows.iter().all(|r| r.len() == d), "ragged rows");
    let n = rows.len() as f64;
    let means: Vec<f64> = (0..d)
        .map(|j| rows.iter().map(|r| r[j]).sum::<f64>() / n)
        .collect();
    let mut cov = Matrix::zeros(d, d);
    for i in 0..d {
        for j in i..d {
            let c = rows
                .iter()
                .map(|r| (r[i] - means[i]) * (r[j] - means[j]))
                .sum::<f64>()
                / n;
            cov.set(i, j, c);
            cov.set(j, i, c);
        }
    }
    cov
}

/// Eigen-decomposition of a symmetric matrix via cyclic Jacobi
/// rotations. Returns `(eigenvalues, eigenvectors)` sorted by descending
/// eigenvalue; eigenvector `k` is the `k`-th *column* of the returned
/// matrix.
///
/// # Panics
///
/// Panics when `m` is not symmetric (tolerance `1e-9`).
pub fn jacobi_eigen(m: &Matrix) -> (Vec<f64>, Matrix) {
    assert!(
        m.is_symmetric(1e-9),
        "jacobi_eigen requires a symmetric matrix"
    );
    let n = m.num_rows();
    let mut a = m.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..100 {
        // Largest magnitude off-diagonal element.
        let mut off = 0.0f64;
        for r in 0..n {
            for c in (r + 1)..n {
                off += a.get(r, c).powi(2);
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a.get(i, i), i)).collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
    let eigenvalues: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_col, v.get(r, old_col));
        }
    }
    (eigenvalues, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.num_cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_and_symmetry() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 5.0]]);
        assert!(m.is_symmetric(1e-12));
        assert_eq!(m.transposed(), m);
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!(!a.is_symmetric(1e-12));
    }

    #[test]
    fn mul_vec_works() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn covariance_of_known_data() {
        // x and y perfectly correlated: cov = var.
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let cov = covariance_matrix(&rows);
        assert!((cov.get(0, 0) - 2.0).abs() < 1e-9); // var of 0..4 = 2
        assert!((cov.get(0, 1) - 4.0).abs() < 1e-9);
        assert!((cov.get(1, 1) - 8.0).abs() < 1e-9);
        assert!(cov.is_symmetric(1e-12));
    }

    #[test]
    fn jacobi_recovers_diagonal_eigenvalues() {
        let m = Matrix::from_rows(vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let (values, vectors) = jacobi_eigen(&m);
        assert!((values[0] - 3.0).abs() < 1e-9);
        assert!((values[1] - 2.0).abs() < 1e-9);
        assert!((values[2] - 1.0).abs() < 1e-9);
        // First eigenvector is e0.
        assert!((vectors.get(0, 0).abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_satisfies_eigen_equation() {
        let m = Matrix::from_rows(vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ]);
        let (values, vectors) = jacobi_eigen(&m);
        for (k, value) in values.iter().enumerate() {
            let v: Vec<f64> = vectors.col(k);
            let mv = m.mul_vec(&v);
            for i in 0..3 {
                assert!(
                    (mv[i] - value * v[i]).abs() < 1e-6,
                    "A·v = λ·v failed for eigenpair {k}"
                );
            }
        }
        // Eigenvalues descend.
        assert!(values[0] >= values[1] && values[1] >= values[2]);
        // Eigenvectors are unit length.
        for k in 0..3 {
            let norm: f64 = vectors.col(k).iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn jacobi_trace_is_preserved() {
        let m = Matrix::from_rows(vec![
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let (values, _) = jacobi_eigen(&m);
        let trace: f64 = values.iter().sum();
        assert!((trace - 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn jacobi_rejects_asymmetric() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let _ = jacobi_eigen(&m);
    }
}
