//! Principal component analysis with WEKA-style attribute ranking.
//!
//! The reference evaluation ran WEKA's `PrincipalComponents -R 0.95`
//! attribute evaluator with the `Ranker` search to (a) inspect the
//! eigenvectors, (b) rank the original 16 counters, and (c) pick the
//! top-8 / top-4 reduced feature sets per malware class. This module
//! reproduces all three uses plus the top-2-component projection behind
//! the thesis' per-class PCA scatter plots (Figures 9–12).

use serde::{Deserialize, Serialize};

use crate::data::{Dataset, MlError};
use crate::filter::Standardize;
use crate::linalg::{covariance_matrix, jacobi_eigen, Matrix};

/// One original attribute with its PCA-derived importance score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedAttribute {
    /// Column index in the original dataset.
    pub feature: usize,
    /// Attribute name.
    pub name: String,
    /// Eigenvalue-weighted loading magnitude (higher = more important).
    pub score: f64,
}

/// A fitted PCA model.
///
/// # Examples
///
/// ```
/// use hbmd_ml::{Dataset, Pca};
///
/// let mut data = Dataset::new(
///     vec!["a".into(), "b".into()],
///     vec!["x".into(), "y".into()],
/// )?;
/// for i in 0..20 {
///     // b is a noisy copy of a: one dominant component.
///     data.push(vec![i as f64, i as f64 + (i % 3) as f64 * 0.1], i % 2)?;
/// }
/// let pca = Pca::fit(&data)?;
/// assert!(pca.explained_variance_ratio()[0] > 0.95);
/// let projected = pca.transform_row(&[10.0, 10.0]);
/// assert_eq!(projected.len(), 2);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    standardize: Standardize,
    feature_names: Vec<String>,
    /// Eigenvalues, descending.
    eigenvalues: Vec<f64>,
    /// Eigenvector `k` is column `k`.
    components: Matrix,
}

impl Pca {
    /// Fit on a dataset's feature matrix (features are standardised
    /// first, as WEKA does).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] when `data` has no rows.
    pub fn fit(data: &Dataset) -> Result<Pca, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let _span = hbmd_obs::span!("pca.fit", rows = data.len());
        hbmd_obs::incr("pca.fits");
        let standardize = Standardize::fit(data);
        let rows: Vec<Vec<f64>> = data
            .rows()
            .iter()
            .map(|r| standardize.transform_row(r))
            .collect();
        let cov = covariance_matrix(&rows);
        let (eigenvalues, components) = jacobi_eigen(&cov);
        // Numerical noise can leave tiny negatives; clamp.
        let eigenvalues = eigenvalues.into_iter().map(|v| v.max(0.0)).collect();
        Ok(Pca {
            standardize,
            feature_names: data.feature_names().to_vec(),
            eigenvalues,
            components,
        })
    }

    /// Eigenvalues in descending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Eigenvector (principal component) `k` as a loading vector over
    /// the original features.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    pub fn component(&self, k: usize) -> Vec<f64> {
        self.components.col(k)
    }

    /// Fraction of total variance each component explains.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.eigenvalues.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues.iter().map(|&v| v / total).collect()
    }

    /// Number of leading components needed to cover `fraction` of the
    /// variance (WEKA's `-R 0.95`).
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is not within `(0, 1]`.
    pub fn components_for_variance(&self, fraction: f64) -> usize {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let ratios = self.explained_variance_ratio();
        let mut cumulative = 0.0;
        for (k, r) in ratios.iter().enumerate() {
            cumulative += r;
            if cumulative >= fraction - 1e-12 {
                return k + 1;
            }
        }
        ratios.len()
    }

    /// Project one row onto the leading `k` components (all components
    /// when `k >= num_features`).
    pub fn transform_row_k(&self, row: &[f64], k: usize) -> Vec<f64> {
        let x = self.standardize.transform_row(row);
        let k = k.min(self.eigenvalues.len());
        (0..k)
            .map(|c| {
                self.components
                    .col(c)
                    .iter()
                    .zip(&x)
                    .map(|(l, xi)| l * xi)
                    .sum()
            })
            .collect()
    }

    /// Project one row onto all components.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        self.transform_row_k(row, usize::MAX)
    }

    /// Project a whole dataset onto the leading `k` components; feature
    /// names become `PC1..PCk`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn transform(&self, data: &Dataset, k: usize) -> Dataset {
        assert!(k > 0, "k must be non-zero");
        let k = k.min(self.eigenvalues.len());
        let rows: Vec<Vec<f64>> = data
            .rows()
            .iter()
            .map(|r| self.transform_row_k(r, k))
            .collect();
        Dataset::from_rows(
            (1..=k).map(|i| format!("PC{i}")).collect(),
            data.class_names().to_vec(),
            rows,
            data.labels().to_vec(),
        )
        .expect("projection preserves schema")
    }

    /// Rank the *original* attributes by eigenvalue-weighted loading
    /// magnitude — WEKA's `PrincipalComponents` + `Ranker` output, the
    /// mechanism behind the paper's reduced feature sets (Table 2).
    ///
    /// `variance_fraction` limits the components considered (0.95 in
    /// the reference run).
    pub fn rank_attributes(&self, variance_fraction: f64) -> Vec<RankedAttribute> {
        let use_components = self.components_for_variance(variance_fraction);
        let ratios = self.explained_variance_ratio();
        let mut ranked: Vec<RankedAttribute> = (0..self.feature_names.len())
            .map(|feature| {
                let score = (0..use_components)
                    .map(|c| self.components.get(feature, c).abs() * ratios[c])
                    .sum();
                RankedAttribute {
                    feature,
                    name: self.feature_names[feature].clone(),
                    score,
                }
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.feature.cmp(&b.feature))
        });
        ranked
    }

    /// The indices of the top-`k` ranked original attributes.
    pub fn top_features(&self, k: usize, variance_fraction: f64) -> Vec<usize> {
        self.rank_attributes(variance_fraction)
            .into_iter()
            .take(k)
            .map(|r| r.feature)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three informative correlated features + one pure-noise feature.
    fn structured() -> Dataset {
        let mut d = Dataset::new(
            vec!["s1".into(), "s2".into(), "s3".into(), "noise".into()],
            vec!["a".into(), "b".into()],
        )
        .expect("schema");
        for i in 0..100 {
            let t = i as f64;
            let noise = ((i * 37 + 11) % 17) as f64 - 8.0;
            d.push(
                vec![t, 2.0 * t + 1.0, -t + 0.5, noise],
                usize::from(i >= 50),
            )
            .expect("row");
        }
        d
    }

    #[test]
    fn dominant_component_captures_correlated_block() {
        let pca = Pca::fit(&structured()).expect("fit");
        let ratios = pca.explained_variance_ratio();
        assert!(
            ratios[0] > 0.7,
            "three perfectly correlated features dominate: {ratios:?}"
        );
        assert!((ratios.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranking_prefers_signal_over_noise() {
        let pca = Pca::fit(&structured()).expect("fit");
        let ranked = pca.rank_attributes(0.95);
        assert_eq!(ranked.len(), 4);
        let noise_rank = ranked
            .iter()
            .position(|r| r.name == "noise")
            .expect("noise is ranked");
        assert!(
            noise_rank >= 2,
            "noise should rank low, got position {noise_rank}"
        );
        let top = pca.top_features(2, 0.95);
        assert!(!top.contains(&3), "top-2 excludes the noise column");
    }

    #[test]
    fn components_for_variance_is_monotonic() {
        let pca = Pca::fit(&structured()).expect("fit");
        let k50 = pca.components_for_variance(0.5);
        let k95 = pca.components_for_variance(0.95);
        let k100 = pca.components_for_variance(1.0);
        assert!(k50 <= k95 && k95 <= k100);
        assert!(k100 <= 4);
    }

    #[test]
    fn transform_reduces_dimensionality() {
        let data = structured();
        let pca = Pca::fit(&data).expect("fit");
        let projected = pca.transform(&data, 2);
        assert_eq!(projected.num_features(), 2);
        assert_eq!(
            projected.feature_names(),
            &["PC1".to_owned(), "PC2".to_owned()]
        );
        assert_eq!(projected.len(), data.len());
        assert_eq!(projected.labels(), data.labels());
    }

    #[test]
    fn projection_separates_separable_classes() {
        // Classes live at opposite ends of the dominant direction: PC1
        // must separate them.
        let data = structured();
        let pca = Pca::fit(&data).expect("fit");
        let projected = pca.transform(&data, 1);
        let mean = |class: usize| {
            let values: Vec<f64> = projected
                .iter()
                .filter(|&(_, l)| l == class)
                .map(|(r, _)| r[0])
                .collect();
            values.iter().sum::<f64>() / values.len() as f64
        };
        assert!((mean(0) - mean(1)).abs() > 1.0);
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        assert!(matches!(Pca::fit(&d), Err(MlError::EmptyDataset)));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_variance_fraction_panics() {
        let pca = Pca::fit(&structured()).expect("fit");
        let _ = pca.components_for_variance(0.0);
    }
}
