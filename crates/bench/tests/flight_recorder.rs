//! The flight recorder's determinism contract: two same-seed fleet
//! runs, each recording into its own hub, must freeze into
//! byte-identical diagnostic bundles — every file, the checksummed
//! `MANIFEST` included. This is what makes a bundle attached to a bug
//! report reproducible evidence rather than a one-off artifact.
//!
//! Kept as the single test in this binary: each run installs a fresh
//! obs context and snapshots its registry into `metrics.json`, so a
//! concurrently-running test incrementing global counters would break
//! byte-identity.

use std::path::PathBuf;
use std::sync::Arc;

use hbmd_bench::fleet::{run_fleet, FleetConfig};
use hbmd_core::{ClassifierKind, Detector, DetectorBuilder, FeatureSet, StreamState};
use hbmd_events::{FeatureVector, HpcEvent};
use hbmd_malware::{AppClass, SampleId};
use hbmd_obs::recorder::{read_bundle, RecorderHub, Trigger, MANIFEST_FILE};
use hbmd_obs::Obs;
use hbmd_perf::{DataRow, HpcDataset, SamplerConfig};

fn features(level: f64) -> FeatureVector {
    FeatureVector::from_slice(&[level; HpcEvent::COUNT]).expect("full-width vector")
}

/// A detector trained on a perfectly separable synthetic dataset —
/// training is deterministic, so both runs share identical weights.
fn detector() -> Arc<Detector> {
    let mut rows = Vec::new();
    for i in 0..40 {
        let class = AppClass::ALL[i % AppClass::COUNT];
        let level = if class == AppClass::Benign {
            1.0
        } else {
            100.0
        };
        rows.push(DataRow {
            sample: SampleId(i as u32),
            class,
            features: features(level),
        });
    }
    Arc::new(
        DetectorBuilder::new()
            .classifier(ClassifierKind::J48)
            .feature_set(FeatureSet::Top(8))
            .train_binary(&HpcDataset::from_rows(rows))
            .expect("train on separable data"),
    )
}

/// One full recorded run: fleet over the recorder hub, then an
/// explicit trigger freezing the rings into a bundle. Returns the
/// bundle directory.
fn run_once(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("hbmd-recorder-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let guard = hbmd_obs::install(Obs::new());
    let hub = Arc::new(
        RecorderHub::new(4, 64)
            .with_bundle_dir(&root)
            .with_deterministic(true)
            .with_manifest_json("{\"tool\": \"flight-recorder-test\"}")
            .with_families(AppClass::ALL.iter().map(|c| c.name().to_owned()).collect()),
    );
    let config = FleetConfig {
        pristine_stream: StreamState::new(4, 3, 1, 1).expect("static shape"),
        // Park the breaker out of reach: abstention patterns stay
        // stream-local, so the recorded event stream is seed-pure.
        breaker: (257, usize::MAX, 32),
        recorder: Some(Arc::clone(&hub)),
        ..FleetConfig::lossless(8, 4, 32)
    };
    run_fleet(&detector(), &SamplerConfig::fast(), &config).expect("fleet run");
    let mut trigger = Trigger::new("http_request");
    trigger.details = "determinism probe".to_owned();
    let outcome = hub
        .trigger(&trigger)
        .expect("bundle written")
        .expect("not suppressed");
    assert!(outcome.events > 0, "fleet run recorded no events");
    drop(guard);
    outcome.path
}

#[test]
fn same_seed_fleet_runs_freeze_into_byte_identical_bundles() {
    let first = run_once("a");
    let second = run_once("b");
    let bundle_a = read_bundle(&first).expect("first bundle verifies");
    let bundle_b = read_bundle(&second).expect("second bundle verifies");
    assert_eq!(
        bundle_a.entries, bundle_b.entries,
        "bundle manifests diverged between same-seed runs"
    );
    for name in [
        "events.jsonl",
        "metrics.json",
        "manifest.json",
        "trigger.json",
        MANIFEST_FILE,
    ] {
        let a = std::fs::read(first.join(name)).expect("first file");
        let b = std::fs::read(second.join(name)).expect("second file");
        assert_eq!(a, b, "{name} differs between same-seed runs");
    }
    for root in [first, second] {
        let parent = root.parent().expect("bundle parent").to_path_buf();
        let _ = std::fs::remove_dir_all(parent);
    }
}
