//! Microbenchmark: training cost of every classifier in the binary
//! suite on an identical dataset — the software-side cost behind the
//! Figure 13 sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbmd_bench::config_at_scale;
use hbmd_core::{to_binary_dataset, ClassifierKind};
use hbmd_ml::{Classifier, Dataset};

fn training_data() -> Dataset {
    let mut config = config_at_scale(0.05);
    config.collector.sampler.windows_per_sample = 4;
    let dataset = config.collect();
    to_binary_dataset(&dataset)
}

fn bench_training(c: &mut Criterion) {
    let data = training_data();
    let mut group = c.benchmark_group("train");
    group.sample_size(10);

    for kind in ClassifierKind::binary_suite() {
        group.bench_with_input(BenchmarkId::new("fit", kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut model = kind.instantiate();
                model.fit(&data).expect("fit");
                model
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
