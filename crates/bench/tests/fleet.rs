//! Integration tests for the sharded fleet pipeline: per-stream
//! verdict streams must be byte-identical at any shard count, a shard
//! kill must stay invisible behind its bulkhead, the multiplexed
//! checkpoint must resume instead of replaying, and a faulty stream
//! must be quarantined without touching its neighbors.

use std::path::PathBuf;

use hbmd_bench::fleet::{run_fleet, FleetConfig};
use hbmd_core::{shard_of, ClassifierKind, Detector, DetectorBuilder, FeatureSet, StreamState};
use hbmd_events::{FeatureVector, HpcEvent};
use hbmd_malware::{AppClass, SampleId};
use hbmd_perf::{DataRow, HpcDataset, SamplerConfig};
use std::sync::Arc;

fn features(level: f64) -> FeatureVector {
    FeatureVector::from_slice(&[level; HpcEvent::COUNT]).expect("full-width vector")
}

/// A detector trained on a perfectly separable synthetic dataset, so
/// tests spend no time on collection. Its sanitizer abstains on many
/// real sampled windows, which exercises the stream-health path — the
/// breaker is parked out of reach in these tests so abstention patterns
/// stay stream-local and shard-count independent.
fn detector() -> Arc<Detector> {
    let mut rows = Vec::new();
    for i in 0..40 {
        let class = AppClass::ALL[i % AppClass::COUNT];
        let level = if class == AppClass::Benign {
            1.0
        } else {
            100.0
        };
        rows.push(DataRow {
            sample: SampleId(i as u32),
            class,
            features: features(level),
        });
    }
    Arc::new(
        DetectorBuilder::new()
            .classifier(ClassifierKind::J48)
            .feature_set(FeatureSet::Top(8))
            .train_binary(&HpcDataset::from_rows(rows))
            .expect("train on separable data"),
    )
}

/// Lossless fleet config with the shard breaker parked out of reach:
/// the toy-trained sanitizer abstains freely, and an open breaker is a
/// *shard-level* state that would couple streams across the shard.
fn config(streams: u64, shards: usize, windows: u64) -> FleetConfig {
    FleetConfig {
        pristine_stream: StreamState::new(4, 3, 1, 1).expect("static shape"),
        breaker: (257, usize::MAX, 32),
        ..FleetConfig::lossless(streams, shards, windows)
    }
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hbmd-fleet-{}-{name}", std::process::id()))
}

#[test]
fn verdict_streams_are_byte_identical_at_any_shard_count() {
    let detector = detector();
    let sampler = SamplerConfig::fast();
    let single = run_fleet(&detector, &sampler, &config(8, 1, 32)).expect("1 shard");
    assert_eq!(single.verdicts.len(), 8, "every stream captured");
    for shards in [2usize, 8] {
        let multi = run_fleet(&detector, &sampler, &config(8, shards, 32)).expect("sharded run");
        assert_eq!(
            multi.verdicts, single.verdicts,
            "verdicts diverged between 1 and {shards} shards"
        );
        assert_eq!(
            multi.stream_health, single.stream_health,
            "stream health diverged between 1 and {shards} shards"
        );
    }
}

#[test]
fn shard_kill_is_invisible_behind_the_bulkhead() {
    let detector = detector();
    let sampler = SamplerConfig::fast();
    let (streams, shards, windows) = (8u64, 4usize, 48u64);
    let baseline =
        run_fleet(&detector, &sampler, &config(streams, shards, windows)).expect("baseline run");
    assert_eq!(baseline.restarts, 0);

    let checkpoint = scratch("kill.snap");
    let _ = std::fs::remove_file(&checkpoint);
    let victim = shard_of(0, shards);
    let faulted = run_fleet(
        &detector,
        &sampler,
        &FleetConfig {
            checkpoint_every: 16,
            checkpoint_path: Some(checkpoint.clone()),
            config_digest: 0xBEEF,
            panic_at: vec![(victim, windows / 2)],
            ..config(streams, shards, windows)
        },
    )
    .expect("faulted run");
    assert_eq!(faulted.restarts, 1, "one restart for the injected panic");
    assert_eq!(
        faulted.shards[victim].restarts, 1,
        "the restart happened on the victim shard"
    );
    for shard in faulted.shards.iter().filter(|s| s.shard != victim) {
        assert_eq!(shard.restarts, 0, "shard {} restarted", shard.shard);
        assert_eq!(
            shard.max_missed_gap, 0,
            "shard {} replayed windows",
            shard.shard
        );
    }
    assert_eq!(
        faulted.verdicts, baseline.verdicts,
        "post-recovery verdicts must match the unfaulted fleet exactly"
    );
    let _ = std::fs::remove_file(&checkpoint);
}

#[test]
fn multiplexed_checkpoint_resumes_every_stream() {
    let detector = detector();
    let sampler = SamplerConfig::fast();
    let checkpoint = scratch("resume.snap");
    let _ = std::fs::remove_file(&checkpoint);
    let first = run_fleet(
        &detector,
        &sampler,
        &FleetConfig {
            checkpoint_every: 8,
            checkpoint_path: Some(checkpoint.clone()),
            config_digest: 0xBEEF,
            ..config(4, 2, 32)
        },
    )
    .expect("first run");
    assert_eq!(first.processed, 4 * 32);

    let second = run_fleet(
        &detector,
        &sampler,
        &FleetConfig {
            checkpoint_every: 8,
            checkpoint_path: Some(checkpoint.clone()),
            config_digest: 0xBEEF,
            ..config(4, 2, 48)
        },
    )
    .expect("resumed run");
    assert_eq!(
        second.processed,
        4 * 16,
        "a resumed fleet picks up every stream at its checkpoint cursor"
    );
    assert_eq!(second.refusals, 0);
    assert_eq!(second.lost_sections, 0);
    let _ = std::fs::remove_file(&checkpoint);
}

#[test]
fn faulty_stream_is_quarantined_without_touching_neighbors() {
    let detector = detector();
    let sampler = SamplerConfig::fast();
    let quiet = run_fleet(&detector, &sampler, &config(4, 1, 64)).expect("quiet run");
    let faulty = 1u64;
    let stormy = run_fleet(
        &detector,
        &sampler,
        &FleetConfig {
            nan_streams: vec![(faulty, 8, 48)],
            ..config(4, 1, 64)
        },
    )
    .expect("stormy run");
    let (_, quarantines, _) = stormy.stream_health[&faulty];
    assert!(
        quarantines >= 1,
        "a 40-window NaN burst must quarantine the stream"
    );
    assert!(stormy.quarantine_skipped >= 1);
    for (stream, verdicts) in stormy.verdicts.iter().filter(|(s, _)| **s != faulty) {
        assert_eq!(
            Some(verdicts),
            quiet.verdicts.get(stream),
            "stream {stream}'s verdicts changed because a neighbor was quarantined"
        );
    }
}
