//! The `perf`-tool substrate: everything between the simulated silicon
//! and the machine-learning layer.
//!
//! The reference evaluation read hardware performance counters with the
//! Linux `perf` tool at a 10 ms sampling period, executing each malware
//! sample inside an LXC container, writing per-sample text traces, then
//! combining them into CSV files and converting those to WEKA ARFF. This
//! crate rebuilds that pipeline:
//!
//! * [`Pmu`] — 8 programmable counter registers with time-sliced event
//!   multiplexing and `perf`-style `raw × enabled/running` scaling,
//! * [`Sampler`] — fixed-budget sampling windows (the simulated 10 ms),
//! * [`Container`] — per-sample isolation (fresh microarchitectural
//!   state), with an optional shared-host mode that injects benign noise
//!   for ablation studies,
//! * [`trace`] — perf-stat-style text traces (writer and parser),
//! * [`csv`] / [`arff`] — dataset interchange (CSV and WEKA ARFF),
//! * [`HpcDataset`] — the assembled labelled dataset with stratified
//!   70/30 train/test splitting,
//! * [`Collector`] — end-to-end, optionally multi-threaded collection
//!   over a whole [`SampleCatalog`](hbmd_malware::SampleCatalog),
//! * [`CounterSource`] — the pluggable backend contract behind the
//!   collector: the deterministic simulator ([`SourceSelect::Sim`],
//!   the default) or live Linux `perf_event_open(2)` counters
//!   ([`SourceSelect::Perf`], behind the `perf-backend` feature).
//!
//! # Time scaling
//!
//! A real 10 ms window at 3.3 GHz is ~33 M cycles — needlessly slow to
//! simulate thousands of times. A window here is a fixed instruction
//! budget (default 20,000); all counter *ratios* (the signal classifiers
//! consume) are budget-invariant, so the scaling preserves behaviour
//! shape while making full-catalog collection take seconds.
//!
//! # Examples
//!
//! ```
//! use hbmd_malware::SampleCatalog;
//! use hbmd_perf::{Collector, CollectorConfig};
//!
//! let catalog = SampleCatalog::scaled(0.01, 7);
//! let collector = Collector::new(CollectorConfig::fast()).expect("static config");
//! let collection = collector.collect(&catalog).expect("pristine pipeline");
//! assert_eq!(collection.dataset.len(), catalog.len() * 4); // 4 windows per sample
//! ```

pub mod arff;
pub mod csv;
pub mod trace;
pub mod trace_dir;

mod collect;
mod container;
mod dataset;
mod error;
mod fault;
mod pmu;
mod sampler;
mod source;
#[cfg(feature = "perf-backend")]
pub mod sys;

pub use collect::{
    Collection, CollectionReport, Collector, CollectorConfig, CollectorConfigBuilder,
};
pub use container::Container;
pub use dataset::{DataRow, HpcDataset};
pub use error::PerfError;
pub use fault::{FaultCounts, FaultInjector, FaultPlan, SATURATION_CEILING};
pub use pmu::{Pmu, PmuConfig};
pub use sampler::{Sampler, SamplerConfig};
pub use source::{
    open_source, CounterSource, CounterWindow, EventSel, SimSource, SourceCaps, SourceSelect,
};
