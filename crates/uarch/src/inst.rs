/// Operation performed by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Integer/FP computation with no memory or control-flow side effect.
    Alu,
    /// Load from the given virtual byte address.
    Load(u64),
    /// Store to the given virtual byte address.
    Store(u64),
    /// Conditional or unconditional branch.
    Branch {
        /// Branch target address.
        target: u64,
        /// Whether the branch is taken this dynamic instance.
        taken: bool,
    },
}

/// One dynamic instruction: a program-counter value plus an operation.
///
/// The PC drives instruction-fetch modelling (L1I and iTLB traffic); the
/// operation drives the data side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Virtual address the instruction was fetched from.
    pub pc: u64,
    /// Operation performed.
    pub op: Op,
}

impl Instruction {
    /// Convenience constructor.
    pub fn new(pc: u64, op: Op) -> Instruction {
        Instruction { pc, op }
    }
}

/// A producer of dynamic instructions for the CPU model to execute.
///
/// Implementations range from replaying recorded traces to the
/// behaviour-profile-driven [`SyntheticStream`](crate::SyntheticStream).
/// The trait is object-safe so heterogeneous workloads can be boxed.
pub trait InstructionSource {
    /// Produce the next dynamic instruction.
    ///
    /// Sources in this suite are endless generators; the CPU decides how
    /// many instructions constitute a sampling window.
    fn next_instruction(&mut self) -> Instruction;
}

impl<S: InstructionSource + ?Sized> InstructionSource for &mut S {
    fn next_instruction(&mut self) -> Instruction {
        (**self).next_instruction()
    }
}

impl<S: InstructionSource + ?Sized> InstructionSource for Box<S> {
    fn next_instruction(&mut self) -> Instruction {
        (**self).next_instruction()
    }
}

/// Replays a fixed instruction sequence, cycling at the end.
///
/// Useful in tests where exact event counts must be hand-computable.
///
/// # Examples
///
/// ```
/// use hbmd_uarch::{Instruction, InstructionSource, Op};
/// use hbmd_uarch::trace_source;
///
/// let mut src = trace_source(vec![
///     Instruction::new(0x40_0000, Op::Alu),
///     Instruction::new(0x40_0004, Op::Load(0x1000)),
/// ]);
/// assert_eq!(src.next_instruction().pc, 0x40_0000);
/// assert_eq!(src.next_instruction().pc, 0x40_0004);
/// assert_eq!(src.next_instruction().pc, 0x40_0000); // cycles
/// ```
#[derive(Debug, Clone)]
pub struct TraceSource {
    trace: Vec<Instruction>,
    cursor: usize,
}

/// Build a [`TraceSource`] over `trace`.
///
/// # Panics
///
/// Panics when `trace` is empty — an empty trace can produce nothing.
pub fn trace_source(trace: Vec<Instruction>) -> TraceSource {
    assert!(
        !trace.is_empty(),
        "trace must contain at least one instruction"
    );
    TraceSource { trace, cursor: 0 }
}

impl InstructionSource for TraceSource {
    fn next_instruction(&mut self) -> Instruction {
        let inst = self.trace[self.cursor];
        self.cursor = (self.cursor + 1) % self.trace.len();
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_source_cycles() {
        let mut src = trace_source(vec![
            Instruction::new(0, Op::Alu),
            Instruction::new(4, Op::Store(64)),
        ]);
        let seq: Vec<u64> = (0..5).map(|_| src.next_instruction().pc).collect();
        assert_eq!(seq, vec![0, 4, 0, 4, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_trace_panics() {
        let _ = trace_source(Vec::new());
    }

    #[test]
    fn source_is_object_safe_and_blanket_impls_work() {
        let mut boxed: Box<dyn InstructionSource> =
            Box::new(trace_source(vec![Instruction::new(8, Op::Alu)]));
        assert_eq!(boxed.next_instruction().pc, 8);
        let by_ref: &mut dyn InstructionSource = &mut boxed;
        assert_eq!(by_ref.next_instruction().pc, 8);
    }
}
