use std::fmt;

use hbmd_fpga::{DatapathError, DatapathSpec, Stage, ToDatapath};
use hbmd_ml::{
    AdaBoostM1, Bagging, Classifier, CompiledModel, Dataset, DecisionStump, Ibk, JRip, LinearSvm,
    MlError, Mlp, Mlr, NaiveBayes, OneR, RandomForest, RepTree, RowsView, ZeroR, J48,
};
use serde::{Deserialize, Serialize};

/// The classifier suite of the reference evaluation, as a closed enum.
///
/// [`ClassifierKind::binary_suite`] lists the schemes the binary
/// accuracy/hardware comparison exercises (Figures 13–16);
/// [`ClassifierKind::multiclass_suite`] lists the three the multiclass
/// study uses (Figures 17–19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassifierKind {
    /// Majority-class baseline.
    ZeroR,
    /// One-attribute rule learner.
    OneR,
    /// Depth-one tree.
    DecisionStump,
    /// RIPPER rule learner.
    JRip,
    /// C4.5 decision tree.
    J48,
    /// Reduced-error-pruning tree.
    RepTree,
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// Multinomial logistic regression (WEKA `Logistic`, the paper's
    /// MLR).
    Logistic,
    /// Multilayer perceptron.
    Mlp,
    /// Linear support vector machine (the paper's SVM).
    Svm,
    /// k-nearest neighbours (k = 3).
    Ibk,
    /// AdaBoost.M1 over decision stumps (10 rounds).
    AdaBoost,
    /// Bagged C4.5 trees (10 members).
    Bagging,
    /// Random forest (20 trees).
    RandomForest,
}

impl ClassifierKind {
    /// The schemes compared in the binary study (Figures 13–16).
    pub const fn binary_suite() -> [ClassifierKind; 8] {
        [
            ClassifierKind::OneR,
            ClassifierKind::JRip,
            ClassifierKind::J48,
            ClassifierKind::RepTree,
            ClassifierKind::NaiveBayes,
            ClassifierKind::Logistic,
            ClassifierKind::Svm,
            ClassifierKind::Mlp,
        ]
    }

    /// The ensemble schemes of the related-work comparison (Khasawneh
    /// et al. RAID'15; Sayadi et al. DAC'18).
    pub const fn ensemble_suite() -> [ClassifierKind; 3] {
        [
            ClassifierKind::AdaBoost,
            ClassifierKind::Bagging,
            ClassifierKind::RandomForest,
        ]
    }

    /// The schemes compared in the multiclass study (Figures 17–18).
    pub const fn multiclass_suite() -> [ClassifierKind; 3] {
        [
            ClassifierKind::Logistic,
            ClassifierKind::Mlp,
            ClassifierKind::Svm,
        ]
    }

    /// WEKA scheme name.
    pub fn name(self) -> &'static str {
        match self {
            ClassifierKind::ZeroR => "ZeroR",
            ClassifierKind::OneR => "OneR",
            ClassifierKind::DecisionStump => "DecisionStump",
            ClassifierKind::JRip => "JRip",
            ClassifierKind::J48 => "J48",
            ClassifierKind::RepTree => "REPTree",
            ClassifierKind::NaiveBayes => "NaiveBayes",
            ClassifierKind::Logistic => "Logistic",
            ClassifierKind::Mlp => "MultilayerPerceptron",
            ClassifierKind::Svm => "SVM",
            ClassifierKind::Ibk => "IBk",
            ClassifierKind::AdaBoost => "AdaBoostM1",
            ClassifierKind::Bagging => "Bagging",
            ClassifierKind::RandomForest => "RandomForest",
        }
    }

    /// Instantiate an untrained model of this kind.
    pub fn instantiate(self) -> TrainedModel {
        match self {
            ClassifierKind::ZeroR => TrainedModel::ZeroR(ZeroR::new()),
            ClassifierKind::OneR => TrainedModel::OneR(OneR::new()),
            ClassifierKind::DecisionStump => TrainedModel::DecisionStump(DecisionStump::new()),
            ClassifierKind::JRip => TrainedModel::JRip(JRip::new()),
            ClassifierKind::J48 => TrainedModel::J48(J48::new()),
            ClassifierKind::RepTree => TrainedModel::RepTree(RepTree::new()),
            ClassifierKind::NaiveBayes => TrainedModel::NaiveBayes(NaiveBayes::new()),
            ClassifierKind::Logistic => TrainedModel::Logistic(Mlr::new()),
            ClassifierKind::Mlp => TrainedModel::Mlp(Mlp::new()),
            ClassifierKind::Svm => TrainedModel::Svm(LinearSvm::new()),
            ClassifierKind::Ibk => TrainedModel::Ibk(Ibk::new(3)),
            ClassifierKind::AdaBoost => {
                TrainedModel::AdaBoost(AdaBoostM1::new(DecisionStump::new(), 10))
            }
            ClassifierKind::Bagging => TrainedModel::Bagging(Bagging::new(J48::new(), 10)),
            ClassifierKind::RandomForest => TrainedModel::RandomForest(RandomForest::new(20)),
        }
    }
}

impl fmt::Display for ClassifierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete classifier of the suite — trainable, predictable, and
/// synthesisable to a hardware datapath.
///
/// The enum (rather than a trait object) preserves the concrete model
/// structure the FPGA cost model needs (tree shape, rule counts, layer
/// widths).
#[derive(Debug, Clone)]
pub enum TrainedModel {
    /// See [`ZeroR`].
    ZeroR(ZeroR),
    /// See [`OneR`].
    OneR(OneR),
    /// See [`DecisionStump`].
    DecisionStump(DecisionStump),
    /// See [`JRip`].
    JRip(JRip),
    /// See [`J48`].
    J48(J48),
    /// See [`RepTree`].
    RepTree(RepTree),
    /// See [`NaiveBayes`].
    NaiveBayes(NaiveBayes),
    /// See [`Mlr`].
    Logistic(Mlr),
    /// See [`Mlp`].
    Mlp(Mlp),
    /// See [`LinearSvm`].
    Svm(LinearSvm),
    /// See [`Ibk`].
    Ibk(Ibk),
    /// See [`AdaBoostM1`].
    AdaBoost(AdaBoostM1<DecisionStump>),
    /// See [`Bagging`].
    Bagging(Bagging<J48>),
    /// See [`RandomForest`].
    RandomForest(RandomForest),
}

macro_rules! delegate {
    ($self:expr, $model:ident => $body:expr) => {
        match $self {
            TrainedModel::ZeroR($model) => $body,
            TrainedModel::OneR($model) => $body,
            TrainedModel::DecisionStump($model) => $body,
            TrainedModel::JRip($model) => $body,
            TrainedModel::J48($model) => $body,
            TrainedModel::RepTree($model) => $body,
            TrainedModel::NaiveBayes($model) => $body,
            TrainedModel::Logistic($model) => $body,
            TrainedModel::Mlp($model) => $body,
            TrainedModel::Svm($model) => $body,
            TrainedModel::Ibk($model) => $body,
            TrainedModel::AdaBoost($model) => $body,
            TrainedModel::Bagging($model) => $body,
            TrainedModel::RandomForest($model) => $body,
        }
    };
}

impl TrainedModel {
    /// The kind this model belongs to.
    pub fn kind(&self) -> ClassifierKind {
        match self {
            TrainedModel::ZeroR(_) => ClassifierKind::ZeroR,
            TrainedModel::OneR(_) => ClassifierKind::OneR,
            TrainedModel::DecisionStump(_) => ClassifierKind::DecisionStump,
            TrainedModel::JRip(_) => ClassifierKind::JRip,
            TrainedModel::J48(_) => ClassifierKind::J48,
            TrainedModel::RepTree(_) => ClassifierKind::RepTree,
            TrainedModel::NaiveBayes(_) => ClassifierKind::NaiveBayes,
            TrainedModel::Logistic(_) => ClassifierKind::Logistic,
            TrainedModel::Mlp(_) => ClassifierKind::Mlp,
            TrainedModel::Svm(_) => ClassifierKind::Svm,
            TrainedModel::Ibk(_) => ClassifierKind::Ibk,
            TrainedModel::AdaBoost(_) => ClassifierKind::AdaBoost,
            TrainedModel::Bagging(_) => ClassifierKind::Bagging,
            TrainedModel::RandomForest(_) => ClassifierKind::RandomForest,
        }
    }

    /// Derive the model's inference datapath for hardware synthesis.
    ///
    /// # Errors
    ///
    /// Returns [`DatapathError::Untrained`] for an unfitted model.
    pub fn datapath(&self) -> Result<DatapathSpec, DatapathError> {
        match self {
            // A majority-class predictor is a constant: one LUT.
            TrainedModel::ZeroR(_) => Ok(DatapathSpec {
                scheme: "ZeroR".to_owned(),
                inputs: 0,
                stages: vec![Stage {
                    lut_ops: 1,
                    latency_cycles: 1,
                    ..Stage::new("constant")
                }],
            }),
            TrainedModel::OneR(m) => m.datapath(),
            TrainedModel::DecisionStump(m) => m.datapath(),
            TrainedModel::JRip(m) => m.datapath(),
            TrainedModel::J48(m) => m.datapath(),
            TrainedModel::RepTree(m) => m.datapath(),
            TrainedModel::NaiveBayes(m) => m.datapath(),
            TrainedModel::Logistic(m) => m.datapath(),
            TrainedModel::Mlp(m) => m.datapath(),
            TrainedModel::Svm(m) => m.datapath(),
            TrainedModel::Ibk(m) => m.datapath(),
            TrainedModel::AdaBoost(m) => m.datapath(),
            TrainedModel::Bagging(m) => m.datapath(),
            TrainedModel::RandomForest(m) => m.datapath(),
        }
    }

    /// Lower the fitted model into its flat branchless evaluator
    /// ([`hbmd_ml::compiled`]).
    ///
    /// Returns `None` for the schemes with no flat form (NaiveBayes,
    /// Logistic, Mlp, Svm, Ibk) and for unfitted models; callers fall
    /// back to the interpreted predictor.
    pub fn compile(&self) -> Option<CompiledModel> {
        match self {
            TrainedModel::ZeroR(m) => m.compile().map(CompiledModel::Tree),
            TrainedModel::OneR(m) => m.compile().map(CompiledModel::Rules),
            TrainedModel::DecisionStump(m) => m.compile().map(CompiledModel::Tree),
            TrainedModel::JRip(m) => m.compile().map(CompiledModel::Rules),
            TrainedModel::J48(m) => m.compile().map(CompiledModel::Tree),
            TrainedModel::RepTree(m) => m.compile().map(CompiledModel::Tree),
            TrainedModel::AdaBoost(m) => m.compile().map(CompiledModel::Ensemble),
            TrainedModel::Bagging(m) => m.compile().map(CompiledModel::Forest),
            TrainedModel::RandomForest(m) => m.compile().map(CompiledModel::Forest),
            TrainedModel::NaiveBayes(_)
            | TrainedModel::Logistic(_)
            | TrainedModel::Mlp(_)
            | TrainedModel::Svm(_)
            | TrainedModel::Ibk(_) => None,
        }
    }
}

impl Classifier for TrainedModel {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        delegate!(self, m => m.fit(data))
    }

    fn predict(&self, features: &[f64]) -> usize {
        delegate!(self, m => m.predict(features))
    }

    fn name(&self) -> &str {
        self.kind().name()
    }

    fn predict_batch(&self, rows: RowsView<'_>) -> Vec<usize> {
        match self.compile() {
            Some(compiled) => compiled.predict_batch(rows),
            None => delegate!(self, m => m.predict_batch(rows)),
        }
    }
}

use hbmd_ml::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for TrainedModel {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            TrainedModel::ZeroR(m) => {
                w.put_u8(0);
                m.snap(w);
            }
            TrainedModel::OneR(m) => {
                w.put_u8(1);
                m.snap(w);
            }
            TrainedModel::DecisionStump(m) => {
                w.put_u8(2);
                m.snap(w);
            }
            TrainedModel::JRip(m) => {
                w.put_u8(3);
                m.snap(w);
            }
            TrainedModel::J48(m) => {
                w.put_u8(4);
                m.snap(w);
            }
            TrainedModel::RepTree(m) => {
                w.put_u8(5);
                m.snap(w);
            }
            TrainedModel::NaiveBayes(m) => {
                w.put_u8(6);
                m.snap(w);
            }
            TrainedModel::Logistic(m) => {
                w.put_u8(7);
                m.snap(w);
            }
            TrainedModel::Mlp(m) => {
                w.put_u8(8);
                m.snap(w);
            }
            TrainedModel::Svm(m) => {
                w.put_u8(9);
                m.snap(w);
            }
            TrainedModel::Ibk(m) => {
                w.put_u8(10);
                m.snap(w);
            }
            TrainedModel::AdaBoost(m) => {
                w.put_u8(11);
                m.snap(w);
            }
            TrainedModel::Bagging(m) => {
                w.put_u8(12);
                m.snap(w);
            }
            TrainedModel::RandomForest(m) => {
                w.put_u8(13);
                m.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(TrainedModel::ZeroR(Snap::unsnap(r)?)),
            1 => Ok(TrainedModel::OneR(Snap::unsnap(r)?)),
            2 => Ok(TrainedModel::DecisionStump(Snap::unsnap(r)?)),
            3 => Ok(TrainedModel::JRip(Snap::unsnap(r)?)),
            4 => Ok(TrainedModel::J48(Snap::unsnap(r)?)),
            5 => Ok(TrainedModel::RepTree(Snap::unsnap(r)?)),
            6 => Ok(TrainedModel::NaiveBayes(Snap::unsnap(r)?)),
            7 => Ok(TrainedModel::Logistic(Snap::unsnap(r)?)),
            8 => Ok(TrainedModel::Mlp(Snap::unsnap(r)?)),
            9 => Ok(TrainedModel::Svm(Snap::unsnap(r)?)),
            10 => Ok(TrainedModel::Ibk(Snap::unsnap(r)?)),
            11 => Ok(TrainedModel::AdaBoost(Snap::unsnap(r)?)),
            12 => Ok(TrainedModel::Bagging(Snap::unsnap(r)?)),
            13 => Ok(TrainedModel::RandomForest(Snap::unsnap(r)?)),
            other => Err(SnapError::Invalid(format!("TrainedModel tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        for i in 0..60 {
            d.push(vec![i as f64], usize::from(i >= 30)).expect("row");
        }
        d
    }

    #[test]
    fn every_kind_trains_and_predicts() {
        let data = toy();
        let all = [
            ClassifierKind::ZeroR,
            ClassifierKind::OneR,
            ClassifierKind::DecisionStump,
            ClassifierKind::JRip,
            ClassifierKind::J48,
            ClassifierKind::RepTree,
            ClassifierKind::NaiveBayes,
            ClassifierKind::Logistic,
            ClassifierKind::Mlp,
            ClassifierKind::Svm,
            ClassifierKind::Ibk,
            ClassifierKind::AdaBoost,
            ClassifierKind::Bagging,
            ClassifierKind::RandomForest,
        ];
        for kind in all {
            let mut model = kind.instantiate();
            model.fit(&data).unwrap_or_else(|e| panic!("{kind}: {e}"));
            let prediction = model.predict(&[55.0]);
            if kind != ClassifierKind::ZeroR {
                assert_eq!(prediction, 1, "{kind} misses an easy boundary");
            }
            assert_eq!(model.kind(), kind);
            assert_eq!(model.name(), kind.name());
        }
    }

    #[test]
    fn every_trained_kind_synthesises() {
        let data = toy();
        for kind in ClassifierKind::binary_suite() {
            let mut model = kind.instantiate();
            model.fit(&data).expect("fit");
            let spec = model.datapath().unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(spec.latency_cycles() >= 1, "{kind}");
        }
        // ZeroR synthesises even untrained structure-wise.
        let spec = ClassifierKind::ZeroR
            .instantiate()
            .datapath()
            .expect("zero-r");
        assert_eq!(spec.scheme, "ZeroR");
    }

    #[test]
    fn suites_are_subsets_of_the_kinds() {
        assert_eq!(ClassifierKind::binary_suite().len(), 8);
        assert_eq!(ClassifierKind::multiclass_suite().len(), 3);
        assert!(ClassifierKind::multiclass_suite()
            .iter()
            .all(|k| ClassifierKind::binary_suite().contains(k)));
    }

    #[test]
    fn untrained_models_refuse_synthesis() {
        assert!(ClassifierKind::Mlp.instantiate().datapath().is_err());
        assert!(ClassifierKind::J48.instantiate().datapath().is_err());
    }
}
