use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::counters::CounterSet;
use crate::event::HpcEvent;

/// Scaled per-sample feature values handed to the machine-learning layer.
///
/// Raw PMU counts are integers, but multiplexing scales them by
/// `time_enabled / time_running`, producing fractional estimates — exactly
/// what `perf stat` prints. One `FeatureVector` corresponds to one dataset
/// row (one 10 ms sampling window of one application).
///
/// # Examples
///
/// ```
/// use hbmd_events::{CounterSet, FeatureVector, HpcEvent};
///
/// let mut raw = CounterSet::new();
/// raw[HpcEvent::CacheMisses] = 100;
/// // Event ran for half the window: perf reports a 2x-scaled estimate.
/// let fv = FeatureVector::from_scaled(&raw, |_event| 2.0);
/// assert_eq!(fv[HpcEvent::CacheMisses], 200.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: [f64; HpcEvent::COUNT],
}

impl FeatureVector {
    /// All-zero feature vector.
    pub fn zeroed() -> FeatureVector {
        FeatureVector {
            values: [0.0; HpcEvent::COUNT],
        }
    }

    /// Feature vector from exact (unscaled) raw counts.
    pub fn from_counts(counts: &CounterSet) -> FeatureVector {
        FeatureVector::from_scaled(counts, |_| 1.0)
    }

    /// Feature vector from raw counts with a per-event scale factor
    /// (the `time_enabled / time_running` multiplexing correction).
    pub fn from_scaled<F>(counts: &CounterSet, scale: F) -> FeatureVector
    where
        F: Fn(HpcEvent) -> f64,
    {
        hbmd_obs::incr("events.feature_vectors_built");
        let mut values = [0.0; HpcEvent::COUNT];
        for event in HpcEvent::ALL {
            values[event.index()] = counts[event] as f64 * scale(event);
        }
        FeatureVector { values }
    }

    /// Feature vector from a column-ordered slice.
    ///
    /// Returns `None` unless `values.len() == HpcEvent::COUNT`.
    pub fn from_slice(values: &[f64]) -> Option<FeatureVector> {
        let values: [f64; HpcEvent::COUNT] = values.try_into().ok()?;
        Some(FeatureVector { values })
    }

    /// Values in feature-column order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Project onto a subset of events, preserving the given order.
    pub fn project(&self, events: &[HpcEvent]) -> Vec<f64> {
        events.iter().map(|&e| self.values[e.index()]).collect()
    }

    /// Iterate `(event, value)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (HpcEvent, f64)> + '_ {
        HpcEvent::ALL
            .iter()
            .map(move |&event| (event, self.values[event.index()]))
    }
}

impl Default for FeatureVector {
    fn default() -> FeatureVector {
        FeatureVector::zeroed()
    }
}

impl Index<HpcEvent> for FeatureVector {
    type Output = f64;

    fn index(&self, event: HpcEvent) -> &f64 {
        &self.values[event.index()]
    }
}

impl IndexMut<HpcEvent> for FeatureVector {
    fn index_mut(&mut self, event: HpcEvent) -> &mut f64 {
        &mut self.values[event.index()]
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (event, value)) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{:>18.2}  {}", value, event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_preserves_values() {
        let mut c = CounterSet::new();
        c[HpcEvent::BranchLoads] = 42;
        let fv = FeatureVector::from_counts(&c);
        assert_eq!(fv[HpcEvent::BranchLoads], 42.0);
        assert_eq!(fv[HpcEvent::NodeStores], 0.0);
    }

    #[test]
    fn scaling_applies_per_event() {
        let mut c = CounterSet::new();
        c[HpcEvent::LlcLoads] = 10;
        c[HpcEvent::NodeLoads] = 10;
        let fv =
            FeatureVector::from_scaled(&c, |e| if e == HpcEvent::LlcLoads { 1.5 } else { 1.0 });
        assert_eq!(fv[HpcEvent::LlcLoads], 15.0);
        assert_eq!(fv[HpcEvent::NodeLoads], 10.0);
    }

    #[test]
    fn slice_round_trip() {
        let values: Vec<f64> = (0..HpcEvent::COUNT).map(|i| i as f64).collect();
        let fv = FeatureVector::from_slice(&values).expect("16 values");
        assert_eq!(fv.as_slice(), values.as_slice());
        assert!(FeatureVector::from_slice(&values[..5]).is_none());
    }

    #[test]
    fn project_preserves_order() {
        let values: Vec<f64> = (0..HpcEvent::COUNT).map(|i| i as f64 * 2.0).collect();
        let fv = FeatureVector::from_slice(&values).expect("16 values");
        let picked = fv.project(&[HpcEvent::NodeStores, HpcEvent::BranchInstructions]);
        assert_eq!(picked, vec![30.0, 0.0]);
    }
}
