//! Property tests on the synthesis model: monotonicity and scaling
//! laws that must hold for any datapath.

use hbmd_fpga::{synthesize, DatapathSpec, Stage, SynthConfig};
use proptest::prelude::*;

fn arb_stage() -> impl Strategy<Value = Stage> {
    (
        0u64..200,
        0u64..200,
        0u64..200,
        0u64..200,
        0u64..200_000,
        1u64..10,
        1u64..4,
    )
        .prop_map(
            |(multipliers, adders, comparators, lut_ops, rom_bits, latency, iterations)| Stage {
                name: "stage".to_owned(),
                multipliers,
                adders,
                comparators,
                lut_ops,
                rom_bits,
                latency_cycles: latency,
                iterations,
            },
        )
}

fn arb_spec() -> impl Strategy<Value = DatapathSpec> {
    (prop::collection::vec(arb_stage(), 1..6), 0usize..32).prop_map(|(stages, inputs)| {
        DatapathSpec {
            scheme: "prop".to_owned(),
            inputs,
            stages,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adding_a_stage_never_shrinks_the_design(spec in arb_spec(), extra in arb_stage()) {
        let config = SynthConfig::default();
        let base = synthesize(&spec, &config);
        let mut bigger = spec.clone();
        bigger.stages.push(extra);
        let grown = synthesize(&bigger, &config);
        prop_assert!(grown.area_units() >= base.area_units());
        prop_assert!(grown.latency_cycles >= base.latency_cycles);
        prop_assert!(grown.power_mw >= base.power_mw);
    }

    #[test]
    fn folding_never_grows_area_or_shrinks_latency(spec in arb_spec(), fold in 2u64..16) {
        let parallel = synthesize(&spec, &SynthConfig::default());
        let folded = synthesize(&spec, &SynthConfig::folded(fold));
        prop_assert!(folded.resources.dsps <= parallel.resources.dsps);
        prop_assert!(folded.latency_cycles >= parallel.latency_cycles);
    }

    #[test]
    fn clock_scaling_is_linear_in_time_not_cycles(spec in arb_spec()) {
        let slow = synthesize(&spec, &SynthConfig { clock_mhz: 50.0, ..SynthConfig::default() });
        let fast = synthesize(&spec, &SynthConfig { clock_mhz: 200.0, ..SynthConfig::default() });
        prop_assert_eq!(slow.latency_cycles, fast.latency_cycles);
        prop_assert!((slow.latency_ns() / fast.latency_ns() - 4.0).abs() < 1e-9);
        prop_assert_eq!(slow.resources, fast.resources);
    }

    #[test]
    fn wider_words_never_shrink_lut_fabric(spec in arb_spec()) {
        let narrow = synthesize(&spec, &SynthConfig { word_bits: 8, ..SynthConfig::default() });
        let wide = synthesize(&spec, &SynthConfig { word_bits: 32, ..SynthConfig::default() });
        prop_assert!(wide.resources.luts >= narrow.resources.luts);
        prop_assert!(wide.resources.ffs >= narrow.resources.ffs);
    }

    #[test]
    fn reports_are_internally_consistent(spec in arb_spec()) {
        let report = synthesize(&spec, &SynthConfig::default());
        prop_assert!(report.latency_cycles >= spec.stages.len() as u64);
        prop_assert!(report.power_mw >= 20.0, "static floor");
        prop_assert!(report.area_units() >= 0.0);
        prop_assert!(report.energy_per_inference_nj() >= 0.0);
        let throughput = report.throughput_per_s();
        prop_assert!((throughput * report.latency_ns() - 1e9).abs() < 1.0);
    }
}
