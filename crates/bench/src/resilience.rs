//! The supervised online-monitoring pipeline behind `repro serve` and
//! `repro chaos`.
//!
//! Three pieces, wired for crash recovery:
//!
//! * [`Timeline`] — the deterministic synthetic workload (benign
//!   background with each malware family injected in turn). Window `k`
//!   is a pure function of `k`, so a restarted worker regenerates the
//!   exact windows a crashed worker saw.
//! * a **producer thread** walking the timeline into a bounded
//!   channel. When the queue is full the producer either blocks
//!   (lossless mode, used by chaos replay) or drops the window and
//!   counts it (backpressure mode, used by the paced live monitor).
//! * a **supervised worker** running under `catch_unwind` in
//!   [`run_pipeline`]: it feeds windows to the [`OnlineDetector`],
//!   checkpoints every `checkpoint_every` windows via
//!   `hbmd_core::snapshot`, and routes fault decisions through a
//!   [`CircuitBreaker`]. On a panic the supervisor restores the last
//!   good checkpoint (or retrains from the pristine monitor when the
//!   checkpoint is refused), backs off exponentially, and replays from
//!   the checkpoint cursor — so the externally observable verdict
//!   sequence is identical to an unfaulted run.
//!
//! Fault injection for the chaos harness is part of the pipeline
//! configuration: single-shot worker panics at chosen cursors and a
//! NaN burst over a cursor range (standing in for a hostile fault-plan
//! perturbation, which the sanitizer turns into abstentions and the
//! breaker into a degraded phase).

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

use hbmd_core::snapshot::{self, MonitorSnapshot};
use hbmd_core::supervisor::{Backoff, BreakerState, CircuitBreaker};
use hbmd_core::{CoreError, OnlineDetector, OnlineVerdict};
use hbmd_events::{FeatureVector, HpcEvent};
use hbmd_malware::{AppClass, Sample, SampleId};
use hbmd_obs::health::{Health, ServiceState};
use hbmd_obs::recorder::{Event as RecorderEvent, FaultKind, RecorderHub, Trigger};
use hbmd_perf::{PerfError, Sampler, SamplerConfig};

use crate::fleet::window_event;

/// Windows per synthetic sample on the serve timeline.
pub const WINDOWS_PER_SAMPLE: u64 = 16;

/// The repeating phase schedule: benign background with each malware
/// family injected in turn.
pub const PHASES: [AppClass; 10] = [
    AppClass::Benign,
    AppClass::Worm,
    AppClass::Benign,
    AppClass::Virus,
    AppClass::Benign,
    AppClass::Trojan,
    AppClass::Benign,
    AppClass::Rootkit,
    AppClass::Benign,
    AppClass::Backdoor,
];

/// The deterministic synthetic workload: window `k` belongs to sample
/// `k / 16`, whose class follows [`PHASES`] and whose content is
/// seeded by its index — so any window can be regenerated at any time,
/// which is what makes checkpoint replay exact.
pub struct Timeline {
    sampler: Sampler,
    cached: Option<(u64, Vec<FeatureVector>)>,
}

impl Timeline {
    /// A timeline over the collector's sampler settings (forced to
    /// [`WINDOWS_PER_SAMPLE`] windows per sample).
    ///
    /// # Errors
    ///
    /// Propagates sampler-configuration errors.
    pub fn new(sampler_config: &SamplerConfig) -> Result<Timeline, PerfError> {
        let sampler = Sampler::new(SamplerConfig {
            windows_per_sample: WINDOWS_PER_SAMPLE as usize,
            ..sampler_config.clone()
        })?;
        Ok(Timeline {
            sampler,
            cached: None,
        })
    }

    /// The ground-truth class of window `cursor`.
    pub fn class_at(cursor: u64) -> AppClass {
        let sample_index = cursor / WINDOWS_PER_SAMPLE;
        PHASES[(sample_index % PHASES.len() as u64) as usize]
    }

    /// Regenerate window `cursor`. Sequential access is cheap (one
    /// sample generation per 16 windows); random access still works.
    pub fn window(&mut self, cursor: u64) -> FeatureVector {
        let sample_index = cursor / WINDOWS_PER_SAMPLE;
        let offset = (cursor % WINDOWS_PER_SAMPLE) as usize;
        let fresh = self.cached.as_ref().map(|(i, _)| *i) != Some(sample_index);
        if fresh {
            let class = Timeline::class_at(cursor);
            let id = SampleId(9_000u32.wrapping_add(sample_index as u32));
            let sample = Sample::generate(id, class, 101 + sample_index);
            self.cached = Some((sample_index, self.sampler.collect_sample(&sample)));
        }
        self.cached.as_ref().expect("cache just filled").1[offset].clone()
    }
}

/// How [`run_pipeline`] should behave — shared by the live monitor
/// (paced, unbounded, lossy backpressure) and the chaos harness
/// (unpaced, finite, lossless, with injected faults).
#[derive(Clone)]
pub struct PipelineConfig {
    /// Stop after this many windows; 0 = run until `stop` is raised.
    pub windows_limit: u64,
    /// Checkpoint every N processed windows; 0 disables checkpointing.
    pub checkpoint_every: u64,
    /// Where the checkpoint lives; `None` disables persistence.
    pub checkpoint_path: Option<PathBuf>,
    /// Run-config digest stamped into (and demanded from) snapshots.
    pub config_digest: u64,
    /// Bounded producer→worker queue depth.
    pub queue_capacity: usize,
    /// Producer pacing per window (the paper's 10 ms cadence), or
    /// `None` to stream at full speed.
    pub pace: Option<Duration>,
    /// `true`: full queue drops windows (counted). `false`: the
    /// producer blocks — lossless, required for replay determinism.
    pub drop_when_full: bool,
    /// Give up after this many worker restarts.
    pub max_restarts: u32,
    /// Exponential backoff (base ms, max ms) between restarts.
    pub backoff_ms: (u64, u64),
    /// `true`: really sleep the backoff delay (live mode). `false`:
    /// account for it without sleeping (chaos replay).
    pub sleep_on_backoff: bool,
    /// Circuit breaker (window, trip threshold, cooldown ticks).
    pub breaker: (usize, usize, u64),
    /// Chaos: panic the worker when it reaches each of these cursors.
    /// Single-shot — a cursor panics once, then replays cleanly.
    pub panic_at: Vec<u64>,
    /// Chaos: replace windows in `[start, end)` with all-NaN vectors
    /// (a hostile fault-plan perturbation).
    pub nan_burst: Option<(u64, u64)>,
    /// Cooperative shutdown flag (SIGINT).
    pub stop: Option<Arc<AtomicBool>>,
    /// Shared health state mirrored to `/readyz`.
    pub health: Option<Arc<Health>>,
    /// Record the per-cursor verdict sequence in the report (chaos
    /// invariant checks). Requires a finite `windows_limit`.
    pub capture_verdicts: bool,
    /// Print alarm lines to stderr (live mode).
    pub verbose: bool,
    /// Flight recorder (ring 0 of the hub); `None` records nothing.
    pub recorder: Option<Arc<RecorderHub>>,
    /// Also emit a diagnostic bundle when the hysteresis alarm first
    /// latches (the `alarm_latch` trigger). Off by default — in
    /// malware-phase workloads alarms are routine, not anomalies.
    pub bundle_on_alarm: bool,
}

impl PipelineConfig {
    /// Lossless, unpaced defaults suitable for tests and chaos runs.
    pub fn lossless(windows_limit: u64) -> PipelineConfig {
        PipelineConfig {
            windows_limit,
            checkpoint_every: 0,
            checkpoint_path: None,
            config_digest: 0,
            queue_capacity: 32,
            pace: None,
            drop_when_full: false,
            max_restarts: 8,
            backoff_ms: (50, 800),
            sleep_on_backoff: false,
            breaker: (16, 8, 32),
            panic_at: Vec::new(),
            nan_burst: None,
            stop: None,
            health: None,
            capture_verdicts: true,
            verbose: false,
            recorder: None,
            bundle_on_alarm: false,
        }
    }
}

/// What a pipeline run did — counters for the exposition and the
/// invariants the chaos harness asserts on.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Highest cursor processed, plus one (timeline progress).
    pub observed: u64,
    /// Total windows fed to the worker, including post-restart replay.
    pub processed: u64,
    /// Worker restarts performed by the supervisor.
    pub restarts: u64,
    /// Circuit-breaker trips.
    pub trips: u64,
    /// Windows dropped by producer backpressure.
    pub dropped: u64,
    /// Windows skipped (not classified) while the breaker was open.
    pub degraded: u64,
    /// Checkpoint loads refused (corrupt/mismatched) during recovery.
    pub refusals: u64,
    /// Largest replay gap (windows between the restored cursor and the
    /// crash point) across all restarts.
    pub max_missed_gap: u64,
    /// `true` when the run ended on the `stop` flag.
    pub interrupted: bool,
    /// Per-cursor verdicts when `capture_verdicts` was set (index =
    /// cursor; `None` = never processed, e.g. dropped).
    pub verdicts: Vec<Option<OnlineVerdict>>,
}

/// What one worker incarnation reported back.
struct WorkerExit {
    monitor: OnlineDetector,
    cursor: u64,
    interrupted: bool,
}

/// Everything mutable the worker shares with the supervisor across
/// `catch_unwind` boundaries.
struct Shared {
    breaker: CircuitBreaker,
    panic_at: BTreeSet<u64>,
    verdicts: Vec<Option<OnlineVerdict>>,
    processed: u64,
    highest: u64,
    degraded: u64,
    alarm_latched: bool,
    suspicion_latched: bool,
}

/// Run the supervised pipeline to completion (or interruption).
///
/// `pristine` is the freshly trained monitor: the state used when no
/// checkpoint exists or the checkpoint is refused.
///
/// # Errors
///
/// Returns an error when the timeline cannot be built or the
/// supervisor exhausts `max_restarts`.
pub fn run_pipeline(
    pristine: &OnlineDetector,
    sampler_config: &SamplerConfig,
    cfg: &PipelineConfig,
) -> Result<PipelineReport, CoreError> {
    let mut backoff = Backoff::new(cfg.backoff_ms.0, cfg.backoff_ms.1);
    let mut restarts = 0u64;
    let mut refusals = 0u64;
    let mut max_missed_gap = 0u64;
    let dropped = Arc::new(AtomicU64::new(0));

    let capture_len = if cfg.capture_verdicts {
        usize::try_from(cfg.windows_limit).unwrap_or(0)
    } else {
        0
    };
    let mut shared = Shared {
        breaker: CircuitBreaker::new(cfg.breaker.0, cfg.breaker.1, cfg.breaker.2),
        panic_at: cfg.panic_at.iter().copied().collect(),
        verdicts: vec![None; capture_len],
        processed: 0,
        highest: 0,
        degraded: 0,
        alarm_latched: false,
        suspicion_latched: false,
    };

    // Resume from a previous run's checkpoint when one is present and
    // acceptable; otherwise start pristine at cursor zero.
    let (mut monitor, mut cursor) = match initial_state(cfg) {
        InitialState::Resumed(m, c) => (*m, c),
        InitialState::Pristine => (pristine.clone(), 0),
        InitialState::Refused => {
            refusals += 1;
            hbmd_obs::incr("snapshot.refused");
            if let Some(hub) = &cfg.recorder {
                hub.record(
                    0,
                    &RecorderEvent::Fault {
                        stream: 0,
                        cursor: 0,
                        kind: FaultKind::Refusal,
                    },
                );
                let mut trigger = Trigger::new("snapshot_refusal");
                trigger.details = "initial checkpoint refused; starting pristine".to_owned();
                report_bundle(hub.trigger(&trigger));
            }
            (pristine.clone(), 0)
        }
    };

    set_health(cfg, ServiceState::Ready);
    let interrupted = loop {
        // One producer incarnation per worker incarnation, starting at
        // the worker's resume cursor.
        let timeline = Timeline::new(sampler_config).map_err(CoreError::from)?;
        let (tx, rx) = std::sync::mpsc::sync_channel(cfg.queue_capacity.max(1));
        let producer = spawn_producer(
            timeline,
            tx,
            cursor,
            cfg.windows_limit,
            cfg.pace,
            cfg.drop_when_full,
            Arc::clone(&dropped),
            cfg.stop.clone(),
        );

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(monitor.clone(), cursor, rx, cfg, &mut shared)
        }));
        // The worker's receiver is gone either way; the producer sees
        // the closed channel (or the stop flag) and exits.
        let _ = producer.join();

        match outcome {
            Ok(exit) => {
                monitor = exit.monitor;
                cursor = exit.cursor;
                break exit.interrupted;
            }
            Err(_) => {
                let crash_point = shared.highest.saturating_add(1);
                set_health(cfg, ServiceState::Restarting);
                if let Some(health) = &cfg.health {
                    health.record_restart();
                }
                hbmd_obs::incr("supervisor.restarts");
                restarts += 1;
                if let Some(hub) = &cfg.recorder {
                    hub.record(
                        0,
                        &RecorderEvent::Restart {
                            attempt: u32::try_from(restarts).unwrap_or(u32::MAX),
                        },
                    );
                }
                if restarts > u64::from(cfg.max_restarts) {
                    if let Some(hub) = &cfg.recorder {
                        let mut trigger = Trigger::new("restart_budget");
                        trigger.cursor = Some(crash_point);
                        trigger.details = format!("supervisor gave up after {restarts} restarts");
                        report_bundle(hub.trigger(&trigger));
                    }
                    return Err(CoreError::Config(format!(
                        "supervisor gave up after {restarts} restarts"
                    )));
                }
                let delay = backoff.next_delay_ms();
                if cfg.sleep_on_backoff {
                    std::thread::sleep(Duration::from_millis(delay));
                }
                match recover_state(cfg) {
                    RecoveredState::Restored(m, c) => {
                        monitor = *m;
                        cursor = c;
                    }
                    RecoveredState::Refused(reason) => {
                        refusals += 1;
                        hbmd_obs::incr("snapshot.refused");
                        eprintln!("supervisor: checkpoint refused ({reason}); retraining state");
                        if let Some(hub) = &cfg.recorder {
                            hub.record(
                                0,
                                &RecorderEvent::Fault {
                                    stream: 0,
                                    cursor: crash_point,
                                    kind: FaultKind::Refusal,
                                },
                            );
                            let mut trigger = Trigger::new("snapshot_refusal");
                            trigger.cursor = Some(crash_point);
                            trigger.details = format!("checkpoint refused after restart: {reason}");
                            report_bundle(hub.trigger(&trigger));
                        }
                        monitor = pristine.clone();
                        cursor = 0;
                    }
                    RecoveredState::None => {
                        monitor = pristine.clone();
                        cursor = 0;
                    }
                }
                max_missed_gap = max_missed_gap.max(crash_point.saturating_sub(cursor));
                set_health(cfg, ServiceState::Ready);
            }
        }
    };

    // The producer may notice the stop flag first and just close the
    // channel; either way the run counts as interrupted.
    let interrupted = interrupted
        || cfg
            .stop
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::SeqCst));

    // Flush a final checkpoint so the next start resumes instead of
    // retraining — the graceful-shutdown contract.
    if cfg.checkpoint_every > 0 {
        save_checkpoint(&monitor, cursor, cfg);
    }
    set_health(cfg, ServiceState::Starting);

    let dropped = dropped.load(Ordering::SeqCst);
    if dropped > 0 {
        hbmd_obs::add("pipeline.dropped_windows", dropped);
    }
    Ok(PipelineReport {
        observed: if shared.processed > 0 {
            shared.highest.saturating_add(1)
        } else {
            cursor
        },
        processed: shared.processed,
        restarts,
        trips: shared.breaker.trips(),
        dropped,
        degraded: shared.degraded,
        refusals,
        max_missed_gap,
        interrupted,
        verdicts: std::mem::take(&mut shared.verdicts),
    })
}

enum InitialState {
    Resumed(Box<OnlineDetector>, u64),
    Pristine,
    Refused,
}

fn initial_state(cfg: &PipelineConfig) -> InitialState {
    let Some(path) = &cfg.checkpoint_path else {
        return InitialState::Pristine;
    };
    if !path.exists() {
        return InitialState::Pristine;
    }
    match snapshot::load(path, cfg.config_digest) {
        Ok(snap) => InitialState::Resumed(Box::new(snap.monitor), snap.cursor),
        Err(refusal) => {
            eprintln!("supervisor: existing checkpoint refused ({refusal}); starting pristine");
            InitialState::Refused
        }
    }
}

enum RecoveredState {
    Restored(Box<OnlineDetector>, u64),
    Refused(String),
    None,
}

fn recover_state(cfg: &PipelineConfig) -> RecoveredState {
    let Some(path) = &cfg.checkpoint_path else {
        return RecoveredState::None;
    };
    if !path.exists() {
        return RecoveredState::None;
    }
    match snapshot::load(path, cfg.config_digest) {
        Ok(snap) => RecoveredState::Restored(Box::new(snap.monitor), snap.cursor),
        Err(refusal) => RecoveredState::Refused(refusal.to_string()),
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_producer(
    mut timeline: Timeline,
    tx: SyncSender<(u64, FeatureVector)>,
    start: u64,
    limit: u64,
    pace: Option<Duration>,
    drop_when_full: bool,
    dropped: Arc<AtomicU64>,
    stop: Option<Arc<AtomicBool>>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("hbmd-timeline".to_owned())
        .spawn(move || {
            let mut cursor = start;
            while limit == 0 || cursor < limit {
                if stop
                    .as_ref()
                    .is_some_and(|flag| flag.load(Ordering::SeqCst))
                {
                    break;
                }
                let window = timeline.window(cursor);
                if drop_when_full {
                    match tx.try_send((cursor, window)) {
                        Ok(()) => {}
                        Err(TrySendError::Full(_)) => {
                            // Explicit backpressure: the worker is
                            // behind, shed this window and move on.
                            dropped.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                } else if tx.send((cursor, window)).is_err() {
                    break;
                }
                cursor += 1;
                if let Some(pace) = pace {
                    std::thread::sleep(pace);
                }
            }
        })
        .expect("spawn timeline producer")
}

fn worker_loop(
    mut monitor: OnlineDetector,
    start: u64,
    rx: Receiver<(u64, FeatureVector)>,
    cfg: &PipelineConfig,
    shared: &mut Shared,
) -> WorkerExit {
    let mut cursor_next = start;
    let mut interrupted = false;
    while let Ok((cursor, window)) = rx.recv() {
        if cfg
            .stop
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::SeqCst))
        {
            cursor_next = cursor;
            interrupted = true;
            break;
        }
        // Injected fault: panic exactly once per scheduled cursor, so
        // the post-restart replay of the same cursor runs clean.
        if shared.panic_at.remove(&cursor) {
            if let Some(hub) = &cfg.recorder {
                hub.record(
                    0,
                    &RecorderEvent::Fault {
                        stream: 0,
                        cursor,
                        kind: FaultKind::Panic,
                    },
                );
            }
            panic!("chaos: injected worker panic at window {cursor}");
        }
        let window = match cfg.nan_burst {
            Some((from, to)) if cursor >= from && cursor < to => {
                if let Some(hub) = &cfg.recorder {
                    hub.record(
                        0,
                        &RecorderEvent::Fault {
                            stream: 0,
                            cursor,
                            kind: FaultKind::Nan,
                        },
                    );
                }
                FeatureVector::from_slice(&[f64::NAN; HpcEvent::COUNT])
                    .expect("full-width NaN vector")
            }
            _ => window,
        };

        if shared.breaker.state() == BreakerState::Open {
            // Degraded: don't feed the vote ring, just burn a cooldown
            // tick and account for the skipped window.
            shared.degraded += 1;
            let before = shared.breaker.state();
            let after = shared.breaker.record(false);
            if before == BreakerState::Open && after == BreakerState::HalfOpen {
                set_health(cfg, ServiceState::Ready);
            }
        } else {
            let verdict = monitor.observe(&window);
            let faulted = monitor.last_window_abstained();
            let suspicious = monitor.last_window_suspicious();
            if let Some(hub) = &cfg.recorder {
                hub.record(0, &window_event(0, cursor, verdict, faulted, &window));
                if suspicious {
                    let dispersion = monitor
                        .detector()
                        .suspicion(&window)
                        .unwrap_or(0.0)
                        .clamp(0.0, 1.0);
                    let threshold = monitor
                        .state()
                        .suspicion_threshold()
                        .unwrap_or(0.0)
                        .clamp(0.0, 1.0);
                    hub.record(
                        0,
                        &RecorderEvent::Disagreement {
                            stream: 0,
                            cursor,
                            dispersion_permille: (dispersion * 1000.0).round() as u16,
                            threshold_permille: (threshold * 1000.0).round() as u16,
                        },
                    );
                    if cfg.bundle_on_alarm && !shared.suspicion_latched {
                        shared.suspicion_latched = true;
                        let mut trigger = Trigger::new("attack_evasion");
                        trigger.stream = Some(0);
                        trigger.cursor = Some(cursor);
                        trigger.details = format!(
                            "ensemble disagreement {dispersion:.3} crossed the \
                             evasion-alarm threshold at window {cursor}"
                        );
                        report_bundle(hub.trigger(&trigger));
                    }
                }
                if cfg.bundle_on_alarm
                    && !shared.alarm_latched
                    && matches!(verdict, OnlineVerdict::Alarm { .. })
                {
                    shared.alarm_latched = true;
                    let mut trigger = Trigger::new("alarm_latch");
                    trigger.stream = Some(0);
                    trigger.cursor = Some(cursor);
                    trigger.details = format!("first alarm verdict at window {cursor}");
                    report_bundle(hub.trigger(&trigger));
                }
            }
            let before = shared.breaker.state();
            let after = shared.breaker.record(faulted);
            if after == BreakerState::Open && before != BreakerState::Open {
                if let Some(health) = &cfg.health {
                    health.record_trip();
                }
                hbmd_obs::incr("breaker.trips");
                set_health(cfg, ServiceState::Degraded);
                if let Some(hub) = &cfg.recorder {
                    hub.record(0, &RecorderEvent::Breaker { stream: 0, cursor });
                    let mut trigger = Trigger::new("breaker_trip");
                    trigger.stream = Some(0);
                    trigger.cursor = Some(cursor);
                    trigger.details =
                        format!("circuit breaker opened after abstention at window {cursor}");
                    report_bundle(hub.trigger(&trigger));
                }
            }
            if let Some(slot) = shared
                .verdicts
                .get_mut(usize::try_from(cursor).unwrap_or(usize::MAX))
            {
                *slot = Some(verdict);
            }
            if cfg.verbose {
                if let OnlineVerdict::Alarm { family, votes, of } = verdict {
                    if cursor.is_multiple_of(16) {
                        eprintln!(
                            "serve: ALARM ({family}, {votes}/{of} windows) at window {cursor}"
                        );
                    }
                }
            }
        }

        shared.processed += 1;
        shared.highest = shared.highest.max(cursor);
        cursor_next = cursor + 1;
        if cfg.checkpoint_every > 0 && cursor_next.is_multiple_of(cfg.checkpoint_every) {
            save_checkpoint(&monitor, cursor_next, cfg);
        }
    }
    WorkerExit {
        monitor,
        cursor: cursor_next,
        interrupted,
    }
}

fn save_checkpoint(monitor: &OnlineDetector, cursor: u64, cfg: &PipelineConfig) {
    let Some(path) = &cfg.checkpoint_path else {
        return;
    };
    let snap = MonitorSnapshot::new(monitor.clone(), cursor, cfg.config_digest);
    match snapshot::save(&snap, path) {
        Ok(()) => {
            hbmd_obs::incr("snapshot.saved");
            if let Some(hub) = &cfg.recorder {
                hub.record(0, &RecorderEvent::Checkpoint { cursor });
            }
        }
        Err(e) => {
            // A failed checkpoint degrades recovery, not liveness.
            hbmd_obs::incr("snapshot.save_failed");
            eprintln!("supervisor: checkpoint write failed: {e}");
        }
    }
}

fn set_health(cfg: &PipelineConfig, state: ServiceState) {
    if let Some(health) = &cfg.health {
        health.set_state(state);
    }
}

/// Logs the outcome of a trigger-driven bundle emission. A failed
/// bundle write degrades diagnosability, not liveness.
fn report_bundle(
    outcome: Result<Option<hbmd_obs::recorder::BundleOutcome>, hbmd_obs::recorder::BundleError>,
) {
    match outcome {
        Ok(Some(bundle)) => eprintln!(
            "recorder: wrote diagnostic bundle {} ({} events)",
            bundle.path.display(),
            bundle.events
        ),
        Ok(None) => {}
        Err(e) => eprintln!("recorder: bundle write failed: {e}"),
    }
}
