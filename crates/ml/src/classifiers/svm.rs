use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::classifier::Classifier;
use crate::data::{Dataset, MlError};
use crate::filter::Standardize;

/// A linear support vector machine trained with the Pegasos
/// (stochastic sub-gradient) algorithm — the role WEKA's `SMO` plays in
/// the reference evaluation.
///
/// Multiclass problems are handled one-vs-rest: one hyperplane per
/// class, highest margin wins. Features are standardised internally.
///
/// # Examples
///
/// ```
/// use hbmd_ml::{Classifier, Dataset, LinearSvm};
///
/// let mut data = Dataset::new(vec!["x".into()], vec!["neg".into(), "pos".into()])?;
/// for i in 0..40 {
///     data.push(vec![i as f64], usize::from(i >= 20))?;
/// }
/// let mut svm = LinearSvm::new();
/// svm.fit(&data)?;
/// assert_eq!(svm.predict(&[36.0]), 1);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LinearSvm {
    lambda: f64,
    epochs: usize,
    seed: u64,
    model: Option<SvmModel>,
}

#[derive(Debug, Clone)]
struct SvmModel {
    standardize: Standardize,
    /// One hyperplane per class: `[class][feature]` plus trailing bias.
    planes: Vec<Vec<f64>>,
}

impl LinearSvm {
    /// Defaults: λ = 1e-4, 40 epochs.
    pub fn new() -> LinearSvm {
        LinearSvm {
            lambda: 1e-4,
            epochs: 40,
            seed: 1,
            model: None,
        }
    }

    /// Custom regularisation and schedule.
    ///
    /// # Panics
    ///
    /// Panics when `lambda` is not positive or `epochs` is zero.
    pub fn with_params(lambda: f64, epochs: usize) -> LinearSvm {
        assert!(lambda > 0.0, "lambda must be positive");
        assert!(epochs > 0, "epochs must be non-zero");
        LinearSvm {
            lambda,
            epochs,
            seed: 1,
            model: None,
        }
    }

    /// Deterministic sampling seed.
    pub fn with_seed(mut self, seed: u64) -> LinearSvm {
        self.seed = seed;
        self
    }

    /// `(num_features, num_classes)` of the fitted model.
    pub fn dims(&self) -> Option<(usize, usize)> {
        self.model
            .as_ref()
            .map(|m| (m.planes[0].len() - 1, m.planes.len()))
    }

    /// Per-class margins for one instance.
    ///
    /// # Panics
    ///
    /// Panics when called before a successful fit.
    pub fn decision_values(&self, features: &[f64]) -> Vec<f64> {
        let m = self
            .model
            .as_ref()
            .expect("LinearSvm::predict called before fit");
        let x = m.standardize.transform_row(features);
        m.planes.iter().map(|w| margin(w, &x)).collect()
    }

    /// Pegasos on one binary task: `+1` for `class`, `-1` otherwise.
    fn train_plane(
        &self,
        rows: &[Vec<f64>],
        labels: &[usize],
        class: usize,
        rng: &mut SmallRng,
    ) -> Vec<f64> {
        let features = rows[0].len();
        let mut w = vec![0.0f64; features + 1];
        let n = rows.len();
        let mut t = 0usize;
        for _epoch in 0..self.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.gen_range(0..n);
                let y = if labels[i] == class { 1.0 } else { -1.0 };
                let eta = 1.0 / (self.lambda * t as f64);
                let m = y * margin(&w, &rows[i]);
                // Weight decay on the non-bias coordinates.
                for wj in w[..features].iter_mut() {
                    *wj *= 1.0 - eta * self.lambda;
                }
                if m < 1.0 {
                    for (wj, xj) in w[..features].iter_mut().zip(&rows[i]) {
                        *wj += eta * y * xj;
                    }
                    w[features] += eta * y;
                }
            }
        }
        w
    }
}

fn margin(w: &[f64], x: &[f64]) -> f64 {
    let bias = w[w.len() - 1];
    w[..w.len() - 1]
        .iter()
        .zip(x)
        .map(|(wi, xi)| wi * xi)
        .sum::<f64>()
        + bias
}

impl Default for LinearSvm {
    fn default() -> LinearSvm {
        LinearSvm::new()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        data.check_trainable()?;
        let standardize = Standardize::fit(data);
        let rows: Vec<Vec<f64>> = data
            .rows()
            .iter()
            .map(|r| standardize.transform_row(r))
            .collect();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let counts = data.class_counts();
        let planes: Vec<Vec<f64>> = (0..data.num_classes())
            .map(|class| {
                if counts[class] == 0 {
                    // Absent class: a plane that never wins.
                    let mut w = vec![0.0; data.num_features() + 1];
                    w[data.num_features()] = f64::NEG_INFINITY;
                    w
                } else {
                    self.train_plane(&rows, data.labels(), class, &mut rng)
                }
            })
            .collect();
        self.model = Some(SvmModel {
            standardize,
            planes,
        });
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> usize {
        self.decision_values(features)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &str {
        "SVM"
    }
}

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for LinearSvm {
    fn snap(&self, w: &mut SnapWriter) {
        self.lambda.snap(w);
        self.epochs.snap(w);
        self.seed.snap(w);
        self.model.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(LinearSvm {
            lambda: Snap::unsnap(r)?,
            epochs: Snap::unsnap(r)?,
            seed: Snap::unsnap(r)?,
            model: Snap::unsnap(r)?,
        })
    }
}

impl Snap for SvmModel {
    fn snap(&self, w: &mut SnapWriter) {
        self.standardize.snap(w);
        self.planes.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SvmModel {
            standardize: Snap::unsnap(r)?,
            planes: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_boundary_is_learned() {
        let mut d =
            Dataset::new(vec!["x".into()], vec!["neg".into(), "pos".into()]).expect("schema");
        for i in 0..80 {
            d.push(vec![i as f64], usize::from(i >= 40)).expect("row");
        }
        let mut svm = LinearSvm::new();
        svm.fit(&d).expect("fit");
        assert_eq!(svm.predict(&[3.0]), 0);
        assert_eq!(svm.predict(&[77.0]), 1);
        let margins = svm.decision_values(&[77.0]);
        assert!(margins[1] > margins[0]);
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let mut d = Dataset::new(
            vec!["x".into(), "y".into()],
            vec!["a".into(), "b".into(), "c".into()],
        )
        .expect("schema");
        for i in 0..60 {
            let wiggle = (i % 5) as f64 * 0.1;
            d.push(vec![0.0 + wiggle, 0.0], 0).expect("row");
            d.push(vec![10.0 + wiggle, 0.0], 1).expect("row");
            d.push(vec![5.0 + wiggle, 10.0], 2).expect("row");
        }
        let mut svm = LinearSvm::new();
        svm.fit(&d).expect("fit");
        assert_eq!(svm.predict(&[0.2, 0.0]), 0);
        assert_eq!(svm.predict(&[10.2, 0.0]), 1);
        assert_eq!(svm.predict(&[5.2, 10.0]), 2);
        assert_eq!(svm.dims(), Some((2, 3)));
    }

    #[test]
    fn absent_class_never_wins() {
        let mut d = Dataset::new(
            vec!["x".into()],
            vec!["a".into(), "ghost".into(), "b".into()],
        )
        .expect("schema");
        for i in 0..40 {
            d.push(vec![i as f64], if i >= 20 { 2 } else { 0 })
                .expect("row");
        }
        let mut svm = LinearSvm::new();
        svm.fit(&d).expect("fit");
        for x in 0..40 {
            assert_ne!(svm.predict(&[x as f64]), 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        for i in 0..50 {
            d.push(vec![i as f64], usize::from(i >= 25)).expect("row");
        }
        let run = |seed| {
            let mut svm = LinearSvm::new().with_seed(seed);
            svm.fit(&d).expect("fit");
            svm.decision_values(&[10.0])
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn bad_lambda_panics() {
        let _ = LinearSvm::with_params(0.0, 10);
    }

    #[test]
    fn rejects_untrainable() {
        let d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        assert!(LinearSvm::new().fit(&d).is_err());
    }
}
