//! The classifier implementations.

pub mod ibk;
pub mod j48;
pub mod jrip;
pub mod logistic;
pub mod mlp;
pub mod naive_bayes;
pub mod one_r;
pub mod rep_tree;
pub mod stump;
pub mod svm;
pub mod zero_r;

pub(crate) mod split;
