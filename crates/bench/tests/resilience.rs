//! Integration tests for the supervised pipeline: panic recovery must
//! be invisible in the verdict stream, checkpoints must resume instead
//! of replaying from scratch, and a NaN burst must degrade — not kill —
//! the monitor.

use std::path::PathBuf;

use hbmd_bench::resilience::{run_pipeline, PipelineConfig};
use hbmd_core::{ClassifierKind, DetectorBuilder, FeatureSet, OnlineDetector};
use hbmd_events::{FeatureVector, HpcEvent};
use hbmd_malware::{AppClass, SampleId};
use hbmd_perf::{DataRow, HpcDataset, SamplerConfig};

fn features(level: f64) -> FeatureVector {
    FeatureVector::from_slice(&[level; HpcEvent::COUNT]).expect("full-width vector")
}

/// A monitor trained on a perfectly separable synthetic dataset, so
/// tests spend no time on collection.
fn monitor() -> OnlineDetector {
    let mut rows = Vec::new();
    for i in 0..40 {
        let class = AppClass::ALL[i % AppClass::COUNT];
        let level = if class == AppClass::Benign {
            1.0
        } else {
            100.0
        };
        rows.push(DataRow {
            sample: SampleId(i as u32),
            class,
            features: features(level),
        });
    }
    let detector = DetectorBuilder::new()
        .classifier(ClassifierKind::J48)
        .feature_set(FeatureSet::Top(8))
        .train_binary(&HpcDataset::from_rows(rows))
        .expect("train on separable data");
    OnlineDetector::builder(detector)
        .window(4)
        .threshold(3)
        .build()
        .expect("valid monitor config")
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hbmd-resilience-{}-{name}", std::process::id()))
}

#[test]
fn panic_recovery_is_invisible_in_the_verdict_stream() {
    let monitor = monitor();
    let sampler = SamplerConfig::fast();
    // The toy-trained sanitizer abstains on plenty of real sampled
    // windows; park the breaker out of reach (the trip threshold
    // clamps to the ring size, so the ring must outsize the run) so
    // every window gets a recorded verdict and the comparison covers
    // the full stream.
    let no_breaker = PipelineConfig {
        breaker: (97, usize::MAX, 32),
        ..PipelineConfig::lossless(96)
    };
    let baseline = run_pipeline(&monitor, &sampler, &no_breaker).expect("baseline run");
    assert_eq!(baseline.restarts, 0);
    assert!(baseline.verdicts.iter().all(Option::is_some));

    let checkpoint = scratch("panic.snap");
    let _ = std::fs::remove_file(&checkpoint);
    let faulted = run_pipeline(
        &monitor,
        &sampler,
        &PipelineConfig {
            checkpoint_every: 16,
            checkpoint_path: Some(checkpoint.clone()),
            config_digest: 0xBEEF,
            panic_at: vec![40, 70],
            ..no_breaker.clone()
        },
    )
    .expect("faulted run");
    assert_eq!(faulted.restarts, 2, "one restart per injected panic");
    assert_eq!(
        faulted.verdicts, baseline.verdicts,
        "post-restore verdicts must match the unfaulted run exactly"
    );
    assert!(
        faulted.max_missed_gap <= 16 + 32,
        "replay gap {} exceeds checkpoint spacing + queue depth",
        faulted.max_missed_gap
    );
    assert!(
        checkpoint.exists(),
        "clean shutdown must flush a checkpoint"
    );
    let _ = std::fs::remove_file(&checkpoint);
}

#[test]
fn checkpoint_resume_processes_only_new_windows() {
    let monitor = monitor();
    let sampler = SamplerConfig::fast();
    let checkpoint = scratch("resume.snap");
    let _ = std::fs::remove_file(&checkpoint);
    let first = run_pipeline(
        &monitor,
        &sampler,
        &PipelineConfig {
            checkpoint_every: 16,
            checkpoint_path: Some(checkpoint.clone()),
            config_digest: 0xBEEF,
            ..PipelineConfig::lossless(64)
        },
    )
    .expect("first run");
    assert_eq!(first.observed, 64);
    assert_eq!(first.processed, 64);

    let second = run_pipeline(
        &monitor,
        &sampler,
        &PipelineConfig {
            checkpoint_every: 16,
            checkpoint_path: Some(checkpoint.clone()),
            config_digest: 0xBEEF,
            ..PipelineConfig::lossless(96)
        },
    )
    .expect("resumed run");
    assert_eq!(second.observed, 96);
    assert_eq!(
        second.processed, 32,
        "a resumed run must pick up at the checkpoint cursor, not window 0"
    );
    let _ = std::fs::remove_file(&checkpoint);
}

#[test]
fn mismatched_digest_forces_a_pristine_start() {
    let monitor = monitor();
    let sampler = SamplerConfig::fast();
    let checkpoint = scratch("digest.snap");
    let _ = std::fs::remove_file(&checkpoint);
    run_pipeline(
        &monitor,
        &sampler,
        &PipelineConfig {
            checkpoint_every: 16,
            checkpoint_path: Some(checkpoint.clone()),
            config_digest: 0xBEEF,
            ..PipelineConfig::lossless(64)
        },
    )
    .expect("first run");

    // Same snapshot, different run configuration: the checkpoint must
    // be refused and the run restarted from scratch, not resumed into
    // a detector trained under different assumptions.
    let other = run_pipeline(
        &monitor,
        &sampler,
        &PipelineConfig {
            checkpoint_every: 16,
            checkpoint_path: Some(checkpoint.clone()),
            config_digest: 0xF00D,
            ..PipelineConfig::lossless(64)
        },
    )
    .expect("mismatched run");
    assert_eq!(other.refusals, 1, "config-digest mismatch must be refused");
    assert_eq!(other.processed, 64, "refusal falls back to a full run");
    let _ = std::fs::remove_file(&checkpoint);
}

#[test]
fn nan_burst_degrades_and_recovers() {
    let monitor = monitor();
    let sampler = SamplerConfig::fast();
    let report = run_pipeline(
        &monitor,
        &sampler,
        &PipelineConfig {
            nan_burst: Some((32, 96)),
            ..PipelineConfig::lossless(160)
        },
    )
    .expect("stormy run");
    assert!(
        report.trips >= 1,
        "a sustained NaN burst must trip the breaker"
    );
    assert!(report.degraded > 0, "an open breaker must skip windows");
    assert_eq!(report.restarts, 0, "degradation is not a crash");
    assert!(
        report.verdicts.last().expect("capture enabled").is_some(),
        "classification must resume after the burst clears"
    );
}
