use serde::{Deserialize, Serialize};

/// Sizing of the tournament predictor and its branch target buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchPredictorConfig {
    /// log2 of each pattern-history-table's entry count (bimodal,
    /// gshare and chooser tables share this size).
    pub pht_bits: u32,
    /// Global-history length in branches (gshare component).
    pub history_bits: u32,
    /// log2 of the BTB entry count.
    pub btb_bits: u32,
}

impl BranchPredictorConfig {
    /// Haswell-shaped sizing: 4096-entry tables, 12-bit history,
    /// 1024-entry BTB.
    pub fn haswell() -> BranchPredictorConfig {
        BranchPredictorConfig {
            pht_bits: 12,
            history_bits: 12,
            btb_bits: 10,
        }
    }
}

impl Default for BranchPredictorConfig {
    fn default() -> BranchPredictorConfig {
        BranchPredictorConfig::haswell()
    }
}

/// Outcome of predicting one branch, after the predictor has been
/// trained on the actual direction and target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchOutcome {
    /// The predicted direction disagreed with the actual direction, or
    /// the direction was right but the target was unknown/stale.
    pub mispredicted: bool,
    /// The BTB had no entry for the branch PC (a "branch-load miss").
    pub btb_miss: bool,
}

/// A tournament direction predictor (per-PC bimodal + gshare, with a
/// per-PC chooser) and a direct-mapped branch target buffer.
///
/// The bimodal component captures per-site stable directions; the gshare
/// component captures history-correlated patterns; the chooser learns,
/// per branch site, which component to trust — the structure of the
/// Alpha 21264/modern-Intel front end.
///
/// Each predicted branch performs one BTB read — the microarchitectural
/// source of the `branch-loads` event; a missing entry raises
/// `branch-load-misses`.
///
/// # Examples
///
/// ```
/// use hbmd_uarch::{BranchPredictor, BranchPredictorConfig};
///
/// let mut bp = BranchPredictor::new(BranchPredictorConfig::haswell());
/// // A loop branch taken every time becomes predictable quickly.
/// let mut late_mispredicts = 0;
/// for i in 0..1000 {
///     let outcome = bp.predict_and_train(0x400_000, true, 0x400_040);
///     if i >= 100 && outcome.mispredicted {
///         late_mispredicts += 1;
///     }
/// }
/// assert_eq!(late_mispredicts, 0);
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BranchPredictorConfig,
    /// 2-bit saturating counters indexed by PC.
    bimodal: Vec<u8>,
    /// 2-bit saturating counters indexed by PC ^ history.
    gshare: Vec<u8>,
    /// 2-bit chooser indexed by PC: >= 2 trusts gshare.
    chooser: Vec<u8>,
    /// Tagged direct-mapped BTB: `(tag, target)` per entry.
    btb: Vec<Option<(u64, u64)>>,
    history: u64,
    history_mask: u64,
    pht_mask: u64,
    btb_mask: u64,
    branches: u64,
    mispredicts: u64,
    btb_misses: u64,
}

impl BranchPredictor {
    /// Build a predictor with the given sizing.
    pub fn new(config: BranchPredictorConfig) -> BranchPredictor {
        let pht_len = 1usize << config.pht_bits;
        let btb_len = 1usize << config.btb_bits;
        BranchPredictor {
            config,
            bimodal: vec![1; pht_len], // weakly not-taken
            gshare: vec![1; pht_len],
            chooser: vec![1; pht_len], // weakly prefer bimodal
            btb: vec![None; btb_len],
            history: 0,
            history_mask: (1u64 << config.history_bits) - 1,
            pht_mask: (pht_len - 1) as u64,
            btb_mask: (btb_len - 1) as u64,
            branches: 0,
            mispredicts: 0,
            btb_misses: 0,
        }
    }

    /// Sizing this predictor was built with.
    pub fn config(&self) -> &BranchPredictorConfig {
        &self.config
    }

    /// Predict the branch at `pc`, then train on the actual `taken`
    /// direction and `target`.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool, target: u64) -> BranchOutcome {
        self.branches += 1;
        let bi_index = ((pc >> 2) & self.pht_mask) as usize;
        let gs_index = (((pc >> 2) ^ self.history) & self.pht_mask) as usize;

        let bi_taken = self.bimodal[bi_index] >= 2;
        let gs_taken = self.gshare[gs_index] >= 2;
        let use_gshare = self.chooser[bi_index] >= 2;
        let predicted_taken = if use_gshare { gs_taken } else { bi_taken };

        let btb_index = ((pc >> 2) & self.btb_mask) as usize;
        let btb_tag = pc >> (2 + self.config.btb_bits);
        let btb_entry = self.btb[btb_index];
        let btb_hit = matches!(btb_entry, Some((tag, _)) if tag == btb_tag);
        let target_known = matches!(btb_entry, Some((tag, t)) if tag == btb_tag && t == target);

        let direction_wrong = predicted_taken != taken;
        // A taken branch whose target the BTB could not supply redirects
        // the front end just like a direction mispredict.
        let mispredicted = direction_wrong || (taken && !target_known);

        if mispredicted {
            self.mispredicts += 1;
        }
        if !btb_hit {
            self.btb_misses += 1;
        }

        // Train the chooser toward whichever component was right when
        // they disagreed.
        if bi_taken != gs_taken {
            let c = &mut self.chooser[bi_index];
            if gs_taken == taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        // Train both direction tables.
        for (table, index) in [(&mut self.bimodal, bi_index), (&mut self.gshare, gs_index)] {
            let counter = &mut table[index];
            *counter = if taken {
                (*counter + 1).min(3)
            } else {
                counter.saturating_sub(1)
            };
        }
        // Taken branches install/refresh their BTB entry.
        if taken {
            self.btb[btb_index] = Some((btb_tag, target));
        }
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;

        BranchOutcome {
            mispredicted,
            btb_miss: !btb_hit,
        }
    }

    /// Branches predicted so far.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// BTB misses so far.
    pub fn btb_misses(&self) -> u64 {
        self.btb_misses
    }

    /// Misprediction ratio (0 when no branches yet).
    pub fn mispredict_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Clear tables, history and statistics.
    pub fn reset(&mut self) {
        self.bimodal.fill(1);
        self.gshare.fill(1);
        self.chooser.fill(1);
        self.btb.fill(None);
        self.history = 0;
        self.branches = 0;
        self.mispredicts = 0;
        self.btb_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn always_taken_loop_becomes_predictable() {
        let mut bp = BranchPredictor::new(BranchPredictorConfig::haswell());
        for _ in 0..64 {
            bp.predict_and_train(0x1000, true, 0x2000);
        }
        let warm = bp.mispredicts();
        for _ in 0..1000 {
            bp.predict_and_train(0x1000, true, 0x2000);
        }
        assert_eq!(bp.mispredicts(), warm, "steady-state loop mispredicts");
        assert_eq!(bp.branches(), 1064);
    }

    #[test]
    fn random_directions_mispredict_roughly_half_the_time() {
        let mut bp = BranchPredictor::new(BranchPredictorConfig::haswell());
        let mut rng = SmallRng::seed_from_u64(7);
        for i in 0..20_000u64 {
            let pc = 0x1000 + (i % 64) * 8;
            bp.predict_and_train(pc, rng.gen_bool(0.5), 0x9000);
        }
        let ratio = bp.mispredict_ratio();
        assert!(
            (0.35..=0.65).contains(&ratio),
            "random branches should hover near 0.5 mispredict, got {ratio}"
        );
    }

    #[test]
    fn alternating_pattern_is_learned_by_history() {
        let mut bp = BranchPredictor::new(BranchPredictorConfig::haswell());
        let mut taken = false;
        for _ in 0..256 {
            taken = !taken;
            bp.predict_and_train(0x1000, taken, 0x2000);
        }
        let warm = bp.mispredicts();
        for _ in 0..1000 {
            taken = !taken;
            bp.predict_and_train(0x1000, taken, 0x2000);
        }
        assert_eq!(bp.mispredicts(), warm, "gshare learns T/NT alternation");
    }

    #[test]
    fn stable_per_site_directions_survive_history_noise() {
        // Sites with fixed directions, visited in a random order with a
        // random number of other branches in between: the bimodal
        // component must keep these near-perfect despite useless history.
        let mut bp = BranchPredictor::new(BranchPredictorConfig::haswell());
        let mut rng = SmallRng::seed_from_u64(21);
        let site_dir = |site: u64| !site.is_multiple_of(3);
        // Warm up.
        for _ in 0..20_000 {
            let site = rng.gen_range(0..32u64);
            bp.predict_and_train(0x1000 + site * 8, site_dir(site), 0x9000);
        }
        let warm = bp.mispredicts();
        let warm_branches = bp.branches();
        for _ in 0..20_000 {
            let site = rng.gen_range(0..32u64);
            bp.predict_and_train(0x1000 + site * 8, site_dir(site), 0x9000);
        }
        let late_ratio = (bp.mispredicts() - warm) as f64 / (bp.branches() - warm_branches) as f64;
        assert!(
            late_ratio < 0.10,
            "stable sites should stay predictable, got {late_ratio}"
        );
    }

    #[test]
    fn btb_misses_on_first_sight_and_on_conflict() {
        let mut bp = BranchPredictor::new(BranchPredictorConfig {
            pht_bits: 4,
            history_bits: 4,
            btb_bits: 2, // 4 entries, conflict-prone
        });
        let o = bp.predict_and_train(0x1000, true, 0x2000);
        assert!(o.btb_miss);
        let o = bp.predict_and_train(0x1000, true, 0x2000);
        assert!(!o.btb_miss);
        // A branch aliasing the same set with a different tag evicts it.
        let alias = 0x1000 + (4 << 2) * 1024;
        bp.predict_and_train(alias, true, 0x3000);
        let o = bp.predict_and_train(0x1000, true, 0x2000);
        assert!(o.btb_miss, "conflict eviction causes a BTB miss");
    }

    #[test]
    fn taken_branch_without_target_counts_as_mispredict() {
        let mut bp = BranchPredictor::new(BranchPredictorConfig::haswell());
        // Train direction to taken without installing this PC's target.
        for _ in 0..8 {
            bp.predict_and_train(0x5000, true, 0x6000);
        }
        // New target: direction right, target stale -> mispredict.
        let o = bp.predict_and_train(0x5000, true, 0x7000);
        assert!(o.mispredicted);
    }

    #[test]
    fn reset_clears_state() {
        let mut bp = BranchPredictor::new(BranchPredictorConfig::haswell());
        bp.predict_and_train(0x1000, true, 0x2000);
        bp.reset();
        assert_eq!(bp.branches(), 0);
        assert_eq!(bp.mispredict_ratio(), 0.0);
        let o = bp.predict_and_train(0x1000, true, 0x2000);
        assert!(o.btb_miss, "BTB was cleared");
    }
}
