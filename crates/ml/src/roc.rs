//! ROC analysis for binary detectors.
//!
//! Malware detection lives and dies by its false-positive rate: a
//! detector that flags 1 % of benign windows still drowns an analyst.
//! This module computes ROC curves and AUC from continuous scores (the
//! probability/margin outputs of [`Mlr`](crate::Mlr) and
//! [`LinearSvm`](crate::LinearSvm)), plus the operating-point helper
//! the run-time layer uses to pick a threshold for a target FPR.

use serde::{Deserialize, Serialize};

use crate::data::MlError;

/// One ROC operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Score threshold: instances scoring `>= threshold` are flagged.
    pub threshold: f64,
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate (recall) at this threshold.
    pub tpr: f64,
}

/// A receiver-operating-characteristic curve over binary scores.
///
/// # Examples
///
/// ```
/// use hbmd_ml::RocCurve;
///
/// // Perfectly separable scores.
/// let scores = vec![0.1, 0.2, 0.3, 0.8, 0.9];
/// let labels = vec![false, false, false, true, true];
/// let roc = RocCurve::from_scores(&scores, &labels)?;
/// assert!((roc.auc() - 1.0).abs() < 1e-9);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
    auc: f64,
}

impl RocCurve {
    /// Build the curve from scores (`labels[i]` is `true` for
    /// positives). Produces one point per distinct threshold, from
    /// flag-everything to flag-nothing.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] for length mismatch and
    /// [`MlError::SingleClass`] when either class is absent.
    pub fn from_scores(scores: &[f64], labels: &[bool]) -> Result<RocCurve, MlError> {
        if scores.len() != labels.len() {
            return Err(MlError::DimensionMismatch {
                expected: scores.len(),
                found: labels.len(),
            });
        }
        let positives = labels.iter().filter(|&&l| l).count();
        let negatives = labels.len() - positives;
        if positives == 0 || negatives == 0 {
            return Err(MlError::SingleClass);
        }

        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut points = vec![RocPoint {
            threshold: f64::INFINITY,
            fpr: 0.0,
            tpr: 0.0,
        }];
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut k = 0usize;
        while k < order.len() {
            let threshold = scores[order[k]];
            // Consume every instance tied at this threshold.
            while k < order.len() && scores[order[k]] == threshold {
                if labels[order[k]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                k += 1;
            }
            points.push(RocPoint {
                threshold,
                fpr: fp as f64 / negatives as f64,
                tpr: tp as f64 / positives as f64,
            });
        }

        // Trapezoidal AUC.
        let auc = points
            .windows(2)
            .map(|pair| {
                let width = pair[1].fpr - pair[0].fpr;
                width * (pair[0].tpr + pair[1].tpr) / 2.0
            })
            .sum();

        Ok(RocCurve { points, auc })
    }

    /// The operating points, from `(0, 0)` to `(1, 1)`.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve (0.5 = chance, 1.0 = perfect).
    pub fn auc(&self) -> f64 {
        self.auc
    }

    /// The highest-TPR operating point whose FPR does not exceed
    /// `max_fpr` — how a deployment picks its alarm threshold.
    ///
    /// # Panics
    ///
    /// Panics when `max_fpr` is not within `[0, 1]`.
    pub fn operating_point(&self, max_fpr: f64) -> RocPoint {
        assert!(
            (0.0..=1.0).contains(&max_fpr),
            "max_fpr must be a rate in [0, 1]"
        );
        self.points
            .iter()
            .filter(|p| p.fpr <= max_fpr)
            .max_by(|a, b| {
                a.tpr
                    .partial_cmp(&b.tpr)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied()
            .unwrap_or(self.points[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_auc_one() {
        let scores = [0.0, 0.1, 0.2, 0.9, 1.0];
        let labels = [false, false, false, true, true];
        let roc = RocCurve::from_scores(&scores, &labels).expect("roc");
        assert!((roc.auc() - 1.0).abs() < 1e-9);
        let op = roc.operating_point(0.0);
        assert!((op.tpr - 1.0).abs() < 1e-9, "catch everything at FPR 0");
    }

    #[test]
    fn reversed_scores_have_auc_zero() {
        let scores = [1.0, 0.9, 0.1, 0.0];
        let labels = [false, false, true, true];
        let roc = RocCurve::from_scores(&scores, &labels).expect("roc");
        assert!(roc.auc() < 1e-9);
    }

    #[test]
    fn random_scores_hover_near_half() {
        let scores: Vec<f64> = (0..1000)
            .map(|i| ((i * 2654435761u64 as usize) % 997) as f64)
            .collect();
        let labels: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        let roc = RocCurve::from_scores(&scores, &labels).expect("roc");
        assert!((roc.auc() - 0.5).abs() < 0.06, "auc {}", roc.auc());
    }

    #[test]
    fn ties_are_handled_as_one_step() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        let roc = RocCurve::from_scores(&scores, &labels).expect("roc");
        // One diagonal step: AUC exactly 0.5.
        assert!((roc.auc() - 0.5).abs() < 1e-9);
        assert_eq!(roc.points().len(), 2);
    }

    #[test]
    fn curve_is_monotonic() {
        let scores = [0.9, 0.8, 0.7, 0.6, 0.55, 0.4, 0.3, 0.2];
        let labels = [true, false, true, true, false, true, false, false];
        let roc = RocCurve::from_scores(&scores, &labels).expect("roc");
        for pair in roc.points().windows(2) {
            assert!(pair[1].fpr >= pair[0].fpr);
            assert!(pair[1].tpr >= pair[0].tpr);
        }
        let ends = roc.points().last().expect("points");
        assert!((ends.fpr - 1.0).abs() < 1e-9);
        assert!((ends.tpr - 1.0).abs() < 1e-9);
    }

    #[test]
    fn operating_point_respects_the_budget() {
        let scores = [0.9, 0.85, 0.7, 0.6, 0.5, 0.4];
        let labels = [true, true, false, true, false, false];
        let roc = RocCurve::from_scores(&scores, &labels).expect("roc");
        let op = roc.operating_point(0.4);
        assert!(op.fpr <= 0.4);
        assert!(op.tpr >= 2.0 / 4.0);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(RocCurve::from_scores(&[0.5], &[true]).is_err());
        assert!(RocCurve::from_scores(&[0.5, 0.6], &[true]).is_err());
        assert!(RocCurve::from_scores(&[0.1, 0.2], &[false, false]).is_err());
    }

    #[test]
    #[should_panic(expected = "max_fpr")]
    fn bad_fpr_budget_panics() {
        let roc = RocCurve::from_scores(&[0.1, 0.9], &[false, true]).expect("roc");
        let _ = roc.operating_point(1.5);
    }
}
