//! Exposition-layer integration: the Prometheus encoder against a
//! committed golden file, and the HTTP server scraped over a real TCP
//! connection with line-by-line format validation.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use hbmd_obs::serve::{serve, ServeContext};
use hbmd_obs::{prom, Registry};

/// A registry whose contents are pure workload facts — no wall-clock —
/// so its rendering is identical on every machine and thread count.
fn deterministic_registry() -> Registry {
    let registry = Registry::new();
    registry.counter("windows_collected").add(2512);
    registry
        .counter_with("verdict", &[("verdict", "benign")])
        .add(37);
    registry
        .counter_with("verdict", &[("verdict", "malware")])
        .add(59);
    registry.gauge("collector.threads").set(4);
    registry
        .gauge_with(
            "build_info",
            &[
                ("version", "0.1.0"),
                ("config_digest", "00c0ffee00c0ffee"),
                ("source", "sim"),
            ],
        )
        .set(1);
    let votes = registry.histogram("online.alarm_votes");
    for value in [3, 3, 4, 4, 4, 0] {
        votes.record(value);
    }
    registry.counter("adversarial.attacks").add(512);
    registry.counter("adversarial.evasions").add(291);
    registry
        .counter("adversarial.attack_iterations")
        .add(61_844);
    registry.counter("adversarial.suspicion_trips").add(138);
    registry.counter("online.disagreement_trips").add(17);
    let spent = registry.histogram("adversarial.l1_permille");
    for value in [1000, 982, 760, 445, 998, 0, 213] {
        spent.record(value);
    }
    registry
}

/// The committed golden exposition. Regenerate deliberately with
/// `HBMD_REGEN_GOLDEN=1 cargo test -p hbmd-obs --test exposition`
/// and review the diff — a change here is a change to the scrape
/// contract every dashboard depends on.
#[test]
fn renders_the_committed_golden_exposition() {
    let text = prom::render(&deterministic_registry().snapshot());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_metrics.prom");
    if std::env::var_os("HBMD_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &text).expect("write golden");
    }
    let golden = std::fs::read_to_string(path).expect("golden file committed");
    assert_eq!(
        text, golden,
        "exposition drifted from tests/golden_metrics.prom; if intended, \
         regenerate with HBMD_REGEN_GOLDEN=1 and review the diff"
    );
}

#[test]
fn debug_endpoints_route_through_the_installed_handler() {
    use hbmd_obs::serve::{DebugHandler, DebugReply};
    let handler: DebugHandler = Arc::new(|path: &str| match path {
        "/debug/ping" => Some(DebugReply {
            status: 200,
            body: "{\"pong\": true}\n".to_owned(),
        }),
        "/debug/busy" => Some(DebugReply {
            status: 503,
            body: "{\"error\": \"not ready\"}\n".to_owned(),
        }),
        _ => None,
    });
    let server = serve(
        "127.0.0.1:0",
        ServeContext {
            registry: Arc::new(deterministic_registry()),
            manifest_json: "{}".to_owned(),
            health: None,
            fleet: None,
            debug: Some(handler),
        },
    )
    .expect("bind ephemeral port");

    let get = |path: &str| -> String {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    };

    let ok = get("/debug/ping");
    assert!(ok.starts_with("HTTP/1.0 200 OK"), "{ok}");
    assert!(
        ok.contains("Content-Type: application/json; charset=utf-8"),
        "{ok}"
    );
    assert!(ok.ends_with("{\"pong\": true}\n"), "{ok}");

    let busy = get("/debug/busy");
    assert!(
        busy.starts_with("HTTP/1.0 503 Service Unavailable"),
        "{busy}"
    );

    // A /debug path the handler declines falls through to 404.
    let missing = get("/debug/unknown");
    assert!(missing.starts_with("HTTP/1.0 404 Not Found"), "{missing}");

    server.shutdown().expect("clean shutdown");
}

#[test]
fn metrics_endpoint_parses_line_by_line_over_tcp() {
    let server = serve(
        "127.0.0.1:0",
        ServeContext {
            registry: Arc::new(deterministic_registry()),
            manifest_json: "{\"tool\": \"exposition-test\"}".to_owned(),
            health: None,
            fleet: None,
            debug: None,
        },
    )
    .expect("bind ephemeral port");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    write!(stream, "GET /metrics HTTP/1.0\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");

    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{head}"
    );
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .expect("numeric length");
    assert_eq!(content_length, body.len(), "length must match the body");

    // Every line must be a well-formed comment or sample line.
    let mut families_typed = std::collections::HashSet::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let family = parts.next().expect("family");
            let kind = parts.next().expect("kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE `{kind}`"
            );
            assert!(families_typed.insert(family.to_owned()), "duplicate TYPE");
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("sample value `{value}` is not a number in `{line}`"));
        let name = name_and_labels
            .split('{')
            .next()
            .expect("metric name before labels");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "name `{name}` outside the Prometheus charset"
        );
        assert!(name.starts_with("hbmd_"), "unprefixed metric `{name}`");
        // Every sample's family was declared with a TYPE line first.
        let family = name
            .trim_end_matches("_sum")
            .trim_end_matches("_count")
            .trim_end_matches("_bucket");
        assert!(
            families_typed.contains(family) || families_typed.contains(name),
            "sample `{name}` has no preceding TYPE"
        );
    }

    // Histogram invariants: cumulative buckets are non-decreasing and
    // the +Inf bucket equals _count.
    let buckets: Vec<u64> = body
        .lines()
        .filter(|l| l.starts_with("hbmd_online_alarm_votes_bucket"))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(!buckets.is_empty(), "alarm_votes histogram not exported");
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    let count: u64 = body
        .lines()
        .find(|l| l.starts_with("hbmd_online_alarm_votes_count"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("_count sample");
    assert_eq!(*buckets.last().expect("+Inf bucket"), count);
    assert_eq!(count, 6);

    server.shutdown().expect("clean shutdown");
}
