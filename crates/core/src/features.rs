//! Feature-set policies: the paper's PCA-driven feature reduction.
//!
//! The thesis runs WEKA's `PrincipalComponents` evaluator per malware
//! class (that class vs. benign) and keeps the top-ranked original
//! counters: **4 features are common to every class** and each class
//! additionally gets a **custom set of 8** (Table 2). Binary detection
//! is evaluated with the top 8 and the top 4 (Figure 13).

use hbmd_events::HpcEvent;
use hbmd_malware::AppClass;
use hbmd_ml::Pca;
use serde::{Deserialize, Serialize};

use crate::convert::to_binary_dataset;
use crate::error::CoreError;
use hbmd_perf::HpcDataset;

/// Which feature columns a detector consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureSet {
    /// All 16 collected counters.
    Full16,
    /// The `k` top-PCA-ranked counters of the training dataset.
    Top(usize),
    /// The 4 counters common to every per-class ranking (Table 2's
    /// common block).
    Common4,
    /// The 8 counters custom to one malware class (Table 2's per-class
    /// columns).
    Custom8(AppClass),
}

impl FeatureSet {
    /// Number of features this policy selects.
    pub fn len(&self) -> usize {
        match self {
            FeatureSet::Full16 => HpcEvent::COUNT,
            FeatureSet::Top(k) => *k,
            FeatureSet::Common4 => 4,
            FeatureSet::Custom8(_) => 8,
        }
    }

    /// `true` for a policy selecting zero features (only a degenerate
    /// `Top(0)`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The fitted feature-reduction plan: per-class PCA rankings computed
/// on training data, resolvable to concrete column indices for any
/// [`FeatureSet`].
///
/// # Examples
///
/// ```
/// use hbmd_core::{FeaturePlan, FeatureSet};
/// use hbmd_malware::{AppClass, SampleCatalog};
/// use hbmd_perf::{Collector, CollectorConfig};
///
/// let catalog = SampleCatalog::scaled(0.02, 3);
/// let dataset = Collector::new(CollectorConfig::fast())?.collect(&catalog)?.dataset;
/// let plan = FeaturePlan::fit(&dataset)?;
///
/// let custom = plan.resolve(FeatureSet::Custom8(AppClass::Worm))?;
/// assert_eq!(custom.len(), 8);
/// let common = plan.resolve(FeatureSet::Common4)?;
/// assert_eq!(common.len(), 4);
/// # Ok::<(), hbmd_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeaturePlan {
    /// Top-ranked column indices on the full (binary) dataset, best
    /// first.
    global_ranking: Vec<usize>,
    /// Per-malware-class ranking (class vs benign), best first, indexed
    /// by `AppClass::index() - 1`.
    class_rankings: Vec<Vec<usize>>,
}

/// The variance fraction the reference WEKA run retained
/// (`PrincipalComponents -R 0.95`).
pub const VARIANCE_RETAINED: f64 = 0.95;

impl FeaturePlan {
    /// Fit the plan on a (training) collection.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] when the dataset is empty, and
    /// [`CoreError::Config`] when a malware class has no benign
    /// counterpart to rank against.
    pub fn fit(train: &HpcDataset) -> Result<FeaturePlan, CoreError> {
        let binary = to_binary_dataset(train);
        let global = Pca::fit(&binary)?;
        let global_ranking = global.top_features(HpcEvent::COUNT, VARIANCE_RETAINED);

        let mut class_rankings = Vec::with_capacity(AppClass::MALWARE.len());
        for class in AppClass::MALWARE {
            let subset = train.filtered(|c| c == class || c == AppClass::Benign);
            if subset.is_empty() {
                return Err(CoreError::Config(format!(
                    "no rows for class {class} or benign in the training data"
                )));
            }
            let data = to_binary_dataset(&subset);
            let pca = Pca::fit(&data)?;
            class_rankings.push(pca.top_features(HpcEvent::COUNT, VARIANCE_RETAINED));
        }
        Ok(FeaturePlan {
            global_ranking,
            class_rankings,
        })
    }

    /// The global (binary-dataset) ranking, best first.
    pub fn global_ranking(&self) -> &[usize] {
        &self.global_ranking
    }

    /// The ranking for one malware class, best first.
    ///
    /// # Panics
    ///
    /// Panics when `class` is `Benign` (benign has no vs-benign
    /// ranking).
    pub fn class_ranking(&self, class: AppClass) -> &[usize] {
        assert!(class.is_malware(), "benign has no per-class ranking");
        &self.class_rankings[class.index() - 1]
    }

    /// The counters common to every per-class top-8, ordered by average
    /// rank — Table 2's common block (4 on the reference data).
    pub fn common_features(&self, take: usize) -> Vec<usize> {
        let mut scored: Vec<(usize, f64)> = (0..HpcEvent::COUNT)
            .filter_map(|feature| {
                let mut total_rank = 0usize;
                for ranking in &self.class_rankings {
                    let rank = ranking.iter().position(|&f| f == feature)?;
                    if rank >= 8 {
                        return None; // not in this class' top-8
                    }
                    total_rank += rank;
                }
                Some((
                    feature,
                    total_rank as f64 / self.class_rankings.len() as f64,
                ))
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut out: Vec<usize> = scored.into_iter().map(|(f, _)| f).collect();
        // Fall back to the global ranking when fewer than `take`
        // features are common to every class (possible on small or
        // noisy collections).
        for &feature in &self.global_ranking {
            if out.len() >= take {
                break;
            }
            if !out.contains(&feature) {
                out.push(feature);
            }
        }
        out.truncate(take);
        out
    }

    /// Resolve a policy to concrete column indices.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for `Top(0)` or `Top(k)` with
    /// `k > 16`.
    pub fn resolve(&self, set: FeatureSet) -> Result<Vec<usize>, CoreError> {
        match set {
            FeatureSet::Full16 => Ok((0..HpcEvent::COUNT).collect()),
            FeatureSet::Top(k) => {
                if k == 0 || k > HpcEvent::COUNT {
                    return Err(CoreError::Config(format!("Top({k}) is outside 1..=16")));
                }
                Ok(self.global_ranking.iter().take(k).copied().collect())
            }
            FeatureSet::Common4 => Ok(self.common_features(4)),
            FeatureSet::Custom8(class) => {
                if !class.is_malware() {
                    return Err(CoreError::Config(
                        "Custom8 requires a malware class".to_owned(),
                    ));
                }
                Ok(self.class_ranking(class).iter().take(8).copied().collect())
            }
        }
    }

    /// Table 2 as data: for each malware class, the top-8 counter
    /// names.
    pub fn table2(&self) -> Vec<(AppClass, Vec<&'static str>)> {
        AppClass::MALWARE
            .iter()
            .map(|&class| {
                let names = self
                    .class_ranking(class)
                    .iter()
                    .take(8)
                    .map(|&f| HpcEvent::from_index(f).expect("valid column").name())
                    .collect();
                (class, names)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbmd_malware::SampleCatalog;
    use hbmd_perf::{Collector, CollectorConfig};

    fn plan() -> (HpcDataset, FeaturePlan) {
        let catalog = SampleCatalog::scaled(0.03, 5);
        let dataset = Collector::new(CollectorConfig::fast())
            .expect("config")
            .collect(&catalog)
            .expect("collect")
            .dataset;
        let plan = FeaturePlan::fit(&dataset).expect("fit");
        (dataset, plan)
    }

    #[test]
    fn rankings_are_permutations() {
        let (_, plan) = plan();
        let mut global = plan.global_ranking().to_vec();
        global.sort_unstable();
        assert_eq!(global, (0..16).collect::<Vec<_>>());
        for class in AppClass::MALWARE {
            let mut ranking = plan.class_ranking(class).to_vec();
            ranking.sort_unstable();
            assert_eq!(ranking, (0..16).collect::<Vec<_>>(), "{class}");
        }
    }

    #[test]
    fn resolve_honours_sizes() {
        let (_, plan) = plan();
        assert_eq!(plan.resolve(FeatureSet::Full16).expect("full").len(), 16);
        assert_eq!(plan.resolve(FeatureSet::Top(8)).expect("top8").len(), 8);
        assert_eq!(plan.resolve(FeatureSet::Top(4)).expect("top4").len(), 4);
        assert_eq!(plan.resolve(FeatureSet::Common4).expect("common").len(), 4);
        for class in AppClass::MALWARE {
            assert_eq!(
                plan.resolve(FeatureSet::Custom8(class))
                    .expect("custom")
                    .len(),
                8,
                "{class}"
            );
        }
    }

    #[test]
    fn invalid_policies_are_rejected() {
        let (_, plan) = plan();
        assert!(plan.resolve(FeatureSet::Top(0)).is_err());
        assert!(plan.resolve(FeatureSet::Top(17)).is_err());
        assert!(plan.resolve(FeatureSet::Custom8(AppClass::Benign)).is_err());
    }

    #[test]
    fn top_sets_nest() {
        let (_, plan) = plan();
        let top8 = plan.resolve(FeatureSet::Top(8)).expect("top8");
        let top4 = plan.resolve(FeatureSet::Top(4)).expect("top4");
        assert_eq!(&top8[..4], top4.as_slice());
    }

    #[test]
    fn table2_names_every_malware_class() {
        let (_, plan) = plan();
        let table = plan.table2();
        assert_eq!(table.len(), 5);
        for (class, names) in table {
            assert!(class.is_malware());
            assert_eq!(names.len(), 8);
            let mut unique = names.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), 8, "{class} has duplicate features");
        }
    }

    #[test]
    fn common_features_appear_in_every_custom_set_when_available() {
        let (_, plan) = plan();
        let common = plan.common_features(2);
        assert_eq!(common.len(), 2);
    }

    #[test]
    #[should_panic(expected = "benign")]
    fn benign_class_ranking_panics() {
        let (_, plan) = plan();
        let _ = plan.class_ranking(AppClass::Benign);
    }

    #[test]
    fn feature_set_len() {
        assert_eq!(FeatureSet::Full16.len(), 16);
        assert_eq!(FeatureSet::Top(5).len(), 5);
        assert_eq!(FeatureSet::Common4.len(), 4);
        assert_eq!(FeatureSet::Custom8(AppClass::Virus).len(), 8);
        assert!(FeatureSet::Top(0).is_empty());
    }
}
