//! Exact hysteresis boundaries of the online monitor.
//!
//! These tests pin down the alarm state machine at single-window
//! resolution: an alarm raises on exactly the `raise_after`-th
//! consecutive over-threshold vote, clears on exactly the
//! `clear_after`-th consecutive clean vote, and a benign/malware
//! square wave neither flaps nor drifts. A perfectly separable
//! synthetic detector (benign at 1.0, malware at 100.0 on every
//! feature) makes every per-window verdict deterministic, so the
//! boundaries are exact rather than statistical.

use hbmd_core::{ClassifierKind, DetectorBuilder, FeatureSet, OnlineDetector, OnlineVerdict};
use hbmd_events::{FeatureVector, HpcEvent};
use hbmd_malware::{AppClass, SampleId};
use hbmd_perf::{DataRow, HpcDataset};

fn features(level: f64) -> FeatureVector {
    FeatureVector::from_slice(&[level; HpcEvent::COUNT]).expect("full-width vector")
}

fn benign() -> FeatureVector {
    features(1.0)
}

fn malware() -> FeatureVector {
    features(100.0)
}

fn monitor(window: usize, threshold: usize, raise: usize, clear: usize) -> OnlineDetector {
    let mut rows = Vec::new();
    for i in 0..40 {
        let class = AppClass::ALL[i % AppClass::COUNT];
        let level = if class == AppClass::Benign {
            1.0
        } else {
            100.0
        };
        rows.push(DataRow {
            sample: SampleId(i as u32),
            class,
            features: features(level),
        });
    }
    let detector = DetectorBuilder::new()
        .classifier(ClassifierKind::J48)
        .feature_set(FeatureSet::Full16)
        .train_binary(&HpcDataset::from_rows(rows))
        .expect("train on separable data");
    OnlineDetector::builder(detector)
        .window(window)
        .threshold(threshold)
        .hysteresis(raise, clear)
        .build()
        .expect("valid monitor config")
}

fn is_alarm(v: OnlineVerdict) -> bool {
    matches!(v, OnlineVerdict::Alarm { .. })
}

#[test]
fn alarm_raises_exactly_at_raise_after() {
    // window 4, threshold 3, raise_after 3: the vote first crosses the
    // threshold on the 3rd malware window; hysteresis then demands two
    // more over-threshold votes before the alarm shows.
    let mut online = monitor(4, 3, 3, 2);
    for _ in 0..4 {
        assert!(
            !is_alarm(online.observe(&benign())),
            "benign warmup must stay quiet"
        );
    }
    // Malware windows 1 and 2: vote still under threshold — Clean.
    assert_eq!(online.observe(&malware()), OnlineVerdict::Clean);
    assert_eq!(online.observe(&malware()), OnlineVerdict::Clean);
    // Windows 3 and 4: over threshold, but the raise streak (1, then
    // 2) has not reached raise_after — still suppressed.
    assert_eq!(online.observe(&malware()), OnlineVerdict::Clean);
    assert_eq!(online.observe(&malware()), OnlineVerdict::Clean);
    // Window 5: the 3rd consecutive over-threshold vote — raised.
    assert!(
        is_alarm(online.observe(&malware())),
        "raise_after-th vote must raise"
    );
}

#[test]
fn alarm_clears_exactly_at_clear_after() {
    let mut online = monitor(4, 3, 1, 2);
    for _ in 0..4 {
        online.observe(&benign());
    }
    for _ in 0..4 {
        online.observe(&malware());
    }
    assert!(
        is_alarm(online.decision()),
        "saturated malware window must be latched"
    );
    // Benign window 1: history [m,m,m,b] still votes 3/4 — the raw
    // decision is an alarm, so the clean streak has not even started.
    assert!(is_alarm(online.observe(&benign())));
    // Benign window 2: votes 2/4 — first clean vote, latch holds.
    assert!(
        is_alarm(online.observe(&benign())),
        "one clean vote must not clear"
    );
    // Benign window 3: second consecutive clean vote — cleared.
    assert_eq!(
        online.observe(&benign()),
        OnlineVerdict::Clean,
        "clear_after-th clean vote must clear"
    );
}

#[test]
fn square_wave_latches_once_and_holds() {
    // A 4-on/4-off square wave against window 4, threshold 3,
    // raise 2, clear 6: each malware burst saturates the vote. The
    // longest run of consecutive clean votes spans the gap's last
    // three windows plus the next burst's first two (the vote only
    // recrosses the threshold on its 3rd window) — 5 in a row, one
    // short of clear_after. The alarm must latch on the first burst
    // and then hold through every gap: exactly one raise, no flap.
    let mut online = monitor(4, 3, 2, 6);
    for _ in 0..4 {
        online.observe(&benign());
    }
    let mut edges = 0u32;
    let mut last = false;
    for _cycle in 0..6 {
        for _ in 0..4 {
            let now = is_alarm(online.observe(&malware()));
            if now != last {
                edges += 1;
                last = now;
            }
        }
        for _ in 0..4 {
            let now = is_alarm(online.observe(&benign()));
            if now != last {
                edges += 1;
                last = now;
            }
        }
    }
    assert!(
        is_alarm(online.decision()),
        "the square wave must end latched"
    );
    assert_eq!(edges, 1, "one raise and no flapping, saw {edges} edges");
}

#[test]
fn square_wave_with_fast_clear_tracks_every_burst() {
    // With clear_after 1 the same square wave must instead track each
    // burst: raise during every on-phase, clear during every off-phase
    // — 2 edges per cycle, and always back to Clean by end of gap.
    let mut online = monitor(4, 3, 1, 1);
    for _ in 0..4 {
        online.observe(&benign());
    }
    let mut edges = 0u32;
    let mut last = false;
    for cycle in 0..6 {
        for _ in 0..4 {
            let now = is_alarm(online.observe(&malware()));
            if now != last {
                edges += 1;
                last = now;
            }
        }
        for _ in 0..4 {
            let now = is_alarm(online.observe(&benign()));
            if now != last {
                edges += 1;
                last = now;
            }
        }
        assert_eq!(
            online.decision(),
            OnlineVerdict::Clean,
            "cycle {cycle} must end clean"
        );
    }
    assert_eq!(edges, 12, "2 edges per cycle over 6 cycles, saw {edges}");
}
