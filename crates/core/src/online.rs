use std::collections::VecDeque;
use std::sync::Arc;

use hbmd_events::FeatureVector;
use hbmd_malware::AppClass;
use serde::{Deserialize, Serialize};

use crate::detector::{Detector, Verdict};
use crate::error::CoreError;

/// Aggregated run-time decision after one more sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnlineVerdict {
    /// Not enough windows observed yet.
    Warmup,
    /// The window majority looks benign.
    Clean,
    /// The window majority flags malware (most-voted family in
    /// multiclass mode).
    Alarm {
        /// Most-voted family among the malicious windows.
        family: AppClass,
        /// Malicious windows in the current window.
        votes: usize,
        /// Window size.
        of: usize,
    },
}

/// Sliding-window majority voting over per-window verdicts — the
/// run-time decision layer the related work (Demme et al., Ozsoy et
/// al.) puts on top of per-sample classification, smoothing the noisy
/// 10 ms verdict stream into a stable alarm signal.
///
/// Windows are screened through the detector's sanitised path: a
/// corrupted-but-repairable window is imputed before voting, while an
/// unsalvageable one [abstains](Verdict::Abstain) — it occupies a
/// history slot but votes neither way, so a burst of counter faults
/// cannot manufacture (or suppress) an alarm on its own. Optional
/// [hysteresis](OnlineDetectorBuilder::hysteresis) additionally
/// requires sustained evidence before raising or clearing the alarm,
/// preventing transient faults from flapping it.
///
/// The monitor reports into the installed [`hbmd_obs`] context: alarm
/// raise/clear transitions as `online.alarms_raised` /
/// `online.alarms_cleared` counters, every fed window as
/// `online.windows_observed`, per-call wall latency as the
/// `online.observe_ns` timing histogram, and the vote margin of each
/// alarm decision as the exact `online.alarm_votes` histogram. With a
/// [suspicion threshold](OnlineDetectorBuilder::suspicion_threshold)
/// armed, every window whose committee dispersion reaches it counts
/// into `online.disagreement_trips`.
///
/// # Examples
///
/// ```
/// use hbmd_core::{ClassifierKind, DetectorBuilder, OnlineDetector, OnlineVerdict};
/// use hbmd_malware::SampleCatalog;
/// use hbmd_perf::{Collector, CollectorConfig};
///
/// let catalog = SampleCatalog::scaled(0.02, 3);
/// let dataset = Collector::new(CollectorConfig::fast())?.collect(&catalog)?.dataset;
/// let detector = DetectorBuilder::new()
///     .classifier(ClassifierKind::J48)
///     .train_binary(&dataset)?;
///
/// let mut online = OnlineDetector::builder(detector)
///     .window(4)
///     .threshold(3)
///     .build()?;
/// for row in dataset.rows().iter().take(3) {
///     assert_eq!(online.observe(&row.features), OnlineVerdict::Warmup);
/// }
/// # Ok::<(), hbmd_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OnlineDetector {
    detector: Arc<Detector>,
    state: StreamState,
}

/// The per-stream half of an online monitor: the vote-window ring,
/// hysteresis counters, and latched alarm — everything that mutates as
/// windows arrive, with the (expensive, immutable) trained
/// [`Detector`] factored out so a fleet of thousands of streams can
/// share one model behind an [`Arc`].
///
/// A [`StreamState`] is fed through
/// [`observe`](StreamState::observe), which borrows the shared
/// detector per call; [`OnlineDetector`] is the single-stream
/// convenience wrapper that pairs one `StreamState` with its detector.
#[derive(Debug, Clone)]
pub struct StreamState {
    window: usize,
    threshold: usize,
    history: VecDeque<Verdict>,
    /// Consecutive over-threshold decisions required to raise the
    /// alarm (1 = raise immediately, the pre-hysteresis behaviour).
    raise_after: usize,
    /// Consecutive clean decisions required to clear a raised alarm
    /// (1 = clear immediately).
    clear_after: usize,
    alarm_streak: usize,
    clean_streak: usize,
    /// Latched alarm: `(family, votes)` at (or since) raise time.
    latched: Option<(AppClass, usize)>,
    /// Ensemble-disagreement alarm: flag any window whose committee
    /// vote dispersion reaches this threshold (`None` disarms — the
    /// pre-adversarial behaviour, and the only option for single-model
    /// schemes, which report no dispersion).
    suspicion_threshold: Option<f64>,
    /// Whether the most recent window tripped the disagreement alarm
    /// (transient, like the derived caches — not snapshotted).
    last_suspicious: bool,
}

/// Builder for [`OnlineDetector`]: voting window, alarm threshold, and
/// optional hysteresis, validated at [`OnlineDetectorBuilder::build`]
/// time instead of panicking.
///
/// Defaults match the latency experiment's reference setup: a window of
/// 4 verdicts, 3 malicious votes to alarm, no hysteresis.
#[derive(Debug, Clone)]
pub struct OnlineDetectorBuilder {
    detector: Arc<Detector>,
    window: usize,
    threshold: usize,
    raise_after: usize,
    clear_after: usize,
    suspicion_threshold: Option<f64>,
}

impl OnlineDetectorBuilder {
    /// Start from a trained detector with the default window/threshold.
    pub fn new(detector: Detector) -> OnlineDetectorBuilder {
        OnlineDetectorBuilder::shared(Arc::new(detector))
    }

    /// Start from an already-shared detector — the fleet path, where
    /// thousands of monitors vote against one immutably-held model.
    pub fn shared(detector: Arc<Detector>) -> OnlineDetectorBuilder {
        OnlineDetectorBuilder {
            detector,
            window: 4,
            threshold: 3,
            raise_after: 1,
            clear_after: 1,
            suspicion_threshold: None,
        }
    }

    /// Number of recent verdicts voted over.
    pub fn window(mut self, window: usize) -> OnlineDetectorBuilder {
        self.window = window;
        self
    }

    /// Malicious votes (within the window) required to alarm.
    pub fn threshold(mut self, threshold: usize) -> OnlineDetectorBuilder {
        self.threshold = threshold;
        self
    }

    /// Alarm hysteresis: raise only after `raise_after` consecutive
    /// over-threshold decisions; once raised, clear only after
    /// `clear_after` consecutive clean decisions. `(1, 1)` (the
    /// default) is the plain majority-vote behaviour.
    pub fn hysteresis(mut self, raise_after: usize, clear_after: usize) -> OnlineDetectorBuilder {
        self.raise_after = raise_after;
        self.clear_after = clear_after;
        self
    }

    /// Arm the ensemble-disagreement alarm: flag any window whose
    /// committee vote dispersion ([`Detector::suspicion`]) reaches
    /// `threshold`. Disarmed by default. Only committee schemes
    /// (RandomForest / Bagging / AdaBoost) produce the signal —
    /// single-model detectors never trip it.
    pub fn suspicion_threshold(mut self, threshold: f64) -> OnlineDetectorBuilder {
        self.suspicion_threshold = Some(threshold);
        self
    }

    /// Validate and build the monitor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] when the window is zero, the
    /// threshold exceeds the window, or either hysteresis count is
    /// zero.
    pub fn build(self) -> Result<OnlineDetector, CoreError> {
        if self.window == 0 {
            return Err(CoreError::Config("window must be non-zero".to_owned()));
        }
        if self.threshold > self.window {
            return Err(CoreError::Config(format!(
                "threshold {} cannot exceed the window {}",
                self.threshold, self.window
            )));
        }
        if self.raise_after == 0 || self.clear_after == 0 {
            return Err(CoreError::Config(
                "hysteresis counts must be non-zero".to_owned(),
            ));
        }
        if let Some(t) = self.suspicion_threshold {
            if !(t.is_finite() && t > 0.0 && t <= 1.0) {
                return Err(CoreError::Config(format!(
                    "suspicion threshold {t} is outside (0, 1]"
                )));
            }
        }
        Ok(OnlineDetector {
            detector: self.detector,
            state: StreamState {
                window: self.window,
                threshold: self.threshold,
                history: VecDeque::with_capacity(self.window),
                raise_after: self.raise_after,
                clear_after: self.clear_after,
                alarm_streak: 0,
                clean_streak: 0,
                latched: None,
                suspicion_threshold: self.suspicion_threshold,
                last_suspicious: false,
            },
        })
    }

    /// Build just the per-stream state (no detector attached) — the
    /// fleet path, where one [`StreamState`] is minted per monitored
    /// endpoint and the detector is borrowed at observe time.
    ///
    /// # Errors
    ///
    /// Same validation as [`build`](OnlineDetectorBuilder::build).
    pub fn build_stream(self) -> Result<StreamState, CoreError> {
        Ok(self.build()?.state)
    }
}

impl OnlineDetector {
    /// Start building a monitor around a trained detector.
    pub fn builder(detector: Detector) -> OnlineDetectorBuilder {
        OnlineDetectorBuilder::new(detector)
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// A cheap handle to the shared detector — clone this to mint
    /// further per-stream states against the same model.
    pub fn shared_detector(&self) -> Arc<Detector> {
        Arc::clone(&self.detector)
    }

    /// The per-stream half of the monitor.
    pub fn state(&self) -> &StreamState {
        &self.state
    }

    /// Split into the shared detector and the per-stream state.
    pub fn into_parts(self) -> (Arc<Detector>, StreamState) {
        (self.detector, self.state)
    }

    /// Reassemble a monitor from a shared detector and a stream state
    /// (the inverse of [`into_parts`](Self::into_parts)).
    pub fn from_parts(detector: Arc<Detector>, state: StreamState) -> OnlineDetector {
        OnlineDetector { detector, state }
    }

    /// Abstaining verdicts currently in the voting window.
    pub fn abstentions(&self) -> usize {
        self.state.abstentions()
    }

    /// `true` when the most recently observed window abstained —
    /// the per-window fault signal supervision layers feed into a
    /// circuit breaker (unlike [`abstentions`](Self::abstentions),
    /// this does not saturate once the voting window fills up).
    pub fn last_window_abstained(&self) -> bool {
        self.state.last_window_abstained()
    }

    /// `true` when the most recently observed window tripped the
    /// ensemble-disagreement alarm — the evasion-attempt signal
    /// supervision layers feed into the flight recorder. Always `false`
    /// while no [suspicion
    /// threshold](OnlineDetectorBuilder::suspicion_threshold) is armed.
    pub fn last_window_suspicious(&self) -> bool {
        self.state.last_window_suspicious()
    }

    /// Feed one sampling window; returns the aggregated decision.
    pub fn observe(&mut self, window: &FeatureVector) -> OnlineVerdict {
        self.state.observe(&self.detector, window)
    }

    /// The current aggregated decision without feeding a new window:
    /// the latched alarm while hysteresis holds it, otherwise the raw
    /// majority vote (suppressed until `raise_after` is met).
    pub fn decision(&self) -> OnlineVerdict {
        self.state.decision()
    }

    /// Drop all observed history and any latched alarm (e.g. on a
    /// process switch).
    pub fn reset(&mut self) {
        self.state.reset();
    }
}

impl StreamState {
    /// A fresh stream state with validated voting/hysteresis shape —
    /// the same checks [`OnlineDetectorBuilder::build`] applies.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] when the window is zero, the
    /// threshold exceeds the window, or either hysteresis count is
    /// zero.
    pub fn new(
        window: usize,
        threshold: usize,
        raise_after: usize,
        clear_after: usize,
    ) -> Result<StreamState, CoreError> {
        if window == 0 {
            return Err(CoreError::Config("window must be non-zero".to_owned()));
        }
        if threshold > window {
            return Err(CoreError::Config(format!(
                "threshold {threshold} cannot exceed the window {window}"
            )));
        }
        if raise_after == 0 || clear_after == 0 {
            return Err(CoreError::Config(
                "hysteresis counts must be non-zero".to_owned(),
            ));
        }
        Ok(StreamState {
            window,
            threshold,
            history: VecDeque::with_capacity(window),
            raise_after,
            clear_after,
            alarm_streak: 0,
            clean_streak: 0,
            latched: None,
            suspicion_threshold: None,
            last_suspicious: false,
        })
    }

    /// Arm the ensemble-disagreement alarm on this stream (see
    /// [`OnlineDetectorBuilder::suspicion_threshold`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] when `threshold` is outside
    /// `(0, 1]`.
    pub fn with_suspicion_threshold(mut self, threshold: f64) -> Result<StreamState, CoreError> {
        if !(threshold.is_finite() && threshold > 0.0 && threshold <= 1.0) {
            return Err(CoreError::Config(format!(
                "suspicion threshold {threshold} is outside (0, 1]"
            )));
        }
        self.suspicion_threshold = Some(threshold);
        Ok(self)
    }

    /// The voting-window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Abstaining verdicts currently in the voting window.
    pub fn abstentions(&self) -> usize {
        self.history.iter().filter(|v| v.is_abstain()).count()
    }

    /// `true` when the most recently observed window abstained.
    pub fn last_window_abstained(&self) -> bool {
        self.history.back().is_some_and(|v| v.is_abstain())
    }

    /// `true` when the most recently observed window tripped the
    /// ensemble-disagreement alarm.
    pub fn last_window_suspicious(&self) -> bool {
        self.last_suspicious
    }

    /// The armed disagreement threshold, if any.
    pub fn suspicion_threshold(&self) -> Option<f64> {
        self.suspicion_threshold
    }

    /// Feed one sampling window through `detector`; returns the
    /// aggregated decision for this stream.
    pub fn observe(&mut self, detector: &Detector, window: &FeatureVector) -> OnlineVerdict {
        let _latency = hbmd_obs::timer("online.observe_ns");
        hbmd_obs::incr("online.windows_observed");
        self.last_suspicious = false;
        if let Some(limit) = self.suspicion_threshold {
            if let Some(dispersion) = detector.suspicion(window) {
                if dispersion >= limit {
                    self.last_suspicious = true;
                    hbmd_obs::incr("online.disagreement_trips");
                }
            }
        }
        let verdict = detector.classify_sanitized(window);
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(verdict);
        let was_latched = self.latched.is_some();

        match self.raw_decision() {
            OnlineVerdict::Alarm { family, votes, .. } => {
                self.alarm_streak += 1;
                self.clean_streak = 0;
                if self.alarm_streak >= self.raise_after || self.latched.is_some() {
                    // Raise, or refresh an already-raised alarm with the
                    // latest evidence.
                    self.latched = Some((family, votes));
                }
            }
            OnlineVerdict::Clean => {
                self.clean_streak += 1;
                self.alarm_streak = 0;
                if self.clean_streak >= self.clear_after {
                    self.latched = None;
                }
            }
            OnlineVerdict::Warmup => {}
        }
        // Count latch *transitions* (the hysteresis state machine's
        // edges), not alarm decisions — a held alarm is one raise.
        if self.latched.is_some() && !was_latched {
            hbmd_obs::incr("online.alarms_raised");
        } else if was_latched && self.latched.is_none() {
            hbmd_obs::incr("online.alarms_cleared");
        }
        let decision = self.decision();
        if let OnlineVerdict::Alarm { votes, .. } = decision {
            // Exact (deterministic-domain) histogram: how much of the
            // window agreed each time an alarm decision was returned.
            hbmd_obs::observe("online.alarm_votes", votes as u64);
        }
        decision
    }

    /// The current aggregated decision without feeding a new window:
    /// the latched alarm while hysteresis holds it, otherwise the raw
    /// majority vote (suppressed until `raise_after` is met).
    pub fn decision(&self) -> OnlineVerdict {
        if self.history.len() < self.window {
            return OnlineVerdict::Warmup;
        }
        if let Some((family, votes)) = self.latched {
            return OnlineVerdict::Alarm {
                family,
                votes,
                of: self.window,
            };
        }
        match self.raw_decision() {
            OnlineVerdict::Alarm { .. } if self.alarm_streak < self.raise_after => {
                OnlineVerdict::Clean
            }
            decision => decision,
        }
    }

    /// The un-hysteresised majority vote over the current history.
    /// Abstaining windows occupy history slots but vote neither way.
    fn raw_decision(&self) -> OnlineVerdict {
        if self.history.len() < self.window {
            return OnlineVerdict::Warmup;
        }
        let mut family_votes = [0usize; AppClass::COUNT];
        let mut malicious = 0usize;
        for verdict in &self.history {
            if let Verdict::Malware(family) = verdict {
                malicious += 1;
                family_votes[family.index()] += 1;
            }
        }
        if malicious >= self.threshold {
            // Most-voted family; ties resolve deterministically to the
            // lowest class index (the reversed iterator makes
            // `max_by_key`, which keeps the *last* maximum, land on the
            // first index among equals).
            let family = family_votes
                .iter()
                .enumerate()
                .rev()
                .max_by_key(|&(_, &v)| v)
                .map(|(i, _)| AppClass::from_index(i).expect("vote index is a class"))
                .expect("family_votes is non-empty");
            OnlineVerdict::Alarm {
                family,
                votes: malicious,
                of: self.window,
            }
        } else {
            OnlineVerdict::Clean
        }
    }

    /// Drop all observed history and any latched alarm (e.g. on a
    /// process switch).
    pub fn reset(&mut self) {
        self.history.clear();
        self.alarm_streak = 0;
        self.clean_streak = 0;
        self.latched = None;
        self.last_suspicious = false;
    }
}

use hbmd_ml::snap::{Snap, SnapError, SnapReader, SnapWriter};

/// The stream-only half of the snapshot layout — the bytes the v1
/// [`OnlineDetector`] encoding wrote after the detector (so the
/// monitor codec composes `detector.snap` + `state.snap` unchanged),
/// followed by the v2 disagreement-alarm tail.
impl Snap for StreamState {
    fn snap(&self, w: &mut SnapWriter) {
        self.window.snap(w);
        self.threshold.snap(w);
        w.put_usize(self.history.len());
        for verdict in &self.history {
            verdict.snap(w);
        }
        self.raise_after.snap(w);
        self.clear_after.snap(w);
        self.alarm_streak.snap(w);
        self.clean_streak.snap(w);
        match &self.latched {
            None => w.put_u8(0),
            Some((family, votes)) => {
                w.put_u8(1);
                w.put_u8(family.index() as u8);
                votes.snap(w);
            }
        }
        // v2 tail: the disagreement-alarm arm state. `last_suspicious`
        // is transient and rebuilt at the next observe, not encoded.
        match self.suspicion_threshold {
            None => w.put_u8(0),
            Some(t) => {
                w.put_u8(1);
                t.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let window: usize = Snap::unsnap(r)?;
        let threshold: usize = Snap::unsnap(r)?;
        if window == 0 || threshold == 0 || threshold > window {
            return Err(SnapError::Invalid(format!(
                "online detector window/threshold {window}/{threshold}"
            )));
        }
        let history_len = r.get_seq_len(1)?;
        if history_len > window {
            return Err(SnapError::Invalid(format!(
                "history length {history_len} exceeds window {window}"
            )));
        }
        let mut history = VecDeque::with_capacity(window);
        for _ in 0..history_len {
            history.push_back(Verdict::unsnap(r)?);
        }
        let raise_after: usize = Snap::unsnap(r)?;
        let clear_after: usize = Snap::unsnap(r)?;
        if raise_after == 0 || clear_after == 0 {
            return Err(SnapError::Invalid(
                "hysteresis thresholds must be non-zero".to_owned(),
            ));
        }
        let alarm_streak: usize = Snap::unsnap(r)?;
        let clean_streak: usize = Snap::unsnap(r)?;
        let latched = match r.get_u8()? {
            0 => None,
            1 => {
                let index = usize::from(r.get_u8()?);
                let family = AppClass::from_index(index)
                    .ok_or_else(|| SnapError::Invalid(format!("AppClass index {index}")))?;
                Some((family, Snap::unsnap(r)?))
            }
            other => return Err(SnapError::Invalid(format!("latch tag {other}"))),
        };
        let suspicion_threshold = match r.get_u8()? {
            0 => None,
            1 => {
                let t: f64 = Snap::unsnap(r)?;
                if !(t.is_finite() && t > 0.0 && t <= 1.0) {
                    return Err(SnapError::Invalid(format!(
                        "suspicion threshold {t} is outside (0, 1]"
                    )));
                }
                Some(t)
            }
            other => return Err(SnapError::Invalid(format!("suspicion tag {other}"))),
        };
        Ok(StreamState {
            window,
            threshold,
            history,
            raise_after,
            clear_after,
            alarm_streak,
            clean_streak,
            latched,
            suspicion_threshold,
            last_suspicious: false,
        })
    }
}

impl Snap for OnlineDetector {
    fn snap(&self, w: &mut SnapWriter) {
        self.detector.snap(w);
        self.state.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let detector = Detector::unsnap(r)?;
        let state = StreamState::unsnap(r)?;
        Ok(OnlineDetector {
            detector: Arc::new(detector),
            state,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorBuilder;
    use crate::suite::ClassifierKind;
    use hbmd_malware::{Sample, SampleCatalog, SampleId};
    use hbmd_perf::{Collector, CollectorConfig, Sampler, SamplerConfig};

    fn trained() -> Detector {
        let catalog = SampleCatalog::scaled(0.03, 17);
        let dataset = Collector::new(CollectorConfig::fast())
            .expect("config")
            .collect(&catalog)
            .expect("collect")
            .dataset;
        DetectorBuilder::new()
            .classifier(ClassifierKind::J48)
            .train_binary(&dataset)
            .expect("train")
    }

    #[test]
    fn warmup_then_decision() {
        let mut online = OnlineDetector::builder(trained())
            .window(3)
            .threshold(2)
            .build()
            .expect("valid monitor");
        let sampler = Sampler::new(SamplerConfig::fast()).expect("sampler");
        let worm = Sample::generate(SampleId(900), hbmd_malware::AppClass::Worm, 23);
        let windows = sampler.collect_sample(&worm);
        assert_eq!(online.observe(&windows[0]), OnlineVerdict::Warmup);
        assert_eq!(online.observe(&windows[1]), OnlineVerdict::Warmup);
        let decided = online.observe(&windows[2]);
        assert_ne!(decided, OnlineVerdict::Warmup);
    }

    #[test]
    fn sustained_malware_raises_an_alarm() {
        let mut online = OnlineDetector::builder(trained())
            .window(4)
            .threshold(3)
            .build()
            .expect("valid monitor");
        let sampler = Sampler::new(SamplerConfig {
            windows_per_sample: 12,
            ..SamplerConfig::fast()
        })
        .expect("sampler");
        let worm = Sample::generate(SampleId(901), hbmd_malware::AppClass::Worm, 29);
        let mut alarms = 0;
        for window in sampler.collect_sample(&worm) {
            if matches!(online.observe(&window), OnlineVerdict::Alarm { .. }) {
                alarms += 1;
            }
        }
        assert!(alarms > 0, "a worm under sustained observation must trip");
    }

    #[test]
    fn benign_stream_stays_clean_mostly() {
        let mut online = OnlineDetector::builder(trained())
            .window(4)
            .threshold(4)
            .build()
            .expect("valid monitor");
        let sampler = Sampler::new(SamplerConfig {
            windows_per_sample: 12,
            ..SamplerConfig::fast()
        })
        .expect("sampler");
        let benign = Sample::generate(SampleId(902), hbmd_malware::AppClass::Benign, 31);
        let alarms = sampler
            .collect_sample(&benign)
            .iter()
            .filter(|w| matches!(online.observe(w), OnlineVerdict::Alarm { .. }))
            .count();
        assert!(alarms <= 2, "benign stream raised {alarms} alarms");
    }

    #[test]
    fn reset_returns_to_warmup() {
        let mut online = OnlineDetector::builder(trained())
            .window(2)
            .threshold(1)
            .build()
            .expect("valid monitor");
        let sampler = Sampler::new(SamplerConfig::fast()).expect("sampler");
        let sample = Sample::generate(SampleId(903), hbmd_malware::AppClass::Virus, 37);
        let windows = sampler.collect_sample(&sample);
        online.observe(&windows[0]);
        online.observe(&windows[1]);
        assert_ne!(online.decision(), OnlineVerdict::Warmup);
        online.reset();
        assert_eq!(online.decision(), OnlineVerdict::Warmup);
    }

    #[test]
    fn builder_rejects_bad_shapes() {
        assert!(OnlineDetector::builder(trained())
            .window(0)
            .build()
            .is_err());
        assert!(OnlineDetector::builder(trained())
            .window(2)
            .threshold(3)
            .build()
            .is_err());
        assert!(OnlineDetector::builder(trained())
            .hysteresis(0, 1)
            .build()
            .is_err());
    }

    #[test]
    fn corrupted_windows_abstain_instead_of_voting() {
        use hbmd_events::{FeatureVector, HpcEvent};
        // Threshold 2 of 4: even if garbage windows were guessed
        // malicious they would trip the alarm; abstention must not.
        let mut online = OnlineDetector::builder(trained())
            .window(4)
            .threshold(2)
            .build()
            .expect("valid monitor");
        let garbage = FeatureVector::from_slice(&[f64::NAN; HpcEvent::COUNT]).expect("16");
        for _ in 0..8 {
            let decision = online.observe(&garbage);
            assert!(
                !matches!(decision, OnlineVerdict::Alarm { .. }),
                "an all-corrupt stream must never alarm"
            );
        }
        assert_eq!(online.abstentions(), 4, "the whole window abstains");
    }

    #[test]
    fn hysteresis_latches_and_clears_deliberately() {
        let detector = trained();
        let sampler = Sampler::new(SamplerConfig {
            windows_per_sample: 16,
            ..SamplerConfig::fast()
        })
        .expect("sampler");
        let worm = Sample::generate(SampleId(905), hbmd_malware::AppClass::Worm, 41);
        let benign = Sample::generate(SampleId(906), hbmd_malware::AppClass::Benign, 43);
        let worm_windows = sampler.collect_sample(&worm);
        let benign_windows = sampler.collect_sample(&benign);

        // raise_after 2: a single over-threshold decision is suppressed.
        let mut online = OnlineDetector::builder(detector.clone())
            .window(2)
            .threshold(1)
            .hysteresis(2, 3)
            .build()
            .expect("valid monitor");
        let mut first_alarm_at = None;
        let mut raw_alarms = 0;
        for (i, window) in worm_windows.iter().enumerate() {
            let decision = online.observe(window);
            if matches!(decision, OnlineVerdict::Alarm { .. }) {
                first_alarm_at.get_or_insert(i);
                raw_alarms += 1;
            }
        }
        assert!(raw_alarms > 0, "sustained worm activity must still alarm");
        // The first alarm needs window fill (2) plus the raise streak
        // (2), so it cannot fire before the 3rd window (index 2).
        assert!(first_alarm_at.expect("alarmed") >= 2);

        // clear_after 3: once latched, two clean decisions don't clear.
        let mut cleared_at = None;
        for (i, window) in benign_windows.iter().enumerate() {
            if matches!(online.observe(window), OnlineVerdict::Clean) {
                cleared_at.get_or_insert(i);
                break;
            }
        }
        if let Some(i) = cleared_at {
            assert!(i >= 2, "latched alarm cleared after only {} windows", i + 1);
        }

        online.reset();
        assert_eq!(online.decision(), OnlineVerdict::Warmup);
        assert_eq!(online.abstentions(), 0);
    }

    #[test]
    fn suspicion_threshold_trips_only_for_committees() {
        use hbmd_ml::snap::Snap;
        let catalog = SampleCatalog::scaled(0.03, 17);
        let dataset = Collector::new(CollectorConfig::fast())
            .expect("config")
            .collect(&catalog)
            .expect("collect")
            .dataset;

        // A single-tree detector never produces the signal.
        let mut tree = OnlineDetector::builder(trained())
            .suspicion_threshold(0.1)
            .build()
            .expect("valid monitor");
        for row in dataset.rows().iter().take(20) {
            tree.observe(&row.features);
            assert!(!tree.last_window_suspicious(), "trees have no committee");
        }

        // A forest with an absurdly low threshold trips on real data.
        let forest = DetectorBuilder::new()
            .classifier(ClassifierKind::RandomForest)
            .train_binary(&dataset)
            .expect("train");
        let mut online = OnlineDetector::builder(forest)
            .suspicion_threshold(0.01)
            .build()
            .expect("valid monitor");
        let mut trips = 0;
        for row in dataset.rows().iter().take(60) {
            online.observe(&row.features);
            trips += usize::from(online.last_window_suspicious());
        }
        assert!(trips > 0, "no window reached dispersion 0.01 in 60");

        // The armed threshold survives a snapshot roundtrip.
        let mut w = hbmd_ml::snap::SnapWriter::new();
        online.state().snap(&mut w);
        let bytes = w.into_bytes();
        let restored =
            StreamState::unsnap(&mut hbmd_ml::snap::SnapReader::new(&bytes)).expect("roundtrip");
        assert_eq!(restored.suspicion_threshold(), Some(0.01));

        // Out-of-range thresholds are rejected.
        assert!(OnlineDetector::builder(trained())
            .suspicion_threshold(0.0)
            .build()
            .is_err());
        assert!(OnlineDetector::builder(trained())
            .suspicion_threshold(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn family_ties_resolve_to_lowest_class_index() {
        // Exercised indirectly through decision(): build a history with
        // a deliberate 2-2 family tie via the multiclass detector is
        // nondeterministic, so test the invariant over many streams —
        // repeated runs must agree exactly.
        let detector = trained();
        let sampler = Sampler::new(SamplerConfig::fast()).expect("sampler");
        let sample = Sample::generate(SampleId(907), hbmd_malware::AppClass::Rootkit, 47);
        let windows = sampler.collect_sample(&sample);
        let run = || {
            let mut online = OnlineDetector::builder(detector.clone())
                .window(3)
                .threshold(1)
                .build()
                .expect("valid monitor");
            windows
                .iter()
                .map(|w| online.observe(w))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "decision stream must be deterministic");
    }
}
