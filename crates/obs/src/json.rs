//! Minimal JSON rendering and parsing helpers.
//!
//! The workspace vendors no JSON serializer, so the observability
//! artefacts (metrics snapshots, span event lines, run manifests)
//! render themselves through these primitives — and the analysis side
//! ([`trace`](crate::trace), `repro bench-diff`) reads them back with
//! the small recursive-descent [`parse`]r below.

use std::fmt;

/// A JSON string literal with the mandatory escapes, hardened for
/// line-oriented consumers.
///
/// Beyond the escapes JSON requires (quote, backslash, C0 controls),
/// this also escapes DEL, the C1 control block, and the Unicode line
/// separators U+2028/U+2029. Those five are *legal* unescaped JSON, but
/// a hostile span or label name carrying them could confuse naive
/// line-splitting tools reading a JSONL event log — so they leave the
/// encoder as `\uXXXX` sequences instead.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20
                || (0x7f..=0x9f).contains(&(c as u32))
                || c == '\u{2028}'
                || c == '\u{2029}' =>
            {
                out.push_str(&format!("\\u{:04x}", c as u32))
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number for an `f64` (`null` for NaN/infinity, which JSON
/// cannot represent).
pub fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// A parsed JSON value.
///
/// Numbers are held as `f64`; integers above 2^53 lose precision, so
/// artefacts that must round-trip exact 64-bit values (configuration
/// digests) store them as hex strings instead.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source key order (duplicate keys keep the last).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing data after the document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            // Surrogate pairs arrive as two \u escapes.
                            let c = if (0xd800..=0xdbff).contains(&first) {
                                if !(self.literal("\\u")) {
                                    return Err(self.error("lone high surrogate"));
                                }
                                let second = self.hex4()?;
                                if !(0xdc00..=0xdfff).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let value = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials_and_control_characters() {
        assert_eq!(string("a\"b\\c\nd\u{2}"), "\"a\\\"b\\\\c\\nd\\u0002\"");
        assert_eq!(string("plain"), "\"plain\"");
    }

    #[test]
    fn escapes_del_c1_and_line_separators() {
        assert_eq!(string("\u{7f}"), "\"\\u007f\"");
        assert_eq!(string("\u{85}"), "\"\\u0085\"");
        assert_eq!(string("a\u{2028}b\u{2029}c"), "\"a\\u2028b\\u2029c\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(float(0.25), "0.25");
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".to_owned()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, 2, {"b": null}], "c": {"d": "e"}}"#).unwrap();
        assert_eq!(
            doc.get("a").and_then(|a| a.as_array()).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("c")
                .and_then(|c| c.get("d"))
                .and_then(Value::as_str),
            Some("e")
        );
    }

    #[test]
    fn string_roundtrips_through_parse() {
        let hostile = "evil\"name\\with\nnewline\t\u{1}\u{7f}\u{2028}and \u{1f600}";
        let rendered = string(hostile);
        let parsed = parse(&rendered).unwrap();
        assert_eq!(parsed.as_str(), Some(hostile));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1f600}")
        );
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\u{1}\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = parse("[1, garbage]").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn as_u64_guards_range_and_fraction() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
