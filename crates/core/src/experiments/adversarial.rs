//! Adversarial robustness extension: attack the detector, then harden
//! it.
//!
//! "Defending Hardware-based Malware Detectors against Adversarial
//! Attacks" (arXiv:2005.03644) showed that HMD classifiers collapse
//! under small crafted counter perturbations. This experiment closes
//! the red-team/blue-team loop:
//!
//! * **Red team** — [`accuracy_under_attack`] crafts plausibility-
//!   constrained [`EvasionAttack`]s against each trained detector's
//!   malice score and sweeps the attacker's L1 budget;
//!   [`camouflage_sweep`] measures end-to-end detection against
//!   behaviour-level [`EvasionTactic`] camouflage that never touches a
//!   feature vector.
//! * **Blue team** — every crafted window is re-scored under two
//!   defenses: *adversarial retraining* (the training set is augmented
//!   with attack-successful windows crafted against the training
//!   catalog, then the detector is refit) and the *ensemble-
//!   disagreement alarm* (a committee whose vote dispersion crosses
//!   [`SUSPICION_ALARM`] flags the window even when the majority vote
//!   was evaded).
//!
//! Everything is deterministic from the [`ExperimentConfig`]: attack
//! seeds derive from the catalog seed and the cell's position in the
//! sweep, so the same config yields byte-identical rows at any thread
//! count.

use hbmd_events::FeatureVector;
use hbmd_malware::{
    evasive_catalog, EvasionAttack, EvasionTactic, PlausibilityEnvelope, SampleCatalog,
};
use hbmd_ml::par::try_par_map;
use hbmd_perf::{DataRow, HpcDataset};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::convert::to_binary_dataset;
use crate::detector::{Detector, DetectorBuilder};
use crate::error::CoreError;
use crate::experiments::cache::{catalog_recipe, CollectCache};
use crate::experiments::ExperimentConfig;
use crate::suite::ClassifierKind;

/// Committee vote dispersion at or above this flags a window as a
/// suspected evasion attempt, independent of the majority verdict.
/// Binary committees disperse in `[0, 0.5]`; an evaded-but-contested
/// window sits just under the decision boundary, where dispersion
/// approaches its maximum.
pub const SUSPICION_ALARM: f64 = 0.4;

/// Ceiling width of the plausibility envelope, in benign standard
/// deviations above the benign mean.
pub const ENVELOPE_SIGMA: f64 = 6.0;

/// Attack-target cap per sweep cell: the first this-many malicious
/// evaluation windows, in dataset order (deterministic).
pub const MAX_ATTACK_TARGETS: usize = 256;

/// Cap on training-catalog windows attacked to build the retraining
/// augmentation set.
const MAX_RETRAIN_TARGETS: usize = 256;

/// Salt separating the unseen evaluation catalog from the training
/// catalog.
const EVAL_SEED_SALT: u64 = 0xA77A_C4ED;

/// The defense configuration a row was scored under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefenseKind {
    /// The undefended detector, exactly as trained on clean data.
    Clean,
    /// Refit on the training set augmented with attack-successful
    /// windows crafted against the training catalog.
    Retrained,
    /// Clean detector plus the ensemble-disagreement alarm: a window is
    /// flagged when the majority votes malware *or* committee vote
    /// dispersion reaches [`SUSPICION_ALARM`].
    Ensemble,
}

impl DefenseKind {
    /// Every defense, in stable reporting order.
    pub const ALL: [DefenseKind; 3] = [
        DefenseKind::Clean,
        DefenseKind::Retrained,
        DefenseKind::Ensemble,
    ];

    /// Stable lower-case name (table rows, metric labels).
    pub fn name(self) -> &'static str {
        match self {
            DefenseKind::Clean => "clean",
            DefenseKind::Retrained => "retrained",
            DefenseKind::Ensemble => "ensemble",
        }
    }
}

impl fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One cell of the budget × scheme × defense sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversarialRow {
    /// Attacker's L1 budget as a fraction of each window's L1 mass.
    pub budget: f64,
    /// Classifier scheme under attack.
    pub scheme: ClassifierKind,
    /// Defense the adversarial windows were scored under.
    pub defense: DefenseKind,
    /// Malicious evaluation windows targeted.
    pub windows: usize,
    /// Detection rate over the targets *before* perturbation (clean
    /// detector on clean windows; identical across defenses).
    pub baseline_detection: f64,
    /// Detection rate over the same targets *after* perturbation,
    /// under this defense.
    pub detection_rate: f64,
    /// Fraction of initially-detected targets whose adversarial window
    /// slips past this defense.
    pub evasion_rate: f64,
    /// Mean L1 the attacker spent per initially-detected target.
    pub mean_l1: f64,
    /// Mean score-oracle queries per initially-detected target.
    pub mean_iterations: f64,
    /// Windows on which the disagreement alarm tripped (ensemble
    /// defense only; 0 otherwise).
    pub suspicion_trips: usize,
}

/// One cell of the behaviour-level camouflage sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TacticRow {
    /// Camouflage tactic name, `"none"` for the uncamouflaged baseline.
    pub tactic: String,
    /// Classifier scheme under test.
    pub scheme: ClassifierKind,
    /// Detection rate over the catalog's malicious windows.
    pub detection_rate: f64,
    /// Malicious windows evaluated.
    pub windows: usize,
}

/// Sweep attack budgets against classifier schemes and defenses.
///
/// See [`accuracy_under_attack_with`].
///
/// # Errors
///
/// Returns [`CoreError::Config`] for an empty scheme or budget list or
/// a non-finite/negative budget, and propagates training and collection
/// errors.
pub fn accuracy_under_attack(
    config: &ExperimentConfig,
    schemes: &[ClassifierKind],
    budgets: &[f64],
) -> Result<Vec<AdversarialRow>, CoreError> {
    accuracy_under_attack_with(CollectCache::global(), config, schemes, budgets)
}

/// [`accuracy_under_attack`] against an explicit [`CollectCache`].
///
/// Per scheme, a detector is trained on the configured clean
/// collection. Per `(scheme, budget)` cell, an [`EvasionAttack`] —
/// constrained to a [`PlausibilityEnvelope`] fit on the benign training
/// windows — is crafted against the clean detector's malice score on
/// the first [`MAX_ATTACK_TARGETS`] malicious windows of an *unseen*
/// evaluation catalog. The same crafted windows are then scored under
/// every [`DefenseKind`], so the rows are directly comparable transfer
/// curves: detection rate vs. perturbation budget, clean vs. retrained
/// vs. ensemble-defended.
///
/// # Errors
///
/// Returns [`CoreError::Config`] for an empty scheme or budget list or
/// a non-finite/negative budget, and propagates training and collection
/// errors.
pub fn accuracy_under_attack_with(
    cache: &CollectCache,
    config: &ExperimentConfig,
    schemes: &[ClassifierKind],
    budgets: &[f64],
) -> Result<Vec<AdversarialRow>, CoreError> {
    if schemes.is_empty() || budgets.is_empty() {
        return Err(CoreError::Config(
            "need at least one scheme and one attack budget".to_owned(),
        ));
    }
    if let Some(&bad) = budgets.iter().find(|b| !b.is_finite() || **b < 0.0) {
        return Err(CoreError::Config(format!(
            "attack budgets must be finite and non-negative, got {bad}"
        )));
    }

    let train_data = &cache.collect(config)?.dataset;
    let envelope = benign_envelope(train_data);
    let detectors = try_par_map(schemes, config.threads, |_, &scheme| {
        DetectorBuilder::new()
            .classifier(scheme)
            .train_binary(train_data)
            .map(|d| (scheme, d))
    })?;

    // Fresh specimen stream: same class mix, ids and behaviour seeds
    // the detectors have never seen.
    let eval_fraction = config.catalog_fraction.min(1.0);
    let eval_seed = config.catalog_seed ^ EVAL_SEED_SALT;
    let eval_recipe = catalog_recipe(eval_fraction, eval_seed);
    let collection = cache.collect_catalog(&config.collector, &eval_recipe, || {
        SampleCatalog::scaled(eval_fraction, eval_seed)
    })?;
    let eval_data = &collection.dataset;

    let cells: Vec<(usize, usize)> = (0..schemes.len())
        .flat_map(|si| (0..budgets.len()).map(move |bi| (si, bi)))
        .collect();
    let per_cell = try_par_map(&cells, config.threads, |_, &(si, bi)| {
        let (scheme, detector) = &detectors[si];
        attack_cell(
            config,
            train_data,
            eval_data,
            &envelope,
            *scheme,
            detector,
            budgets[bi],
            (si as u64) << 8 | bi as u64,
        )
    })?;
    Ok(per_cell.into_iter().flatten().collect())
}

/// Behaviour-level camouflage: detection rate per scheme over the
/// uncamouflaged evaluation catalog and each [`EvasionTactic`] rewrite
/// of it.
///
/// # Errors
///
/// Returns [`CoreError::Config`] for an empty scheme list and
/// propagates training and collection errors.
pub fn camouflage_sweep(
    config: &ExperimentConfig,
    schemes: &[ClassifierKind],
) -> Result<Vec<TacticRow>, CoreError> {
    camouflage_sweep_with(CollectCache::global(), config, schemes)
}

/// [`camouflage_sweep`] against an explicit [`CollectCache`].
///
/// # Errors
///
/// Returns [`CoreError::Config`] for an empty scheme list and
/// propagates training and collection errors.
pub fn camouflage_sweep_with(
    cache: &CollectCache,
    config: &ExperimentConfig,
    schemes: &[ClassifierKind],
) -> Result<Vec<TacticRow>, CoreError> {
    if schemes.is_empty() {
        return Err(CoreError::Config("need at least one scheme".to_owned()));
    }
    let train_data = &cache.collect(config)?.dataset;
    let detectors = try_par_map(schemes, config.threads, |_, &scheme| {
        DetectorBuilder::new()
            .classifier(scheme)
            .train_binary(train_data)
            .map(|d| (scheme, d))
    })?;

    let eval_fraction = config.catalog_fraction.min(1.0);
    let eval_seed = config.catalog_seed ^ EVAL_SEED_SALT;
    let base_recipe = catalog_recipe(eval_fraction, eval_seed);

    let variants: Vec<Option<EvasionTactic>> = std::iter::once(None)
        .chain(EvasionTactic::ALL.into_iter().map(Some))
        .collect();
    let per_variant = try_par_map(&variants, config.threads, |_, &tactic| {
        let recipe = match tactic {
            None => base_recipe.clone(),
            Some(t) => format!("evasive(tactic={},{base_recipe})", t.name()),
        };
        let collection = cache.collect_catalog(&config.collector, &recipe, || {
            let base = SampleCatalog::scaled(eval_fraction, eval_seed);
            match tactic {
                None => base,
                Some(t) => evasive_catalog(&base, t),
            }
        })?;
        let rows: Vec<TacticRow> = detectors
            .iter()
            .map(|(scheme, detector)| {
                let malicious: Vec<&DataRow> = collection
                    .dataset
                    .rows()
                    .iter()
                    .filter(|r| r.class.is_malware())
                    .collect();
                let detected = malicious
                    .iter()
                    .filter(|r| detector.malice_score(&r.features) > 0.5)
                    .count();
                TacticRow {
                    tactic: tactic.map_or("none", |t| t.name()).to_owned(),
                    scheme: *scheme,
                    detection_rate: rate(detected, malicious.len()),
                    windows: malicious.len(),
                }
            })
            .collect();
        Ok::<Vec<TacticRow>, CoreError>(rows)
    })?;
    Ok(per_variant.into_iter().flatten().collect())
}

/// Fit the physical-plausibility envelope on the benign training
/// windows: per-event rate ceilings at [`ENVELOPE_SIGMA`] benign
/// standard deviations above the benign mean.
fn benign_envelope(train_data: &HpcDataset) -> PlausibilityEnvelope {
    let benign = train_data.filtered(|c| !c.is_malware());
    let stats = to_binary_dataset(&benign).feature_stats();
    PlausibilityEnvelope::from_stats(&stats, ENVELOPE_SIGMA)
}

fn score_window(detector: &Detector, window: &[f64]) -> f64 {
    FeatureVector::from_slice(window)
        .map(|v| detector.malice_score(&v))
        .unwrap_or(1.0)
}

fn rate(hits: usize, of: usize) -> f64 {
    if of == 0 {
        f64::NAN
    } else {
        hits as f64 / of as f64
    }
}

/// Craft attacks against `detector` on the first `cap` malicious
/// windows of `data`, keyed by row index so every target gets its own
/// deterministic random stream.
fn craft_attacks<'a>(
    detector: &Detector,
    attack: &EvasionAttack,
    data: &'a HpcDataset,
    cap: usize,
) -> Vec<(&'a DataRow, hbmd_malware::AttackOutcome)> {
    data.rows()
        .iter()
        .enumerate()
        .filter(|(_, r)| r.class.is_malware())
        .take(cap)
        .map(|(i, r)| {
            let outcome = attack.perturb(r.features.as_slice(), i as u64, |w| {
                score_window(detector, w)
            });
            (r, outcome)
        })
        .collect()
}

/// One `(scheme, budget)` cell: craft the transfer attack set once
/// against the clean detector, then score it under every defense.
#[allow(clippy::too_many_arguments)]
fn attack_cell(
    config: &ExperimentConfig,
    train_data: &HpcDataset,
    eval_data: &HpcDataset,
    envelope: &PlausibilityEnvelope,
    scheme: ClassifierKind,
    detector: &Detector,
    budget: f64,
    cell_salt: u64,
) -> Result<Vec<AdversarialRow>, CoreError> {
    let attack_seed = config.catalog_seed ^ 0xE7A5_0000 ^ cell_salt;
    let attack = EvasionAttack::new(envelope.clone(), budget, attack_seed);
    let crafted = craft_attacks(detector, &attack, eval_data, MAX_ATTACK_TARGETS);

    let windows = crafted.len();
    let initially_detected: Vec<&(&DataRow, hbmd_malware::AttackOutcome)> = crafted
        .iter()
        .filter(|(_, o)| o.initial_score > 0.5)
        .collect();
    let baseline_detection = rate(initially_detected.len(), windows);
    let mean_l1 = mean(initially_detected.iter().map(|(_, o)| o.l1_spent));
    let mean_iterations = mean(
        initially_detected
            .iter()
            .map(|(_, o)| f64::from(o.iterations)),
    );

    // Blue team 1: adversarial retraining. The augmentation set is
    // crafted against the *training* catalog (the defender never sees
    // the evaluation attack), successful evasions keep their row's
    // sample id and family label, and the detector is refit.
    let retrain_attack = EvasionAttack::new(envelope.clone(), budget, attack_seed ^ 0x5E17_BACC);
    let mut augmented = train_data.clone();
    for (row, outcome) in craft_attacks(detector, &retrain_attack, train_data, MAX_RETRAIN_TARGETS)
    {
        if !outcome.evaded {
            continue;
        }
        if let Some(features) = FeatureVector::from_slice(&outcome.window) {
            augmented.push(DataRow {
                sample: row.sample,
                class: row.class,
                features,
            });
        }
    }
    let retrained = DetectorBuilder::new()
        .classifier(scheme)
        .train_binary(&augmented)?;

    let mut rows = Vec::with_capacity(DefenseKind::ALL.len());
    for defense in DefenseKind::ALL {
        let mut detected = 0usize;
        let mut evaded = 0usize;
        let mut suspicion_trips = 0usize;
        for (_, outcome) in &crafted {
            let hit = match defense {
                DefenseKind::Clean => outcome.final_score > 0.5,
                DefenseKind::Retrained => score_window(&retrained, &outcome.window) > 0.5,
                DefenseKind::Ensemble => {
                    let suspicious = FeatureVector::from_slice(&outcome.window)
                        .and_then(|v| detector.suspicion(&v))
                        .is_some_and(|d| d >= SUSPICION_ALARM);
                    if suspicious {
                        suspicion_trips += 1;
                        hbmd_obs::incr("adversarial.suspicion_trips");
                    }
                    outcome.final_score > 0.5 || suspicious
                }
            };
            if hit {
                detected += 1;
            } else if outcome.initial_score > 0.5 {
                evaded += 1;
            }
        }
        rows.push(AdversarialRow {
            budget,
            scheme,
            defense,
            windows,
            baseline_detection,
            detection_rate: rate(detected, windows),
            evasion_rate: rate(evaded, initially_detected.len()),
            mean_l1,
            mean_iterations,
            suspicion_trips,
        });
    }
    Ok(rows)
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_erodes_detection_and_a_defense_recovers_it() {
        let schemes = [ClassifierKind::RandomForest];
        let budgets = [0.3];
        let rows =
            accuracy_under_attack(&ExperimentConfig::fast(), &schemes, &budgets).expect("sweep");
        assert_eq!(rows.len(), DefenseKind::ALL.len());

        let by = |d: DefenseKind| {
            rows.iter()
                .find(|r| r.defense == d)
                .unwrap_or_else(|| panic!("{d} row missing"))
        };
        let clean = by(DefenseKind::Clean);
        assert!(clean.windows > 0);
        assert!(
            clean.baseline_detection > 0.6,
            "clean baseline {}",
            clean.baseline_detection
        );
        // The undefended detector must lose material ground to the
        // attack…
        assert!(
            clean.detection_rate < clean.baseline_detection - 0.05,
            "attack had no bite: {} vs baseline {}",
            clean.detection_rate,
            clean.baseline_detection
        );
        assert!(clean.evasion_rate > 0.0);
        // …and at least one defense must claw strictly back at the
        // same budget.
        let best_defended = clean
            .detection_rate
            .max(by(DefenseKind::Retrained).detection_rate)
            .max(by(DefenseKind::Ensemble).detection_rate);
        assert!(
            best_defended > clean.detection_rate,
            "no defense recovered: clean {} best {best_defended}",
            clean.detection_rate
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let schemes = [ClassifierKind::J48];
        let budgets = [0.15];
        let a = accuracy_under_attack(&ExperimentConfig::fast(), &schemes, &budgets).expect("a");
        let b = accuracy_under_attack(&ExperimentConfig::fast(), &schemes, &budgets).expect("b");
        assert_eq!(a, b);
    }

    #[test]
    fn camouflage_sweep_covers_every_tactic_and_stays_bounded() {
        let schemes = [ClassifierKind::J48];
        let rows = camouflage_sweep(&ExperimentConfig::fast(), &schemes).expect("sweep");
        assert_eq!(rows.len(), 1 + EvasionTactic::ALL.len());
        assert_eq!(rows[0].tactic, "none");
        for row in &rows {
            assert!(row.windows > 0, "{}: no malicious windows", row.tactic);
            assert!(
                (0.0..=1.0).contains(&row.detection_rate),
                "{}: rate {}",
                row.tactic,
                row.detection_rate
            );
        }
        let again = camouflage_sweep(&ExperimentConfig::fast(), &schemes).expect("again");
        assert_eq!(rows, again, "camouflage sweep is deterministic");
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let config = ExperimentConfig::fast();
        assert!(accuracy_under_attack(&config, &[], &[0.1]).is_err());
        assert!(accuracy_under_attack(&config, &[ClassifierKind::J48], &[]).is_err());
        assert!(accuracy_under_attack(&config, &[ClassifierKind::J48], &[f64::NAN]).is_err());
        assert!(accuracy_under_attack(&config, &[ClassifierKind::J48], &[-0.1]).is_err());
        assert!(camouflage_sweep(&config, &[]).is_err());
    }
}
