//! Deterministic supervision primitives for the online monitor.
//!
//! The serve pipeline wraps its detector worker in a supervisor loop;
//! this module provides the two policies that loop needs, both free of
//! wall-clock reads so they unit-test exactly and replay byte-for-byte
//! under the chaos harness:
//!
//! * [`Backoff`] — capped exponential restart delays
//!   (`base · 2^attempt`, saturating at `max`),
//! * [`CircuitBreaker`] — a tick-based fault-rate breaker that trips
//!   the pipeline into a degraded state when too many recent windows
//!   faulted, half-opens after a cooldown, and fully closes only after
//!   a clean probation streak.
//!
//! # Examples
//!
//! ```
//! use hbmd_core::supervisor::{Backoff, BreakerState, CircuitBreaker};
//!
//! let mut backoff = Backoff::new(10, 80);
//! assert_eq!(backoff.next_delay_ms(), 10);
//! assert_eq!(backoff.next_delay_ms(), 20);
//! backoff.reset();
//! assert_eq!(backoff.next_delay_ms(), 10);
//!
//! let mut breaker = CircuitBreaker::new(4, 3, 8);
//! for _ in 0..3 {
//!     breaker.record(true);
//! }
//! assert_eq!(breaker.state(), BreakerState::Open);
//! ```

/// Capped exponential backoff: attempt `n` (0-based) yields
/// `base_ms · 2^n`, saturating at `max_ms`.
///
/// Purely arithmetic — the caller decides whether a "delay" is a real
/// sleep (serve mode) or a simulated tick (chaos mode), which keeps
/// restart schedules deterministic under test.
///
/// [`with_jitter`](Backoff::with_jitter) adds *deterministic* jitter:
/// each delay is spread over `[¾d, 5⁄4d]` by hashing the seed with the
/// restart counter, so co-faulting shards (different seeds) desynchronise
/// their restart storms while any single schedule still replays
/// byte-for-byte.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    max_ms: u64,
    attempt: u32,
    /// `Some(seed)` spreads each delay deterministically; `None` is
    /// the exact exponential schedule.
    jitter_seed: Option<u64>,
}

impl Backoff {
    /// A backoff starting at `base_ms` and saturating at `max_ms`.
    /// A zero `base_ms` is promoted to 1 so the schedule still grows.
    pub fn new(base_ms: u64, max_ms: u64) -> Backoff {
        Backoff {
            base_ms: base_ms.max(1),
            max_ms: max_ms.max(base_ms.max(1)),
            attempt: 0,
            jitter_seed: None,
        }
    }

    /// Like [`new`](Backoff::new), but each delay is jittered into
    /// `[¾d, 5⁄4d]` (capped at `max_ms`) by an FNV-1a hash of `seed`
    /// and the restart counter. Two shards seeded differently restart
    /// out of lockstep; the same shard replays the same schedule.
    pub fn with_jitter(base_ms: u64, max_ms: u64, seed: u64) -> Backoff {
        Backoff {
            jitter_seed: Some(seed),
            ..Backoff::new(base_ms, max_ms)
        }
    }

    /// The delay for the next restart, advancing the attempt counter.
    pub fn next_delay_ms(&mut self) -> u64 {
        let delay = self.peek_delay_ms();
        self.attempt = self.attempt.saturating_add(1);
        delay
    }

    /// The delay `next_delay_ms` would return, without advancing.
    pub fn peek_delay_ms(&self) -> u64 {
        let exact = self
            .base_ms
            .checked_shl(self.attempt)
            .unwrap_or(self.max_ms)
            .min(self.max_ms);
        let Some(seed) = self.jitter_seed else {
            return exact;
        };
        // Deterministic spread: hash (seed, attempt) into [¾d, 5⁄4d].
        // The hash depends only on the seed and the restart counter, so
        // a replayed supervisor reproduces its delays exactly.
        let mut keyed = [0u8; 12];
        keyed[..8].copy_from_slice(&seed.to_le_bytes());
        keyed[8..].copy_from_slice(&self.attempt.to_le_bytes());
        let hash = hbmd_obs::manifest::fnv1a_64(&keyed);
        let span = exact / 2;
        let low = exact - exact / 4;
        let offset = if span == 0 { 0 } else { hash % (span + 1) };
        low.saturating_add(offset).min(self.max_ms).max(1)
    }

    /// Restart attempts taken since construction or the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Return to the base delay after a period of stability.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Where the breaker currently routes traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Healthy: windows flow to the real classifier.
    Closed,
    /// Tripped: the pipeline must degrade (abstain) until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed: traffic flows again, but one more fault
    /// re-opens immediately.
    HalfOpen,
}

/// A tick-based circuit breaker over a sliding window of fault
/// observations.
///
/// `record(faulted)` is called once per processed window. While
/// `Closed`, the breaker counts faults over the last `window`
/// observations and trips `Open` when they reach `trip_threshold`.
/// While `Open`, each call burns one tick of `cooldown_ticks`, after
/// which the breaker half-opens. A fault during `HalfOpen` re-opens
/// it (another full cooldown); `window` consecutive clean observations
/// close it.
///
/// Time is measured in observations, not seconds, so behaviour is
/// identical across machines and replay runs.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    window: usize,
    trip_threshold: usize,
    cooldown_ticks: u64,
    state: BreakerState,
    /// Ring of recent fault flags, oldest first (only while closed).
    recent: std::collections::VecDeque<bool>,
    cooldown_left: u64,
    probation_clean: usize,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping at `trip_threshold` faults within the
    /// last `window` observations, staying open for `cooldown_ticks`
    /// observations. Zero `window`/`trip_threshold` are promoted to 1.
    pub fn new(window: usize, trip_threshold: usize, cooldown_ticks: u64) -> CircuitBreaker {
        let window = window.max(1);
        CircuitBreaker {
            window,
            trip_threshold: trip_threshold.clamp(1, window),
            cooldown_ticks,
            state: BreakerState::Closed,
            recent: std::collections::VecDeque::with_capacity(window),
            cooldown_left: 0,
            probation_clean: 0,
            trips: 0,
        }
    }

    /// Current routing state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// `true` while the pipeline must degrade instead of classifying.
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// Times the breaker has tripped `Closed/HalfOpen → Open`.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Record one processed window (`faulted` = the window failed
    /// sanitisation, the worker faulted on it, or it was otherwise
    /// unclassifiable) and return the state to apply to the *next*
    /// window.
    pub fn record(&mut self, faulted: bool) -> BreakerState {
        match self.state {
            BreakerState::Closed => {
                if self.recent.len() == self.window {
                    self.recent.pop_front();
                }
                self.recent.push_back(faulted);
                let faults = self.recent.iter().filter(|&&f| f).count();
                if faults >= self.trip_threshold {
                    self.trip();
                }
            }
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.state = BreakerState::HalfOpen;
                    self.probation_clean = 0;
                }
            }
            BreakerState::HalfOpen => {
                if faulted {
                    self.trip();
                } else {
                    self.probation_clean += 1;
                    if self.probation_clean >= self.window {
                        self.state = BreakerState::Closed;
                        self.recent.clear();
                    }
                }
            }
        }
        self.state
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.trips += 1;
        self.cooldown_left = self.cooldown_ticks.max(1);
        self.recent.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let mut b = Backoff::new(100, 1600);
        let delays: Vec<u64> = (0..7).map(|_| b.next_delay_ms()).collect();
        assert_eq!(delays, vec![100, 200, 400, 800, 1600, 1600, 1600]);
        assert_eq!(b.attempts(), 7);
        b.reset();
        assert_eq!(b.next_delay_ms(), 100);
    }

    #[test]
    fn backoff_survives_extreme_attempts() {
        let mut b = Backoff::new(1, u64::MAX);
        for _ in 0..200 {
            b.next_delay_ms();
        }
        // Shift overflow must saturate at max, not wrap or panic.
        assert_eq!(b.peek_delay_ms(), u64::MAX);
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let schedule = |seed: u64| -> Vec<u64> {
            let mut b = Backoff::with_jitter(100, 1600, seed);
            (0..7).map(|_| b.next_delay_ms()).collect()
        };
        // Same seed → byte-identical schedule (replayable recovery).
        assert_eq!(schedule(3), schedule(3));
        // Every jittered delay stays within [¾d, 5⁄4d] ∩ [1, max].
        let mut exact = Backoff::new(100, 1600);
        for (i, delay) in schedule(3).iter().enumerate() {
            let d = exact.next_delay_ms();
            assert!(
                *delay >= d - d / 4 && *delay <= (d + d / 2).min(1600),
                "attempt {i}: jittered {delay} outside [{}, {}]",
                d - d / 4,
                (d + d / 2).min(1600)
            );
        }
        // Different seeds (shards) must not restart in lockstep.
        assert_ne!(schedule(0), schedule(1));
    }

    #[test]
    fn jittered_backoff_reset_replays_the_schedule() {
        let mut b = Backoff::with_jitter(50, 800, 42);
        let first: Vec<u64> = (0..5).map(|_| b.next_delay_ms()).collect();
        b.reset();
        let second: Vec<u64> = (0..5).map(|_| b.next_delay_ms()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn breaker_trips_on_fault_rate_and_half_opens() {
        let mut br = CircuitBreaker::new(4, 3, 5);
        assert_eq!(br.record(true), BreakerState::Closed);
        assert_eq!(br.record(false), BreakerState::Closed);
        assert_eq!(br.record(true), BreakerState::Closed);
        // Third fault within the window of four trips it.
        assert_eq!(br.record(true), BreakerState::Open);
        assert_eq!(br.trips(), 1);
        // Cooldown burns one tick per observation.
        for _ in 0..4 {
            assert_eq!(br.record(false), BreakerState::Open);
        }
        assert_eq!(br.record(false), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_fault_reopens_and_clean_streak_closes() {
        let mut br = CircuitBreaker::new(3, 1, 2);
        br.record(true);
        assert_eq!(br.state(), BreakerState::Open);
        br.record(false);
        br.record(false);
        assert_eq!(br.state(), BreakerState::HalfOpen);
        // A fault on probation re-opens (second trip).
        assert_eq!(br.record(true), BreakerState::Open);
        assert_eq!(br.trips(), 2);
        br.record(false);
        br.record(false);
        assert_eq!(br.state(), BreakerState::HalfOpen);
        // Three clean observations (== window) close it.
        br.record(false);
        br.record(false);
        assert_eq!(br.record(false), BreakerState::Closed);
        assert_eq!(br.trips(), 2);
    }

    #[test]
    fn old_faults_age_out_of_the_window() {
        let mut br = CircuitBreaker::new(3, 2, 1);
        br.record(true);
        br.record(false);
        br.record(false);
        // The fault above has aged out; one new fault must not trip.
        br.record(true);
        assert_eq!(br.state(), BreakerState::Closed);
    }
}
