//! Typed metrics: counters, gauges, and histograms in a thread-safe
//! [`Registry`].
//!
//! All aggregation is atomic **integer** arithmetic — adds commute, so
//! a total is exact and identical no matter how many `par_map` workers
//! contributed or in what order they ran. Histograms keep the full
//! value multiset (value → count), so percentiles are exact rank
//! statistics, plus power-of-two bit-length buckets for the Prometheus
//! exposition. Wall-clock histograms (created via
//! [`Registry::timing`]) carry a `wall_clock` marker so
//! [`MetricsSnapshot::deterministic`] can strip them from
//! byte-comparison fingerprints.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::json;

/// Number of power-of-two histogram buckets (bit lengths 0..=64).
pub(crate) const BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` occurrences.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one occurrence.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (thread counts, queue depths).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Record the current value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// The last recorded value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A distribution of unsigned integer observations: power-of-two
/// buckets for cheap exposition, plus the full value multiset for
/// exact statistics.
///
/// Both representations are pure functions of the multiset of recorded
/// values — independent of recording order and thread interleaving —
/// so counts, sums and **percentiles are exact**, not bucket estimates.
/// The buckets survive because the Prometheus exposition
/// ([`prom`](crate::prom)) renders cumulative `_bucket` series from
/// them without walking the multiset.
#[derive(Debug)]
pub struct Histogram {
    wall_clock: bool,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    /// value → occurrences; the source of exact percentiles.
    values: Mutex<BTreeMap<u64, u64>>,
}

impl Histogram {
    fn new(wall_clock: bool) -> Histogram {
        Histogram {
            wall_clock,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            values: Mutex::new(BTreeMap::new()),
        }
    }

    /// `true` when the histogram holds wall-clock (non-deterministic)
    /// data, e.g. latencies recorded by [`timer`](crate::timer).
    pub fn is_wall_clock(&self) -> bool {
        self.wall_clock
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        *self
            .values
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(value)
            .or_insert(0) += 1;
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str, labels: &[(String, String)]) -> HistogramSnapshot {
        // Snapshot the multiset first: values recorded *while* we read
        // the atomics can only make `count` >= the multiset total, and
        // quantiles rank against the multiset's own total, so the
        // percentiles stay internally consistent.
        let values: Vec<(u64, u64)> = self
            .values
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&v, &n)| (v, n))
            .collect();
        let total: u64 = values.iter().map(|&(_, n)| n).sum();
        // Exact percentile by rank: the smallest recorded value whose
        // cumulative count reaches ceil(total * q). No interpolation —
        // the returned number was actually observed.
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = (((total as f64) * q).ceil()).clamp(1.0, total as f64) as u64;
            let mut seen = 0u64;
            for &(value, n) in &values {
                seen += n;
                if seen >= rank {
                    return value;
                }
            }
            values.last().map_or(0, |&(v, _)| v)
        };
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_owned(),
            labels: labels.to_vec(),
            wall_clock: self.wall_clock,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            p999: quantile(0.999),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    (
        name.to_owned(),
        labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect(),
    )
}

/// A thread-safe collection of named, optionally labelled metrics.
///
/// Handles returned by the accessors are `Arc`s; hot paths may cache
/// them to skip the registry lookup. Iteration order in snapshots is
/// the key order (`BTreeMap`), so renderings are stable.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<Key, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<Key, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<Key, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The named counter (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The named, labelled counter (created on first use).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(key(name, labels))
                .or_default(),
        )
    }

    /// The named gauge (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The named, labelled gauge (created on first use).
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(key(name, labels))
                .or_default(),
        )
    }

    /// The named exact (deterministic-domain) histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_inner(name, &[], false)
    }

    /// The named, labelled exact histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_inner(name, labels, false)
    }

    /// The named wall-clock histogram (latencies; excluded from
    /// deterministic fingerprints).
    pub fn timing(&self, name: &str) -> Arc<Histogram> {
        self.histogram_inner(name, &[], true)
    }

    /// The named, labelled wall-clock histogram.
    pub fn timing_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_inner(name, labels, true)
    }

    fn histogram_inner(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        wall_clock: bool,
    ) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(key(name, labels))
                .or_insert_with(|| Arc::new(Histogram::new(wall_clock))),
        )
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|((name, labels), c)| CounterSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|((name, labels), g)| GaugeSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|((name, labels), h)| h.snapshot(name, labels))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter's state in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Metric labels, in registration order.
    pub labels: Vec<(String, String)>,
    /// Total at snapshot time.
    pub value: u64,
}

/// One gauge's state in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Metric labels, in registration order.
    pub labels: Vec<(String, String)>,
    /// Last recorded value.
    pub value: i64,
}

/// One histogram's state in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Metric labels, in registration order.
    pub labels: Vec<(String, String)>,
    /// `true` for wall-clock (latency) data.
    pub wall_clock: bool,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Exact median (rank-based over the recorded multiset).
    pub p50: u64,
    /// Exact 95th percentile.
    pub p95: u64,
    /// Exact 99th percentile.
    pub p99: u64,
    /// Exact 99.9th percentile — fleet tail latency is invisible at
    /// p99 with thousands of streams.
    pub p999: u64,
    /// Power-of-two bucket counts by bit length (65 entries), feeding
    /// the Prometheus `_bucket` series.
    pub buckets: Vec<u64>,
}

/// A point-in-time copy of a [`Registry`], renderable as JSON or a
/// summary table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// All counters, in stable key order.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, in stable key order.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, in stable key order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Sum of every counter with this name, across all label sets
    /// (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// The last recorded value of the named, unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels.is_empty())
            .map(|g| g.value)
    }

    /// The named histogram with exactly these labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name && eq_labels(&h.labels, labels))
    }

    /// The deterministic subset: counters and exact histograms only.
    ///
    /// Gauges (often set to environment-dependent values like thread
    /// counts) and wall-clock histograms are stripped; what remains is
    /// byte-identical across runs and thread counts for a deterministic
    /// workload.
    pub fn deterministic(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: Vec::new(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| !h.wall_clock)
                .cloned()
                .collect(),
        }
    }

    /// Render as a JSON object with `counters`, `gauges` and
    /// `histograms` arrays.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        push_entries(&mut out, &self.counters, |c| {
            format!(
                "{{\"name\": {}, {}\"value\": {}}}",
                json::string(&c.name),
                labels_json(&c.labels),
                c.value
            )
        });
        out.push_str("],\n  \"gauges\": [");
        push_entries(&mut out, &self.gauges, |g| {
            format!(
                "{{\"name\": {}, {}\"value\": {}}}",
                json::string(&g.name),
                labels_json(&g.labels),
                g.value
            )
        });
        out.push_str("],\n  \"histograms\": [");
        push_entries(&mut out, &self.histograms, |h| {
            format!(
                "{{\"name\": {}, {}\"wall_clock\": {}, \"count\": {}, \"sum\": {}, \
                 \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \
                 \"p999\": {}}}",
                json::string(&h.name),
                labels_json(&h.labels),
                h.wall_clock,
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99,
                h.p999
            )
        });
        out.push_str("]\n}");
        out
    }

    /// Render as a human-readable summary table (the `repro` binary's
    /// end-of-run report): counters first, then gauges, then histograms
    /// with their quantile estimates. Wall-clock histograms are marked
    /// `[wall]`.
    pub fn summary(&self) -> String {
        fn key(name: &str, labels: &[(String, String)]) -> String {
            if labels.is_empty() {
                return name.to_owned();
            }
            let rendered: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{name}{{{}}}", rendered.join(","))
        }
        let width = self
            .counters
            .iter()
            .map(|c| key(&c.name, &c.labels).len())
            .chain(self.gauges.iter().map(|g| key(&g.name, &g.labels).len()))
            .chain(
                self.histograms
                    .iter()
                    .map(|h| key(&h.name, &h.labels).len()),
            )
            .max()
            .unwrap_or(0)
            .max(8);
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for c in &self.counters {
                out.push_str(&format!(
                    "  {:<width$}  {}\n",
                    key(&c.name, &c.labels),
                    c.value
                ));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for g in &self.gauges {
                out.push_str(&format!(
                    "  {:<width$}  {}\n",
                    key(&g.name, &g.labels),
                    g.value
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<width$}  count={} p50={} p95={} p99={} p999={} max={}{}\n",
                    key(&h.name, &h.labels),
                    h.count,
                    h.p50,
                    h.p95,
                    h.p99,
                    h.p999,
                    h.max,
                    if h.wall_clock { " [wall]" } else { "" }
                ));
            }
        }
        out
    }
}

fn eq_labels(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

fn labels_json(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}: {}", json::string(k), json::string(v)))
        .collect();
    format!("\"labels\": {{{}}}, ", body.join(", "))
}

fn push_entries<T>(out: &mut String, entries: &[T], render: impl Fn(&T) -> String) {
    for (i, entry) in entries.iter().enumerate() {
        out.push_str("\n    ");
        out.push_str(&render(entry));
        if i + 1 < entries.len() {
            out.push(',');
        }
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sum_across_labels() {
        let registry = Registry::new();
        registry.counter("verdict").add(2);
        registry
            .counter_with("verdict", &[("kind", "malware")])
            .add(3);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("verdict"), 5);
        assert_eq!(snapshot.counter("missing"), 0);
    }

    #[test]
    fn same_name_and_labels_share_one_counter() {
        let registry = Registry::new();
        let a = registry.counter_with("x", &[("k", "v")]);
        let b = registry.counter_with("x", &[("k", "v")]);
        a.add(1);
        b.add(1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn histogram_statistics_are_exact_and_order_independent() {
        let forward = Registry::new();
        let backward = Registry::new();
        let values = [1u64, 2, 3, 100, 1000, 0, 7];
        for &v in &values {
            forward.histogram("h").record(v);
        }
        for &v in values.iter().rev() {
            backward.histogram("h").record(v);
        }
        let f = forward.snapshot();
        let b = backward.snapshot();
        assert_eq!(f, b);
        let h = f.histogram("h", &[]).expect("histogram");
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1113);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert!(!h.wall_clock);
        assert!(h.p50 >= 2 && h.p50 <= 7, "p50 {}", h.p50);
        assert!(h.p99 >= 1000, "p99 {}", h.p99);
    }

    #[test]
    fn parallel_recording_is_thread_count_independent() {
        let totals: Vec<MetricsSnapshot> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let registry = Registry::new();
                std::thread::scope(|scope| {
                    for worker in 0..threads {
                        let registry = &registry;
                        scope.spawn(move || {
                            for i in 0..1000usize {
                                if i % threads == worker {
                                    registry.counter("n").incr();
                                    registry.histogram("v").record(i as u64);
                                }
                            }
                        });
                    }
                });
                registry.snapshot()
            })
            .collect();
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[0].counter("n"), 1000);
    }

    #[test]
    fn deterministic_view_strips_wall_clock_and_gauges() {
        let registry = Registry::new();
        registry.counter("c").incr();
        registry.gauge("g").set(8);
        registry.histogram("exact").record(5);
        registry.timing("latency").record(123);
        let det = registry.snapshot().deterministic();
        assert_eq!(det.counters.len(), 1);
        assert!(det.gauges.is_empty());
        assert_eq!(det.histograms.len(), 1);
        assert_eq!(det.histograms[0].name, "exact");
    }

    #[test]
    fn snapshot_renders_json_with_balanced_braces() {
        let registry = Registry::new();
        registry.counter_with("c", &[("k", "v\"q")]).add(1);
        registry.gauge("g").set(-3);
        registry.timing("t").record(10);
        let json = registry.snapshot().to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"v\\\"q\""));
        assert!(json.contains("\"wall_clock\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn percentiles_are_exact_rank_statistics() {
        let registry = Registry::new();
        let h = registry.histogram("latency");
        // 100 observations: 1..=100. Exact p50 = 50, p95 = 95, p99 = 99
        // — the bucket upper bounds (63, 127) must NOT leak through.
        for v in 1..=100u64 {
            h.record(v);
        }
        let snapshot = registry.snapshot();
        let h = snapshot.histogram("latency", &[]).expect("histogram");
        assert_eq!((h.p50, h.p95, h.p99), (50, 95, 99));
        // ceil(100 * 0.999) = 100 — the tail rank reaches the largest
        // observation.
        assert_eq!(h.p999, 100);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert_eq!(h.buckets.iter().sum::<u64>(), 100);
    }

    #[test]
    fn percentiles_respect_duplicate_mass() {
        let registry = Registry::new();
        let h = registry.histogram("dup");
        for _ in 0..99 {
            h.record(7);
        }
        h.record(1_000_000);
        let snapshot = registry.snapshot();
        let h = snapshot.histogram("dup", &[]).expect("histogram");
        assert_eq!((h.p50, h.p95), (7, 7));
        assert_eq!(h.p99, 7); // rank 99 of 100 still lands on the mass
        assert_eq!(h.p999, 1_000_000); // rank 100 of 100 is the outlier
        assert_eq!(h.max, 1_000_000);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let registry = Registry::new();
        let _ = registry.histogram("h");
        let snapshot = registry.snapshot();
        let h = snapshot.histogram("h", &[]).expect("histogram");
        assert_eq!((h.count, h.sum, h.min, h.max, h.p50), (0, 0, 0, 0, 0));
        assert_eq!((h.p95, h.p99, h.p999), (0, 0, 0));
    }
}
