//! Ensemble learners: boosting, bagging and random forests.
//!
//! The hardware-malware-detection literature the reference evaluation
//! builds on (Khasawneh et al. RAID'15; Sayadi et al. DAC'18/CF'18)
//! shows ensembles of weak HPC classifiers outperforming single strong
//! ones. These implementations follow the WEKA schemes:
//! [`AdaBoostM1`] (boosting by resampling), [`Bagging`] (bootstrap
//! aggregation over any base learner) and [`RandomForest`]
//! (bagged trees with per-split feature subsampling).

pub mod adaboost;
pub mod bagging;
pub mod random_forest;

pub use adaboost::AdaBoostM1;
pub use bagging::Bagging;
pub use random_forest::RandomForest;
