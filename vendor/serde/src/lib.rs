//! An offline facade over the [`serde`](https://serde.rs) API surface
//! the hbmd workspace touches.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors this shim. The workspace only ever *annotates* types with
//! `#[derive(Serialize, Deserialize)]` to declare them
//! serialisation-ready — no serialisation format crate (serde_json,
//! bincode, …) is in the dependency tree, so no derive body is ever
//! exercised. The derive macros here therefore expand to nothing,
//! keeping every annotation source-compatible with real serde: swap
//! this crate's path dependency for the crates.io `serde` and the
//! workspace compiles unchanged.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types declared serialisable (see crate docs: derives are
/// declarative here, so no impls are generated or required).
pub trait Serialize {}

/// Marker for types declared deserialisable.
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialisation alias, mirroring serde's blanket.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
