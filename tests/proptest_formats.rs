//! Property-based tests on the interchange formats: arbitrary datasets
//! must survive CSV, ARFF, and perf-stat trace round trips.

use std::io::BufReader;

use hbmd::events::{FeatureVector, HpcEvent};
use hbmd::malware::{AppClass, SampleId};
use hbmd::perf::{arff, csv, trace, DataRow, HpcDataset};
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = AppClass> {
    prop::sample::select(AppClass::ALL.to_vec())
}

fn arb_row() -> impl Strategy<Value = DataRow> {
    (
        0u32..10_000,
        arb_class(),
        prop::collection::vec(0.0f64..1e7, HpcEvent::COUNT),
    )
        .prop_map(|(id, class, values)| {
            // Round to the CSV's 4-decimal precision so round trips are
            // exact.
            let values: Vec<f64> = values.iter().map(|v| (v * 1e4).round() / 1e4).collect();
            DataRow {
                sample: SampleId(id),
                class,
                features: FeatureVector::from_slice(&values).expect("16 values"),
            }
        })
}

fn arb_dataset() -> impl Strategy<Value = HpcDataset> {
    prop::collection::vec(arb_row(), 1..40).prop_map(|mut rows| {
        // Sample ids identify one specimen with one class: make ids
        // unique so generated datasets satisfy the pipeline invariant.
        for (i, row) in rows.iter_mut().enumerate() {
            row.sample = SampleId(i as u32);
        }
        HpcDataset::from_rows(rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn csv_round_trips_exactly(dataset in arb_dataset()) {
        let mut buffer = Vec::new();
        csv::write_csv(&mut buffer, &dataset, true).expect("write");
        let parsed = csv::read_csv(BufReader::new(buffer.as_slice())).expect("parse");
        prop_assert_eq!(parsed, dataset);
    }

    #[test]
    fn paper_layout_csv_preserves_rows_and_classes(dataset in arb_dataset()) {
        let mut buffer = Vec::new();
        csv::write_csv(&mut buffer, &dataset, false).expect("write");
        let parsed = csv::read_csv(BufReader::new(buffer.as_slice())).expect("parse");
        prop_assert_eq!(parsed.len(), dataset.len());
        for (a, b) in parsed.rows().iter().zip(dataset.rows()) {
            prop_assert_eq!(a.class, b.class);
            prop_assert_eq!(a.features.as_slice(), b.features.as_slice());
        }
    }

    #[test]
    fn arff_round_trips_values_and_classes(dataset in arb_dataset()) {
        let mut buffer = Vec::new();
        arff::write_arff(&mut buffer, "prop", &dataset).expect("write");
        let parsed = arff::read_arff(BufReader::new(buffer.as_slice())).expect("parse");
        prop_assert_eq!(parsed.len(), dataset.len());
        for (a, b) in parsed.rows().iter().zip(dataset.rows()) {
            prop_assert_eq!(a.class, b.class);
            prop_assert_eq!(a.features.as_slice(), b.features.as_slice());
        }
    }

    #[test]
    fn trace_round_trips_windows(
        class in arb_class(),
        windows in prop::collection::vec(
            prop::collection::vec(0.0f64..1e7, HpcEvent::COUNT),
            1..10,
        ),
    ) {
        let windows: Vec<FeatureVector> = windows
            .into_iter()
            .map(|values| {
                let values: Vec<f64> =
                    values.iter().map(|v| (v * 100.0).round() / 100.0).collect();
                FeatureVector::from_slice(&values).expect("16 values")
            })
            .collect();
        let mut buffer = Vec::new();
        trace::write_trace(&mut buffer, "sample-00001", class, &windows, 0.5)
            .expect("write");
        let parsed = trace::parse_trace(BufReader::new(buffer.as_slice())).expect("parse");
        prop_assert_eq!(parsed.class, class);
        prop_assert_eq!(parsed.windows.len(), windows.len());
        for (a, b) in parsed.windows.iter().zip(&windows) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn split_never_leaks_samples(dataset in arb_dataset(), seed in 0u64..100) {
        // Guard: need at least 2 distinct classes for a meaningful split;
        // the split itself must still partition cleanly regardless.
        let (train, test) = dataset.split(0.7, seed);
        prop_assert_eq!(train.len() + test.len(), dataset.len());
        let train_ids: std::collections::BTreeSet<SampleId> =
            train.rows().iter().map(|r| r.sample).collect();
        for row in test.rows() {
            prop_assert!(!train_ids.contains(&row.sample));
        }
    }
}
