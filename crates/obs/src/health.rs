//! Supervisor-visible service health, shared between the pipeline and
//! the exposition server.
//!
//! A [`Health`] is a lock-free bundle of the one state machine and two
//! counters a supervised monitor needs to expose: where the supervisor
//! currently is ([`ServiceState`]), how many times the worker has been
//! restarted, and how many times the circuit breaker has tripped. The
//! serve layer maps it onto `/readyz` (200 only while
//! [`ServiceState::Ready`]); the pipeline mirrors the counters into
//! the metrics [`Registry`](crate::metrics::Registry) so they reach
//! the Prometheus exposition as `hbmd_supervisor_restarts_total` and
//! `hbmd_breaker_trips_total`.
//!
//! # Examples
//!
//! ```
//! use hbmd_obs::health::{Health, ServiceState};
//!
//! let health = Health::new();
//! assert_eq!(health.state(), ServiceState::Starting);
//! health.set_state(ServiceState::Ready);
//! assert!(health.is_ready());
//! health.record_restart();
//! assert_eq!(health.restarts(), 1);
//! ```

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Where the supervised pipeline currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceState {
    /// Booting: training or restoring the detector; not yet serving
    /// verdicts.
    Starting,
    /// Healthy and classifying windows.
    Ready,
    /// Running but degraded: the circuit breaker is open and windows
    /// are abstained instead of classified.
    Degraded,
    /// A worker fault is being recovered: restoring from checkpoint
    /// under backoff.
    Restarting,
}

impl ServiceState {
    /// Lower-case name, as served on `/readyz` and logged.
    pub fn as_str(self) -> &'static str {
        match self {
            ServiceState::Starting => "starting",
            ServiceState::Ready => "ready",
            ServiceState::Degraded => "degraded",
            ServiceState::Restarting => "restarting",
        }
    }
}

impl std::fmt::Display for ServiceState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Shared, lock-free health state: one [`ServiceState`] plus restart
/// and breaker-trip counters. Cheap enough to update from the hot
/// path and safe to read from any scrape thread.
#[derive(Debug, Default)]
pub struct Health {
    state: AtomicU8,
    restarts: AtomicU64,
    trips: AtomicU64,
}

const STATE_TAGS: [ServiceState; 4] = [
    ServiceState::Starting,
    ServiceState::Ready,
    ServiceState::Degraded,
    ServiceState::Restarting,
];

impl Health {
    /// A fresh health record in [`ServiceState::Starting`] with zeroed
    /// counters.
    pub fn new() -> Health {
        Health::default()
    }

    /// The current state.
    pub fn state(&self) -> ServiceState {
        STATE_TAGS[usize::from(self.state.load(Ordering::SeqCst)) % STATE_TAGS.len()]
    }

    /// Move to `state`.
    pub fn set_state(&self, state: ServiceState) {
        let tag = STATE_TAGS
            .iter()
            .position(|&s| s == state)
            .expect("state is one of the four tags") as u8;
        self.state.store(tag, Ordering::SeqCst);
    }

    /// `true` only in [`ServiceState::Ready`] — the `/readyz`
    /// criterion.
    pub fn is_ready(&self) -> bool {
        self.state() == ServiceState::Ready
    }

    /// Count one worker restart.
    pub fn record_restart(&self) {
        self.restarts.fetch_add(1, Ordering::SeqCst);
    }

    /// Worker restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::SeqCst)
    }

    /// Count one circuit-breaker trip.
    pub fn record_trip(&self) {
        self.trips.fetch_add(1, Ordering::SeqCst);
    }

    /// Breaker trips so far.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::SeqCst)
    }
}

/// Health for a sharded fleet: one [`Health`] per shard (each shard's
/// supervisor drives its own), plus fleet-wide quarantine and shedding
/// counters.
///
/// Readiness is a *quorum*, not unanimity — that is the bulkhead
/// contract: one shard restarting must not flip the whole deployment
/// out of the load balancer. [`is_ready`](FleetHealth::is_ready)
/// requires a strict majority of shards in [`ServiceState::Ready`].
#[derive(Debug)]
pub struct FleetHealth {
    shards: Vec<Health>,
    quarantined: AtomicU64,
    readmissions: AtomicU64,
    shed: AtomicU64,
}

impl FleetHealth {
    /// A fleet of `shards` shard-health records, all
    /// [`ServiceState::Starting`].
    pub fn new(shards: usize) -> FleetHealth {
        FleetHealth {
            shards: (0..shards.max(1)).map(|_| Health::new()).collect(),
            quarantined: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The health record of shard `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn shard(&self, index: usize) -> &Health {
        &self.shards[index]
    }

    /// Shards currently [`ServiceState::Ready`].
    pub fn ready_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.is_ready()).count()
    }

    /// The `/readyz` criterion: a strict majority of shards ready.
    pub fn is_ready(&self) -> bool {
        self.ready_shards() * 2 > self.shards.len()
    }

    /// Total worker restarts across all shards.
    pub fn restarts(&self) -> u64 {
        self.shards.iter().map(Health::restarts).sum()
    }

    /// Total breaker trips across all shards.
    pub fn trips(&self) -> u64 {
        self.shards.iter().map(Health::trips).sum()
    }

    /// Streams currently quarantined (a gauge: raise on quarantine,
    /// lower on readmission).
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::SeqCst)
    }

    /// Count one stream entering quarantine.
    pub fn record_quarantine(&self) {
        self.quarantined.fetch_add(1, Ordering::SeqCst);
    }

    /// Count one stream readmitted after probation.
    pub fn record_readmission(&self) {
        self.readmissions.fetch_add(1, Ordering::SeqCst);
        // Saturating: a readmission without a recorded quarantine (e.g.
        // restored mid-probation) must not wrap the gauge.
        let _ = self
            .quarantined
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |q| q.checked_sub(1));
    }

    /// Streams readmitted after probation so far.
    pub fn readmissions(&self) -> u64 {
        self.readmissions.load(Ordering::SeqCst)
    }

    /// Count `n` windows shed under overload.
    pub fn record_shed(&self, n: u64) {
        self.shed.fetch_add(n, Ordering::SeqCst);
    }

    /// Windows shed under overload so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_machine_roundtrips_all_states() {
        let health = Health::new();
        for state in STATE_TAGS {
            health.set_state(state);
            assert_eq!(health.state(), state);
            assert_eq!(health.is_ready(), state == ServiceState::Ready);
        }
    }

    #[test]
    fn counters_accumulate() {
        let health = Health::new();
        health.record_restart();
        health.record_restart();
        health.record_trip();
        assert_eq!(health.restarts(), 2);
        assert_eq!(health.trips(), 1);
    }

    #[test]
    fn names_match_the_readyz_contract() {
        assert_eq!(ServiceState::Starting.to_string(), "starting");
        assert_eq!(ServiceState::Ready.to_string(), "ready");
        assert_eq!(ServiceState::Degraded.to_string(), "degraded");
        assert_eq!(ServiceState::Restarting.to_string(), "restarting");
    }

    #[test]
    fn fleet_readiness_is_a_strict_majority() {
        let fleet = FleetHealth::new(4);
        assert!(!fleet.is_ready(), "all starting");
        fleet.shard(0).set_state(ServiceState::Ready);
        fleet.shard(1).set_state(ServiceState::Ready);
        assert!(!fleet.is_ready(), "2 of 4 is not a strict majority");
        fleet.shard(2).set_state(ServiceState::Ready);
        assert!(fleet.is_ready(), "3 of 4 is");
        // A single restarting shard must not flip fleet readiness.
        fleet.shard(3).set_state(ServiceState::Restarting);
        assert!(fleet.is_ready());
    }

    #[test]
    fn fleet_counters_aggregate_across_shards() {
        let fleet = FleetHealth::new(2);
        fleet.shard(0).record_restart();
        fleet.shard(1).record_restart();
        fleet.shard(1).record_trip();
        assert_eq!(fleet.restarts(), 2);
        assert_eq!(fleet.trips(), 1);

        fleet.record_quarantine();
        fleet.record_quarantine();
        assert_eq!(fleet.quarantined(), 2);
        fleet.record_readmission();
        assert_eq!(fleet.quarantined(), 1);
        assert_eq!(fleet.readmissions(), 1);
        // Readmissions never wrap the quarantine gauge below zero.
        fleet.record_readmission();
        fleet.record_readmission();
        assert_eq!(fleet.quarantined(), 0);

        fleet.record_shed(5);
        assert_eq!(fleet.shed(), 5);
    }
}
