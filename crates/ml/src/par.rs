//! A deterministic, ordering-preserving parallel map over slices,
//! built on `std::thread::scope` (the workspace has no crates.io
//! access, so rayon is unavailable).
//!
//! [`par_map`] chunks the input across at most `threads` scoped worker
//! threads and reassembles the per-chunk outputs in input order, so for
//! a task function that is a pure function of `(index, item)` the
//! result is **byte-identical at any thread count** — the property the
//! experiment layer's determinism tests pin down. Tasks that need
//! randomness must derive their seed from the index (or the item), not
//! from shared mutable state.
//!
//! # Examples
//!
//! ```
//! use hbmd_ml::par::par_map;
//!
//! let inputs = [1u64, 2, 3, 4, 5];
//! let squares = par_map(&inputs, 4, |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

/// Number of worker threads to use by default: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `task` over `items` on up to `threads` scoped worker threads,
/// returning outputs in input order.
///
/// `task` receives `(index, &item)` so per-task seeds can be derived
/// deterministically. With `threads <= 1` (or fewer than two items) the
/// map runs inline on the caller's thread — the sequential and parallel
/// paths produce identical output for pure task functions.
///
/// Work is split into contiguous chunks, one per worker, so an item's
/// index never changes with the thread count.
///
/// # Panics
///
/// Propagates a panic from any task after all workers finish.
pub fn par_map<T, R, F>(items: &[T], threads: usize, task: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    // Item count is thread-count-independent; chunk counts are not, so
    // only the former is recorded.
    hbmd_obs::add("par.items", items.len() as u64);
    if threads == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| task(i, item))
            .collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let task = &task;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(chunk_index, chunk)| {
                let base = chunk_index * chunk_len;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(offset, item)| task(base + offset, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    })
}

/// [`par_map`] over a `Result`-producing task: the first error (by
/// input order) is returned, successes keep their order.
///
/// All tasks still run — workers cannot be cancelled mid-chunk — so
/// this is for fallible-but-rarely-failing pipelines, not early exits.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing task.
pub fn try_par_map<T, R, E, F>(items: &[T], threads: usize, task: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    par_map(items, threads, task).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn preserves_order_at_every_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let sequential = par_map(&items, 1, |i, &x| (i, x * 3));
        for threads in [2, 3, 8, 64, 1024] {
            let parallel = par_map(&items, threads, |i, &x| (i, x * 3));
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn index_seeded_randomness_is_thread_count_invariant() {
        let items: Vec<u64> = (0..31).collect();
        let draw = |i: usize, &seed: &u64| -> f64 {
            let mut rng = SmallRng::seed_from_u64(seed ^ (i as u64) << 17);
            rng.gen_range(0.0..1.0)
        };
        let baseline = par_map(&items, 1, draw);
        for threads in [2, 8] {
            assert_eq!(par_map(&items, threads, draw), baseline);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: [u8; 0] = [];
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u8], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn try_par_map_returns_first_error_by_index() {
        let items: Vec<usize> = (0..20).collect();
        let result = try_par_map(&items, 4, |_, &x| {
            if x % 7 == 5 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(result, Err("bad 5".to_owned()));
        let ok = try_par_map(&items, 4, |_, &x| Ok::<usize, String>(x)).expect("all ok");
        assert_eq!(ok, items);
    }

    #[test]
    #[should_panic(expected = "par_map worker panicked")]
    fn task_panics_propagate() {
        let items = [1u8, 2, 3, 4];
        let _ = par_map(&items, 2, |_, &x| {
            assert!(x < 4, "boom");
            x
        });
    }
}
