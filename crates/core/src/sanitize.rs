//! Window sanitisation: the detector's first line of defence against a
//! degraded collection pipeline.
//!
//! A faulted counter stream hands the classifier NaNs (multiplexing
//! starvation), absurd magnitudes (saturated counters), and negative
//! garbage — inputs the trained models were never shown and on which
//! their verdicts are meaningless. The [`Sanitizer`] is fitted on the
//! training split and screens every incoming window:
//!
//! * values that are non-finite, negative, or far beyond the training
//!   range are *invalid*,
//! * a window with few invalid values is **repaired** by median
//!   imputation (the training median of each bad column),
//! * a window that is mostly garbage is **unusable** — the detector
//!   [abstains](crate::Verdict::Abstain) instead of guessing,
//! * a window whose values are individually plausible but *jointly*
//!   absurd — grossly displaced from the training distribution by a
//!   Mahalanobis-style RMS z-score margin — is also **unusable**: an
//!   adversarially shifted window should abstain, not classify.

use hbmd_events::{FeatureVector, HpcEvent};
use hbmd_perf::HpcDataset;
use serde::{Deserialize, Serialize};

/// Slack factor over the training maximum before a value counts as
/// out-of-range: legitimate unseen workloads run somewhat hotter than
/// the training set, saturated counters run *orders of magnitude*
/// hotter.
const RANGE_SLACK: f64 = 8.0;

/// Default Mahalanobis-style outlier margin: a window whose RMS
/// z-score against the per-column training `(mean, std)` reaches this
/// is abstained on even though every value is individually in range.
/// Deliberately generous — legitimate unseen workloads sit within a
/// few σ of training; a window this far out is either a saturating
/// fault the per-column ceilings missed or an adversarial shift.
const OUTLIER_MARGIN: f64 = 16.0;

/// What screening one window produced.
#[derive(Debug, Clone, PartialEq)]
pub enum SanitizeOutcome {
    /// Every value was plausible; the window is untouched.
    Clean(FeatureVector),
    /// Some values were corrupt and have been imputed from training
    /// medians.
    Repaired {
        /// The window with corrupt columns replaced.
        features: FeatureVector,
        /// How many columns were imputed.
        repaired: usize,
    },
    /// Too much of the window was corrupt to trust a repair.
    Unusable {
        /// How many columns were invalid.
        invalid: usize,
    },
}

impl SanitizeOutcome {
    /// The usable window, if any.
    pub fn features(&self) -> Option<&FeatureVector> {
        match self {
            SanitizeOutcome::Clean(features) | SanitizeOutcome::Repaired { features, .. } => {
                Some(features)
            }
            SanitizeOutcome::Unusable { .. } => None,
        }
    }
}

/// Screens sampling windows against statistics of the training split;
/// the module-level docs describe the imputation/abstention policy.
///
/// # Examples
///
/// ```
/// use hbmd_core::{SanitizeOutcome, Sanitizer};
/// use hbmd_malware::SampleCatalog;
/// use hbmd_perf::{Collector, CollectorConfig};
///
/// let catalog = SampleCatalog::scaled(0.02, 3);
/// let dataset = Collector::new(CollectorConfig::fast())
///     .expect("static config")
///     .collect(&catalog)
///     .expect("pristine pipeline")
///     .dataset;
/// let sanitizer = Sanitizer::fit(&dataset);
///
/// let clean = &dataset.rows()[0].features;
/// assert!(matches!(sanitizer.sanitize(clean), SanitizeOutcome::Clean(_)));
///
/// let mut corrupt = clean.clone();
/// corrupt[hbmd_events::HpcEvent::CacheMisses] = f64::NAN;
/// assert!(matches!(
///     sanitizer.sanitize(&corrupt),
///     SanitizeOutcome::Repaired { repaired: 1, .. }
/// ));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sanitizer {
    /// Per-column training median (imputation value).
    medians: Vec<f64>,
    /// Per-column ceiling: training max × [`RANGE_SLACK`]; infinite for
    /// columns with no finite training data.
    ceilings: Vec<f64>,
    /// Per-column training mean (outlier screening).
    means: Vec<f64>,
    /// Per-column training standard deviation; non-finite or zero
    /// excludes the column from outlier screening.
    stds: Vec<f64>,
    /// Invalid columns tolerated before the window is unusable.
    max_repair: usize,
    /// RMS z-score at which a finite, in-range window still abstains
    /// ([`OUTLIER_MARGIN`] by default; `+inf` disables).
    outlier_margin: f64,
}

impl Sanitizer {
    /// Fit medians and ceilings per feature column on `dataset`
    /// (normally the training split). Never panics: an empty dataset
    /// yields a sanitizer that accepts any finite non-negative window.
    pub fn fit(dataset: &HpcDataset) -> Sanitizer {
        let mut medians = Vec::with_capacity(HpcEvent::COUNT);
        let mut ceilings = Vec::with_capacity(HpcEvent::COUNT);
        let mut means = Vec::with_capacity(HpcEvent::COUNT);
        let mut stds = Vec::with_capacity(HpcEvent::COUNT);
        for j in 0..HpcEvent::COUNT {
            let mut finite: Vec<f64> = dataset
                .rows()
                .iter()
                .map(|r| r.features.as_slice()[j])
                .filter(|v| v.is_finite() && *v >= 0.0)
                .collect();
            if finite.is_empty() {
                medians.push(0.0);
                ceilings.push(f64::INFINITY);
                means.push(0.0);
                stds.push(f64::INFINITY);
                continue;
            }
            finite.sort_by(|a, b| a.total_cmp(b));
            let mid = finite.len() / 2;
            let median = if finite.len() % 2 == 1 {
                finite[mid]
            } else {
                (finite[mid - 1] + finite[mid]) / 2.0
            };
            medians.push(median);
            ceilings.push(finite[finite.len() - 1] * RANGE_SLACK);
            let n = finite.len() as f64;
            let mean = finite.iter().sum::<f64>() / n;
            let var = finite.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            means.push(mean);
            stds.push(var.sqrt());
        }
        Sanitizer {
            medians,
            ceilings,
            means,
            stds,
            max_repair: HpcEvent::COUNT / 4,
            outlier_margin: OUTLIER_MARGIN,
        }
    }

    /// Override how many invalid columns a repair may impute (default:
    /// a quarter of the feature vector — a window needing more than
    /// that is mostly synthetic after imputation, and an imputed
    /// majority would let the medians, not the workload, cast the
    /// vote). Windows with more become [`SanitizeOutcome::Unusable`].
    pub fn with_max_repair(mut self, max_repair: usize) -> Sanitizer {
        self.max_repair = max_repair.min(HpcEvent::COUNT);
        self
    }

    /// Override the Mahalanobis-style outlier margin (RMS z-score;
    /// `f64::INFINITY` disables the screen entirely). Non-finite or
    /// non-positive margins other than `+inf` also disable it.
    pub fn with_outlier_margin(mut self, margin: f64) -> Sanitizer {
        self.outlier_margin = if margin > 0.0 { margin } else { f64::INFINITY };
        self
    }

    /// The armed outlier margin (`+inf` when disabled).
    pub fn outlier_margin(&self) -> f64 {
        self.outlier_margin
    }

    /// RMS z-score of a window against the training distribution, over
    /// the columns with usable spread. `0.0` when no column qualifies.
    pub fn rms_z(&self, values: &[f64]) -> f64 {
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for (j, &v) in values.iter().enumerate().take(self.stds.len()) {
            let std = self.stds[j];
            if std > 0.0 && std.is_finite() {
                let z = (v - self.means[j]) / std;
                sum += z * z;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            (sum / n as f64).sqrt()
        }
    }

    /// The per-column imputation medians.
    pub fn medians(&self) -> &[f64] {
        &self.medians
    }

    /// Screen one window. Never panics, whatever the input holds.
    pub fn sanitize(&self, window: &FeatureVector) -> SanitizeOutcome {
        let values = window.as_slice();
        let invalid: Vec<usize> = values
            .iter()
            .enumerate()
            .filter(|&(j, &v)| !self.is_valid(j, v))
            .map(|(j, _)| j)
            .collect();
        if invalid.is_empty() {
            if let Some(outliers) = self.joint_outliers(values) {
                return SanitizeOutcome::Unusable { invalid: outliers };
            }
            return SanitizeOutcome::Clean(window.clone());
        }
        if invalid.len() > self.max_repair {
            return SanitizeOutcome::Unusable {
                invalid: invalid.len(),
            };
        }
        let mut repaired = values.to_vec();
        for &j in &invalid {
            repaired[j] = self.medians[j];
        }
        if let Some(outliers) = self.joint_outliers(&repaired) {
            return SanitizeOutcome::Unusable {
                invalid: invalid.len().max(outliers),
            };
        }
        SanitizeOutcome::Repaired {
            features: FeatureVector::from_slice(&repaired).expect("same width"),
            repaired: invalid.len(),
        }
    }

    fn is_valid(&self, column: usize, value: f64) -> bool {
        value.is_finite() && value >= 0.0 && value <= self.ceilings[column]
    }

    /// When the window's RMS z-score reaches the outlier margin,
    /// returns how many columns individually exceed it (at least one:
    /// the RMS is bounded by the max |z|). `None` below the margin.
    fn joint_outliers(&self, values: &[f64]) -> Option<usize> {
        if !self.outlier_margin.is_finite() || self.rms_z(values) < self.outlier_margin {
            return None;
        }
        let count = values
            .iter()
            .enumerate()
            .take(self.stds.len())
            .filter(|&(j, &v)| {
                let std = self.stds[j];
                std > 0.0
                    && std.is_finite()
                    && ((v - self.means[j]) / std).abs() >= self.outlier_margin
            })
            .count();
        Some(count.max(1))
    }
}

use hbmd_ml::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for Sanitizer {
    fn snap(&self, w: &mut SnapWriter) {
        self.medians.snap(w);
        self.ceilings.snap(w);
        self.max_repair.snap(w);
        // v2 tail: the outlier screen's training stats and margin.
        self.means.snap(w);
        self.stds.snap(w);
        self.outlier_margin.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let medians: Vec<f64> = Snap::unsnap(r)?;
        let ceilings: Vec<f64> = Snap::unsnap(r)?;
        if medians.len() != ceilings.len() {
            return Err(SnapError::Invalid(format!(
                "sanitizer medians/ceilings length mismatch: {} vs {}",
                medians.len(),
                ceilings.len()
            )));
        }
        let max_repair = Snap::unsnap(r)?;
        let means: Vec<f64> = Snap::unsnap(r)?;
        let stds: Vec<f64> = Snap::unsnap(r)?;
        if means.len() != medians.len() || stds.len() != medians.len() {
            return Err(SnapError::Invalid(format!(
                "sanitizer means/stds length mismatch: {} / {} vs {}",
                means.len(),
                stds.len(),
                medians.len()
            )));
        }
        let outlier_margin: f64 = Snap::unsnap(r)?;
        if outlier_margin.is_nan() || outlier_margin <= 0.0 {
            return Err(SnapError::Invalid(format!(
                "sanitizer outlier margin {outlier_margin} must be positive"
            )));
        }
        Ok(Sanitizer {
            medians,
            ceilings,
            means,
            stds,
            max_repair,
            outlier_margin,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbmd_malware::SampleCatalog;
    use hbmd_perf::{Collector, CollectorConfig};

    fn fitted() -> (HpcDataset, Sanitizer) {
        let catalog = SampleCatalog::scaled(0.02, 5);
        let dataset = Collector::new(CollectorConfig::fast())
            .expect("config")
            .collect(&catalog)
            .expect("collect")
            .dataset;
        let sanitizer = Sanitizer::fit(&dataset);
        (dataset, sanitizer)
    }

    #[test]
    fn training_windows_pass_clean() {
        let (dataset, sanitizer) = fitted();
        for row in dataset.rows() {
            assert!(matches!(
                sanitizer.sanitize(&row.features),
                SanitizeOutcome::Clean(_)
            ));
        }
    }

    #[test]
    fn light_corruption_is_repaired_with_medians() {
        let (dataset, sanitizer) = fitted();
        let mut window = dataset.rows()[0].features.clone();
        window[HpcEvent::BranchInstructions] = f64::NAN;
        window[HpcEvent::BranchMisses] = -4.0;
        match sanitizer.sanitize(&window) {
            SanitizeOutcome::Repaired { features, repaired } => {
                assert_eq!(repaired, 2);
                let j = HpcEvent::BranchInstructions.index();
                assert_eq!(features.as_slice()[j], sanitizer.medians()[j]);
                assert!(features.as_slice().iter().all(|v| v.is_finite()));
            }
            other => panic!("expected repair, got {other:?}"),
        }
    }

    #[test]
    fn saturated_counters_are_out_of_range() {
        let (dataset, sanitizer) = fitted();
        let mut window = dataset.rows()[0].features.clone();
        window[HpcEvent::CacheReferences] = hbmd_perf::SATURATION_CEILING;
        assert!(matches!(
            sanitizer.sanitize(&window),
            SanitizeOutcome::Repaired { repaired: 1, .. }
        ));
    }

    #[test]
    fn garbage_windows_are_unusable() {
        let (_, sanitizer) = fitted();
        let values = vec![f64::NAN; HpcEvent::COUNT];
        let window = FeatureVector::from_slice(&values).expect("16");
        match sanitizer.sanitize(&window) {
            SanitizeOutcome::Unusable { invalid } => {
                assert_eq!(invalid, HpcEvent::COUNT);
            }
            other => panic!("expected unusable, got {other:?}"),
        }
        assert!(sanitizer.sanitize(&window).features().is_none());
    }

    #[test]
    fn empty_fit_accepts_any_finite_window() {
        let sanitizer = Sanitizer::fit(&HpcDataset::default());
        let window = FeatureVector::from_slice(&[1e12; HpcEvent::COUNT]).expect("16");
        assert!(matches!(
            sanitizer.sanitize(&window),
            SanitizeOutcome::Clean(_)
        ));
    }

    #[test]
    fn adversarially_shifted_windows_abstain() {
        let (dataset, sanitizer) = fitted();
        // Every column pushed to 7× its training maximum: individually
        // below the RANGE_SLACK ceilings (8× max), jointly absurd.
        let values: Vec<f64> = (0..HpcEvent::COUNT)
            .map(|j| {
                dataset
                    .rows()
                    .iter()
                    .map(|r| r.features.as_slice()[j])
                    .fold(0.0, f64::max)
                    * 7.0
            })
            .collect();
        let window = FeatureVector::from_slice(&values).expect("16");
        assert!(
            sanitizer.rms_z(&values) >= sanitizer.outlier_margin(),
            "rms z {} under margin {}",
            sanitizer.rms_z(&values),
            sanitizer.outlier_margin()
        );
        assert!(matches!(
            sanitizer.sanitize(&window),
            SanitizeOutcome::Unusable { .. }
        ));
        // Disabling the margin restores the pre-screen behaviour.
        let relaxed = sanitizer.clone().with_outlier_margin(f64::INFINITY);
        assert!(matches!(
            relaxed.sanitize(&window),
            SanitizeOutcome::Clean(_)
        ));
    }

    #[test]
    fn outlier_stats_survive_a_snapshot_roundtrip() {
        use hbmd_ml::snap::{Snap, SnapReader, SnapWriter};
        let (_, sanitizer) = fitted();
        let sanitizer = sanitizer.with_outlier_margin(9.5);
        let mut w = SnapWriter::new();
        sanitizer.snap(&mut w);
        let bytes = w.into_bytes();
        let restored = Sanitizer::unsnap(&mut SnapReader::new(&bytes)).expect("roundtrip");
        assert_eq!(restored, sanitizer);
        assert_eq!(restored.outlier_margin(), 9.5);
    }

    #[test]
    fn max_repair_override_tightens_the_policy() {
        let (dataset, sanitizer) = fitted();
        let sanitizer = sanitizer.with_max_repair(0);
        let mut window = dataset.rows()[0].features.clone();
        window[HpcEvent::BranchInstructions] = f64::NAN;
        assert!(matches!(
            sanitizer.sanitize(&window),
            SanitizeOutcome::Unusable { invalid: 1 }
        ));
    }
}
