//! Experiment presets — one per table/figure of the reference
//! evaluation.
//!
//! Every experiment takes an [`ExperimentConfig`]:
//! [`ExperimentConfig::paper`] runs the full 3,070-sample catalog with
//! the 16-window sampler (minutes, release build);
//! [`ExperimentConfig::fast`] shrinks the catalog for tests and smoke
//! runs (seconds). The `repro` binary in `hbmd-bench` prints each
//! experiment in the paper's row/series layout.
//!
//! | artifact | function |
//! |---|---|
//! | Table 1 / Fig 6 | [`census`] |
//! | Table 2 / Fig 8 | [`pca::table2`], [`pca::eigen_summary`] |
//! | Figs 9–12 | [`pca::scatter`] |
//! | Fig 13 | [`binary::accuracy_comparison`] |
//! | Figs 14–16 | [`hardware::comparison`] |
//! | Figs 17–18 | [`multiclass::accuracy_comparison`] |
//! | Fig 19 | [`multiclass::pca_assisted_comparison`] |
//! | ensemble extension | [`ensemble::comparison`] |
//! | ROC extension | [`roc::comparison`] |
//! | detection-latency extension | [`latency::windows_to_alarm`] |
//! | robustness extension | [`robustness::degradation_sweep`] |
//! | adversarial extension | [`adversarial::accuracy_under_attack`], [`adversarial::camouflage_sweep`] |

pub mod adversarial;
pub mod binary;
pub mod cache;
pub mod ensemble;
pub mod hardware;
pub mod latency;
pub mod multiclass;
pub mod pca;
pub mod robustness;
pub mod roc;

use hbmd_malware::{AppClass, SampleCatalog};
use hbmd_perf::{CollectorConfig, HpcDataset, PerfError};
use serde::{Deserialize, Serialize};

use cache::{CollectCache, Collection};
use std::sync::Arc;

/// Shared experiment parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Fraction of the paper catalog to generate (1.0 = all 3,070
    /// samples).
    pub catalog_fraction: f64,
    /// Catalog generation seed.
    pub catalog_seed: u64,
    /// Collection pipeline configuration.
    pub collector: CollectorConfig,
    /// Train/test split seed.
    pub split_seed: u64,
    /// Worker threads for the experiment layer's training/evaluation
    /// fan-out (1 = sequential). Results are byte-identical at any
    /// thread count — see [`hbmd_ml::par::par_map`] — so this is a
    /// throughput knob, never part of a cache key.
    pub threads: usize,
}

impl ExperimentConfig {
    /// The full reference setup: whole catalog, 16 windows of 20,000
    /// instructions on the Haswell model, 70/30 split.
    pub fn paper() -> ExperimentConfig {
        ExperimentConfig {
            catalog_fraction: 1.0,
            catalog_seed: 2018,
            collector: CollectorConfig::paper(),
            split_seed: 42,
            threads: hbmd_ml::par::default_threads(),
        }
    }

    /// A shrunk setup for tests and smoke runs.
    pub fn fast() -> ExperimentConfig {
        ExperimentConfig {
            catalog_fraction: 0.03,
            catalog_seed: 2018,
            collector: CollectorConfig::fast(),
            split_seed: 42,
            threads: 1,
        }
    }

    /// Generate the catalog this configuration describes.
    pub fn catalog(&self) -> SampleCatalog {
        if (self.catalog_fraction - 1.0).abs() < 1e-12 {
            SampleCatalog::paper(self.catalog_seed)
        } else {
            SampleCatalog::scaled(self.catalog_fraction, self.catalog_seed)
        }
    }

    /// Run the collection pipeline over the catalog.
    ///
    /// Collection is deterministic, so results are memoized in the
    /// process-wide [`CollectCache`]: running several experiments
    /// against the same config (as the `repro all` harness does)
    /// collects once.
    ///
    /// # Panics
    ///
    /// Panics when the pipeline degrades past its failure threshold;
    /// use [`ExperimentConfig::try_collect_with`] to handle that.
    pub fn collect(&self) -> HpcDataset {
        self.try_collect_with(CollectCache::global())
            .expect("collection failed")
            .dataset
            .clone()
    }

    /// Run (or recall) the collection through an explicit cache,
    /// surfacing the [`CollectionReport`](hbmd_perf::CollectionReport)
    /// alongside the dataset.
    ///
    /// # Errors
    ///
    /// Propagates collector-configuration errors and
    /// [`PerfError::DegradedCollection`].
    pub fn try_collect_with(&self, cache: &CollectCache) -> Result<Arc<Collection>, PerfError> {
        cache.collect(self)
    }
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig::paper()
    }
}

/// One row of the Table 1 / Figure 6 census.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CensusRow {
    /// Application class.
    pub class: AppClass,
    /// Samples in the catalog.
    pub samples: usize,
    /// Share of the catalog.
    pub share: f64,
    /// Rows contributed to the collected dataset.
    pub dataset_rows: usize,
}

/// Table 1 and Figure 6: the sample census and class distribution.
pub fn census(config: &ExperimentConfig) -> Vec<CensusRow> {
    census_with(CollectCache::global(), config)
}

/// [`census`] against an explicit [`CollectCache`].
///
/// # Panics
///
/// Panics when the collection pipeline degrades past its failure
/// threshold.
pub fn census_with(cache: &CollectCache, config: &ExperimentConfig) -> Vec<CensusRow> {
    let catalog = config.catalog();
    let collection = cache.collect(config).expect("collection failed");
    let counts = collection.dataset.class_counts();
    catalog
        .census()
        .into_iter()
        .map(|(class, samples, share)| CensusRow {
            class,
            samples,
            share,
            dataset_rows: counts[class.index()],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_config_collects_quickly() {
        let config = ExperimentConfig::fast();
        let dataset = config.collect();
        assert!(!dataset.is_empty());
        assert_eq!(
            dataset.len(),
            config.catalog().len() * config.collector.sampler.windows_per_sample
        );
    }

    #[test]
    fn census_covers_every_class() {
        let rows = census(&ExperimentConfig::fast());
        assert_eq!(rows.len(), AppClass::COUNT);
        let share: f64 = rows.iter().map(|r| r.share).sum();
        assert!((share - 1.0).abs() < 1e-9);
        assert!(rows.iter().all(|r| r.dataset_rows > 0));
    }

    #[test]
    fn paper_config_names_the_full_catalog() {
        let config = ExperimentConfig::paper();
        assert_eq!(config.catalog().len(), 3_070);
    }
}
