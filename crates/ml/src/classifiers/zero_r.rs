use crate::classifier::Classifier;
use crate::data::{Dataset, MlError};

/// WEKA `ZeroR`: always predicts the training majority class.
///
/// The floor every other classifier must beat; also the default rule
/// inside [`JRip`](crate::JRip) and the fallback for degenerate leaves.
///
/// # Examples
///
/// ```
/// use hbmd_ml::{Classifier, Dataset, ZeroR};
///
/// let mut data = Dataset::new(vec!["f".into()], vec!["a".into(), "b".into()])?;
/// data.push(vec![1.0], 1)?;
/// data.push(vec![2.0], 1)?;
/// data.push(vec![3.0], 0)?;
/// let mut zr = ZeroR::new();
/// zr.fit(&data)?;
/// assert_eq!(zr.predict(&[100.0]), 1);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ZeroR {
    majority: Option<usize>,
}

impl ZeroR {
    /// A new, untrained ZeroR.
    pub fn new() -> ZeroR {
        ZeroR::default()
    }

    /// The learned majority class, for the flat compiler in
    /// [`crate::compiled`].
    pub(crate) fn majority(&self) -> Option<usize> {
        self.majority
    }
}

impl Classifier for ZeroR {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        self.majority = Some(data.majority_class());
        Ok(())
    }

    fn predict(&self, _features: &[f64]) -> usize {
        self.majority.expect("ZeroR::predict called before fit")
    }

    fn name(&self) -> &str {
        "ZeroR"
    }
}

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for ZeroR {
    fn snap(&self, w: &mut SnapWriter) {
        self.majority.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ZeroR {
            majority: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_majority_everywhere() {
        let mut data = Dataset::new(vec!["f".into()], vec!["a".into(), "b".into(), "c".into()])
            .expect("schema");
        for _ in 0..3 {
            data.push(vec![0.0], 2).expect("row");
        }
        data.push(vec![9.0], 0).expect("row");
        let mut zr = ZeroR::new();
        zr.fit(&data).expect("fit");
        assert_eq!(zr.predict(&[0.0]), 2);
        assert_eq!(zr.predict(&[9.0]), 2);
        assert_eq!(zr.name(), "ZeroR");
    }

    #[test]
    fn empty_data_is_an_error() {
        let data = Dataset::new(vec!["f".into()], vec!["a".into(), "b".into()]).expect("schema");
        assert_eq!(ZeroR::new().fit(&data), Err(MlError::EmptyDataset));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let _ = ZeroR::new().predict(&[1.0]);
    }

    #[test]
    fn refit_replaces_model() {
        let mut a = Dataset::new(vec!["f".into()], vec!["x".into(), "y".into()]).expect("schema");
        a.push(vec![0.0], 0).expect("row");
        let mut zr = ZeroR::new();
        zr.fit(&a).expect("fit");
        assert_eq!(zr.predict(&[0.0]), 0);
        let mut c = Dataset::new(vec!["f".into()], vec!["x".into(), "y".into()]).expect("schema");
        c.push(vec![0.0], 1).expect("row");
        zr.fit(&c).expect("refit");
        assert_eq!(zr.predict(&[0.0]), 1);
    }
}
