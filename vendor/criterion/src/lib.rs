//! An offline subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking API: enough for `criterion_group!`/`criterion_main!`
//! benches with groups, throughput annotation, and parameterised IDs.
//!
//! Timing is a simple warmup + sampled-mean loop printed to stdout —
//! adequate for relative comparisons in this workspace, with none of
//! real criterion's statistics. Swap the path dependency for crates.io
//! `criterion` to get the full harness; the bench sources compile
//! unchanged.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            sample_size: 10,
            throughput: None,
        };
        group.bench_function(id, &mut f);
        self
    }
}

/// Units processed per iteration, for reporting rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A named benchmark with a parameter rendered into the label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as real criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Time `f` under the label `id`.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    /// Time `f` with an input value, criterion-style.
    pub fn bench_with_input<I: Display, T, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    /// Finish the group (prints nothing extra; parity with criterion).
    pub fn finish(self) {}

    fn report(&self, label: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("  {label}: no samples");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let mut line = format!("  {label}: mean {mean:?} over {} samples", samples.len());
        if let Some(throughput) = self.throughput {
            let per_s = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
            match throughput {
                Throughput::Elements(n) => {
                    line.push_str(&format!(" ({:.0} elem/s)", per_s(n)));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(" ({:.0} B/s)", per_s(n)));
                }
            }
        }
        println!("{line}");
    }
}

/// Runs the closure under timing.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`: one warmup call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_without_panicking() {
        benches();
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("train", 128).to_string(), "train/128");
    }
}
