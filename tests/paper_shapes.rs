//! The paper's headline claims, asserted as shapes (who wins, in what
//! direction) at test scale. EXPERIMENTS.md records the full-scale
//! numbers.

use hbmd::core::experiments::{binary, hardware, multiclass, pca, ExperimentConfig};
use hbmd::core::ClassifierKind;
use hbmd::fpga::SynthConfig;
use hbmd::malware::AppClass;

fn config() -> ExperimentConfig {
    ExperimentConfig::fast()
}

#[test]
fn figure_13_reduction_hurts_little() {
    let rows = binary::accuracy_comparison(&config()).expect("fig13");
    // Every classifier usefully detects with 8 features...
    for row in &rows {
        assert!(
            row.accuracy_top8 > 0.6,
            "{}: {}",
            row.scheme,
            row.accuracy_top8
        );
    }
    // ...and the average 8->4 cost is a dip, not a collapse.
    let mean_cost: f64 = rows.iter().map(|r| r.reduction_cost()).sum::<f64>() / rows.len() as f64;
    assert!(mean_cost < 0.15, "mean 8->4 cost {mean_cost}");
}

#[test]
fn figures_14_to_16_hardware_story() {
    let rows = hardware::comparison(&config(), &SynthConfig::default()).expect("hw");
    let get = |kind: ClassifierKind| rows.iter().find(|r| r.scheme == kind).expect("row");

    // Figure 14: the MLP is the area hog.
    let mlp_area = get(ClassifierKind::Mlp).top8.report.area_units();
    for light in [
        ClassifierKind::OneR,
        ClassifierKind::JRip,
        ClassifierKind::J48,
    ] {
        assert!(get(light).top8.report.area_units() < mlp_area);
    }

    // Figure 15: rule learners answer in a couple of cycles.
    assert!(get(ClassifierKind::OneR).top8.report.latency_cycles <= 4);
    assert!(
        get(ClassifierKind::Mlp).top8.report.latency_cycles
            > get(ClassifierKind::OneR).top8.report.latency_cycles
    );

    // Figure 16: a comparator-only scheme holds the accuracy/area
    // crown (JRip/OneR in the paper; at test scale the pruned trees
    // can be equally tiny), and every multiplier-based model loses to
    // the best rule learner.
    let crown = rows
        .iter()
        .max_by(|a, b| {
            a.top8
                .accuracy_per_area()
                .partial_cmp(&b.top8.accuracy_per_area())
                .expect("finite")
        })
        .expect("rows")
        .scheme;
    let comparator_only = [
        ClassifierKind::OneR,
        ClassifierKind::JRip,
        ClassifierKind::J48,
        ClassifierKind::RepTree,
    ];
    assert!(
        comparator_only.contains(&crown),
        "accuracy/area crown went to {crown}"
    );
    let best_rule = comparator_only[..2]
        .iter()
        .map(|&k| get(k).top8.accuracy_per_area())
        .fold(0.0, f64::max);
    for heavy in [
        ClassifierKind::Logistic,
        ClassifierKind::Svm,
        ClassifierKind::NaiveBayes,
        ClassifierKind::Mlp,
    ] {
        assert!(
            best_rule > get(heavy).top8.accuracy_per_area(),
            "{heavy} beat the rule learners on accuracy/area"
        );
    }
}

#[test]
fn figure_17_mlp_leads_multiclass() {
    let rows = multiclass::accuracy_comparison(&config()).expect("fig17");
    let accuracy = |kind: ClassifierKind| {
        rows.iter()
            .find(|r| r.scheme == kind)
            .expect("row")
            .average_accuracy
    };
    let mlp = accuracy(ClassifierKind::Mlp);
    assert!(
        mlp + 0.05 >= accuracy(ClassifierKind::Logistic),
        "MLP ({mlp}) should be at or near the top vs MLR"
    );
    assert!(
        mlp + 0.05 >= accuracy(ClassifierKind::Svm),
        "MLP ({mlp}) should be at or near the top vs SVM"
    );
}

#[test]
fn figure_19_custom_features_do_not_lose() {
    let result = multiclass::pca_assisted_comparison(&config()).expect("fig19");
    assert!(
        result.improvement() >= 0.0,
        "custom-8 {} vs generic-8 {}",
        result.assisted_accuracy,
        result.plain_accuracy
    );
}

#[test]
fn table_2_shape_common_plus_custom() {
    let table = pca::table2(&config()).expect("table2");
    assert_eq!(table.common.len(), 4, "4 common features");
    assert_eq!(table.per_class.len(), 5, "5 malware classes");
    for (class, features) in &table.per_class {
        assert_eq!(features.len(), 8, "{class}: custom 8");
    }
}

#[test]
fn figures_9_to_12_scatters_show_structure() {
    for class in [
        AppClass::Rootkit,
        AppClass::Trojan,
        AppClass::Virus,
        AppClass::Worm,
    ] {
        let points = pca::scatter(&config(), class).expect("scatter");
        let malware = points.iter().filter(|p| p.malware).count();
        let benign = points.len() - malware;
        assert!(
            malware > 0 && benign > 0,
            "{class}: both populations plotted"
        );
    }
}
