use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::classifier::Classifier;
use crate::data::{Dataset, MlError};

/// WEKA `AdaBoostM1`: adaptive boosting by resampling.
///
/// Each round trains a fresh clone of the base learner on a sample
/// drawn proportionally to the current instance weights, then
/// up-weights the instances the round misclassified. Prediction is the
/// `ln((1-e)/e)`-weighted vote of the rounds. Training stops early when
/// a round's weighted error hits 0 (perfect) or ≥ 0.5 (no better than
/// chance).
///
/// # Examples
///
/// ```
/// use hbmd_ml::{AdaBoostM1, Classifier, Dataset, DecisionStump};
///
/// let mut data = Dataset::new(
///     vec!["x".into(), "y".into()],
///     vec!["a".into(), "b".into()],
/// )?;
/// for i in 0..64 {
///     let x = (i % 8) as f64;
///     let y = (i / 8) as f64;
///     // A conjunction no single stump can express.
///     data.push(vec![x, y], usize::from(x >= 4.0 && y >= 4.0))?;
/// }
/// let mut booster = AdaBoostM1::new(DecisionStump::new(), 20);
/// booster.fit(&data)?;
/// assert_eq!(booster.predict(&[7.0, 7.0]), 1);
/// assert_eq!(booster.predict(&[7.0, 1.0]), 0);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdaBoostM1<B: Classifier + Clone> {
    prototype: B,
    iterations: usize,
    seed: u64,
    members: Vec<(B, f64)>,
    num_classes: usize,
}

impl<B: Classifier + Clone> AdaBoostM1<B> {
    /// A booster over clones of `prototype`, running at most
    /// `iterations` rounds.
    ///
    /// # Panics
    ///
    /// Panics when `iterations` is zero.
    pub fn new(prototype: B, iterations: usize) -> AdaBoostM1<B> {
        assert!(iterations > 0, "iterations must be non-zero");
        AdaBoostM1 {
            prototype,
            iterations,
            seed: 1,
            members: Vec::new(),
            num_classes: 0,
        }
    }

    /// Deterministic resampling seed.
    pub fn with_seed(mut self, seed: u64) -> AdaBoostM1<B> {
        self.seed = seed;
        self
    }

    /// Number of committee members after fitting (0 before).
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// The members' vote weights, in training order.
    pub fn member_weights(&self) -> Vec<f64> {
        self.members.iter().map(|&(_, w)| w).collect()
    }

    /// The weighted committee plus class count, for the flat compiler
    /// in [`crate::compiled`].
    pub(crate) fn parts(&self) -> (&[(B, f64)], usize) {
        (&self.members, self.num_classes)
    }
}

impl<B: Classifier + Clone> Classifier for AdaBoostM1<B> {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        data.check_trainable()?;
        let n = data.len();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut weights = vec![1.0f64 / n as f64; n];
        self.members.clear();
        self.num_classes = data.num_classes();

        for _round in 0..self.iterations {
            // Resample by weight.
            let index = WeightedIndex::new(&weights)
                .map_err(|_| MlError::Config("degenerate boosting weights".to_owned()))?;
            let sample: Vec<usize> = (0..n).map(|_| index.sample(&mut rng)).collect();
            let round_data = data.subset(&sample);
            if round_data.distinct_classes() < 2 {
                break; // the weight mass collapsed onto one class
            }
            let mut member = self.prototype.clone();
            member.fit(&round_data)?;

            // Weighted training error of this member.
            let mut error = 0.0f64;
            let predictions: Vec<usize> = data.rows().iter().map(|r| member.predict(r)).collect();
            for (i, (&prediction, &label)) in predictions.iter().zip(data.labels()).enumerate() {
                if prediction != label {
                    error += weights[i];
                }
            }
            if error >= 0.5 {
                break; // no better than chance: stop boosting
            }
            let raw_error = error;
            let error = error.max(1e-10);
            let alpha = ((1.0 - error) / error).ln();
            self.members.push((member, alpha));
            if raw_error <= 0.0 {
                break; // perfect member: nothing left to boost
            }

            // Re-weight: misclassified instances gain, the rest decay.
            for (i, (&prediction, &label)) in predictions.iter().zip(data.labels()).enumerate() {
                if prediction != label {
                    weights[i] *= (1.0 - error) / error;
                }
            }
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
        }

        if self.members.is_empty() {
            // Even one chance-level round is a usable (if weak) model:
            // fall back to a single unweighted member.
            let mut member = self.prototype.clone();
            member.fit(data)?;
            self.members.push((member, 1.0));
        }
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> usize {
        assert!(
            !self.members.is_empty(),
            "AdaBoostM1::predict called before fit"
        );
        let mut votes = vec![0.0f64; self.num_classes.max(2)];
        for (member, alpha) in &self.members {
            let prediction = member.predict(features);
            if prediction < votes.len() {
                votes[prediction] += alpha;
            }
        }
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &str {
        "AdaBoostM1"
    }
}

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl<B: Classifier + Clone + Snap> Snap for AdaBoostM1<B> {
    fn snap(&self, w: &mut SnapWriter) {
        self.prototype.snap(w);
        self.iterations.snap(w);
        self.seed.snap(w);
        self.members.snap(w);
        self.num_classes.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let prototype = B::unsnap(r)?;
        let iterations: usize = Snap::unsnap(r)?;
        if iterations == 0 {
            return Err(SnapError::Invalid(
                "AdaBoostM1 iterations must be non-zero".to_owned(),
            ));
        }
        Ok(AdaBoostM1 {
            prototype,
            iterations,
            seed: Snap::unsnap(r)?,
            members: Snap::unsnap(r)?,
            num_classes: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifiers::stump::DecisionStump;
    use crate::eval::Evaluation;

    fn staircase() -> Dataset {
        // Three alternating bands: a stump gets ~2/3, boosting should
        // push past it.
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        for i in 0..120 {
            let label = (i / 40) % 2; // bands 0 | 1 | 0
            d.push(vec![i as f64], label).expect("row");
        }
        d
    }

    #[test]
    fn boosting_beats_its_base_learner() {
        let data = staircase();
        let mut stump = DecisionStump::new();
        stump.fit(&data).expect("fit");
        let stump_accuracy = Evaluation::of(&stump, &data).accuracy();

        let mut booster = AdaBoostM1::new(DecisionStump::new(), 25);
        booster.fit(&data).expect("fit");
        let boosted_accuracy = Evaluation::of(&booster, &data).accuracy();
        assert!(
            boosted_accuracy > stump_accuracy,
            "boosted {boosted_accuracy} vs stump {stump_accuracy}"
        );
        assert!(booster.num_members() > 1);
    }

    #[test]
    fn perfect_base_learner_stops_after_one_round() {
        // Two well-separated point masses: any bootstrap that sees both
        // classes yields a perfect stump, so boosting stops immediately.
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        for _ in 0..20 {
            d.push(vec![0.0], 0).expect("row");
            d.push(vec![100.0], 1).expect("row");
        }
        let mut booster = AdaBoostM1::new(DecisionStump::new(), 50);
        booster.fit(&d).expect("fit");
        assert_eq!(
            booster.num_members(),
            1,
            "a perfect stump needs no boosting"
        );
    }

    #[test]
    fn member_weights_are_positive() {
        let mut booster = AdaBoostM1::new(DecisionStump::new(), 15);
        booster.fit(&staircase()).expect("fit");
        assert!(booster.member_weights().iter().all(|&w| w > 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let data = staircase();
        let run = |seed| {
            let mut booster = AdaBoostM1::new(DecisionStump::new(), 10).with_seed(seed);
            booster.fit(&data).expect("fit");
            (0..120)
                .map(|i| booster.predict(&[i as f64]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "iterations")]
    fn zero_iterations_panics() {
        let _ = AdaBoostM1::new(DecisionStump::new(), 0);
    }

    #[test]
    fn rejects_untrainable() {
        let d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        assert!(AdaBoostM1::new(DecisionStump::new(), 5).fit(&d).is_err());
    }
}
