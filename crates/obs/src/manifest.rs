//! Run manifests: the identity card emitted next to every experiment
//! output, so any result is attributable to an exact configuration.
//!
//! A [`RunManifest`] captures *what* ran — tool, version, catalog
//! scale, seeds, thread counts, a digest of the full configuration,
//! and the crate versions involved. Everything in the manifest body is
//! deterministic for a given invocation; the only time-dependent data
//! lives in the segregated [`WallClock`] section, so byte-comparison
//! harnesses can mask exactly one sub-object.

use std::time::{SystemTime, UNIX_EPOCH};

use crate::json;

/// 64-bit FNV-1a hash — the configuration digest primitive.
///
/// Stable across platforms and releases (the constants are fixed by the
/// FNV specification), so a digest in an old manifest can be checked
/// against a reconstructed configuration.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Wall-clock facts about a run — segregated from the deterministic
/// manifest body so output-comparison tests can mask them wholesale.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WallClock {
    /// Milliseconds since the Unix epoch at run start.
    pub started_unix_ms: u128,
    /// End-to-end run duration in milliseconds.
    pub total_ms: u128,
}

impl WallClock {
    /// A wall clock stamped with the current time.
    pub fn now() -> WallClock {
        WallClock {
            started_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0),
            total_ms: 0,
        }
    }
}

/// The identity card of one experiment run.
///
/// # Examples
///
/// ```
/// use hbmd_obs::manifest::{fnv1a_64, RunManifest};
///
/// let mut manifest = RunManifest::new("repro", "0.1.0");
/// manifest.scale = 0.1;
/// manifest.threads = 8;
/// manifest.seeds.push(("catalog".to_owned(), 2018));
/// manifest.config_digest = fnv1a_64(b"CollectorConfig { .. }");
/// let json = manifest.to_json();
/// assert!(json.contains("\"tool\": \"repro\""));
/// assert!(json.contains("\"wall\""));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Emitting binary or harness name.
    pub tool: String,
    /// Tool version (usually `CARGO_PKG_VERSION`).
    pub version: String,
    /// Catalog scale of the run (1.0 = the paper's full catalog).
    pub scale: f64,
    /// Active counter backend of the collection pipeline (`"sim"` for
    /// the deterministic simulator, `"perf"` for live Linux counters).
    pub source: String,
    /// Experiment-layer worker threads.
    pub threads: usize,
    /// Collection-pipeline worker threads.
    pub collector_threads: usize,
    /// Named seeds the run consumed (catalog, split, fault...).
    pub seeds: Vec<(String, u64)>,
    /// FNV-1a digest of the full serialized configuration.
    pub config_digest: u64,
    /// Crate names and versions baked into the binary.
    pub crates: Vec<(String, String)>,
    /// Experiments executed, in run order.
    pub experiments: Vec<String>,
    /// Time-dependent facts, segregated for maskability.
    pub wall: WallClock,
}

impl RunManifest {
    /// An empty manifest for `tool` at `version`.
    pub fn new(tool: impl Into<String>, version: impl Into<String>) -> RunManifest {
        RunManifest {
            tool: tool.into(),
            version: version.into(),
            scale: 1.0,
            source: "sim".to_owned(),
            threads: 1,
            collector_threads: 1,
            seeds: Vec::new(),
            config_digest: 0,
            crates: Vec::new(),
            experiments: Vec::new(),
            wall: WallClock::now(),
        }
    }

    /// Render as a JSON object. The deterministic body comes first;
    /// the only time-dependent values sit under the final `"wall"` key.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"tool\": {},\n", json::string(&self.tool)));
        out.push_str(&format!(
            "  \"version\": {},\n",
            json::string(&self.version)
        ));
        out.push_str(&format!("  \"scale\": {},\n", json::float(self.scale)));
        out.push_str(&format!("  \"source\": {},\n", json::string(&self.source)));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"collector_threads\": {},\n",
            self.collector_threads
        ));
        out.push_str("  \"seeds\": {");
        for (i, (name, seed)) in self.seeds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json::string(name), seed));
        }
        out.push_str("},\n");
        out.push_str(&format!("  \"config_digest\": {},\n", self.config_digest));
        out.push_str("  \"crates\": {");
        for (i, (name, version)) in self.crates.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{}: {}",
                json::string(name),
                json::string(version)
            ));
        }
        out.push_str("},\n");
        out.push_str("  \"experiments\": [");
        for (i, name) in self.experiments.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json::string(name));
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"wall\": {{\"started_unix_ms\": {}, \"total_ms\": {}}}\n",
            self.wall.started_unix_ms, self.wall.total_ms
        ));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_renders_balanced_json_with_segregated_wall() {
        let mut manifest = RunManifest::new("repro", "0.1.0");
        manifest.scale = 0.05;
        manifest.threads = 4;
        manifest.collector_threads = 8;
        manifest.seeds = vec![("catalog".to_owned(), 2018), ("split".to_owned(), 42)];
        manifest.crates = vec![("hbmd-obs".to_owned(), "0.1.0".to_owned())];
        manifest.experiments = vec!["table1".to_owned(), "fig13".to_owned()];
        manifest.config_digest = fnv1a_64(b"cfg");
        let json = manifest.to_json();
        assert!(json.contains("\"source\": \"sim\""));
        assert!(json.contains("\"seeds\": {\"catalog\": 2018, \"split\": 42}"));
        assert!(json.contains("\"experiments\": [\"table1\", \"fig13\"]"));
        assert!(json.contains("\"wall\": {\"started_unix_ms\": "));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        // Everything above the wall section is reproducible: two
        // manifests built the same way differ only in `wall`.
        let deterministic_part = json.split("\"wall\"").next().expect("prefix");
        assert!(!deterministic_part.contains("unix"));
    }
}
