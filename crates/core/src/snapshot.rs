//! Crash-safe checkpointing of a live online monitor — and, for fleet
//! deployments, multiplexed snapshots of thousands of streams in one
//! file (see the *Multiplexed fleet snapshots* section below).
//!
//! A snapshot freezes everything the serve pipeline needs to resume
//! after a crash without retraining: the trained [`Detector`] (model,
//! feature projection, evaluation, sanitizer), the live
//! [`OnlineDetector`] state (vote-window ring, hysteresis counters,
//! latched alarm), and the timeline cursor (windows already observed).
//!
//! # File layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"HBMDSNAP"
//! 8       4     format version (little-endian u32, currently 1)
//! 12      8     config digest (little-endian u64, FNV-1a of the run config)
//! 20      8     payload length (little-endian u64)
//! 28      n     payload ([`Snap`]-encoded monitor + cursor)
//! 28+n    8     FNV-1a 64 checksum of bytes [8 .. 28+n]
//! ```
//!
//! The checksum covers the version, digest, length, and payload (not
//! the magic), so any single-byte corruption after the magic is caught
//! before a single payload byte is decoded; corrupting the magic is
//! caught by the magic check itself. Writes go through a temporary
//! file in the same directory followed by an atomic rename, so readers
//! never observe a half-written snapshot — a crash mid-write leaves
//! the previous snapshot intact.
//!
//! Loading refuses, with a typed [`SnapshotError`], anything that is
//! corrupt, from a different format version, or recorded under a
//! different run-config digest. Callers are expected to treat every
//! refusal the same way: discard the snapshot and retrain.
//!
//! # Examples
//!
//! ```no_run
//! use hbmd_core::snapshot::{self, MonitorSnapshot};
//!
//! # fn demo(monitor: hbmd_core::OnlineDetector) -> Result<(), hbmd_core::CoreError> {
//! let snap = MonitorSnapshot::new(monitor, 128, 0xDEAD_BEEF);
//! snapshot::save(&snap, "monitor.snapshot".as_ref())?;
//! match snapshot::load("monitor.snapshot".as_ref(), 0xDEAD_BEEF) {
//!     Ok(snap) => println!("resuming at window {}", snap.cursor),
//!     Err(refusal) => println!("retraining: {refusal}"),
//! }
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::io;
use std::path::Path;

use hbmd_ml::snap::{Snap, SnapError, SnapReader, SnapWriter};
use hbmd_obs::manifest::fnv1a_64;

use crate::online::OnlineDetector;

/// Current snapshot format version; bump on any wire-format change.
pub const SNAPSHOT_VERSION: u32 = 1;

/// File magic identifying an hbmd monitor snapshot.
pub const MAGIC: &[u8; 8] = b"HBMDSNAP";

const HEADER_LEN: usize = 8 + 4 + 8 + 8;
const CHECKSUM_LEN: usize = 8;

/// Why a snapshot was refused (or could not be written).
///
/// Every variant except [`SnapshotError::Io`] on save means the same
/// thing operationally: the snapshot is unusable, fall back to
/// retraining.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Reading or writing the file failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The file is shorter than its header/payload length claims.
    Truncated,
    /// The FNV-1a checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum recomputed over the file contents.
        actual: u64,
    },
    /// The snapshot was recorded under a different run configuration.
    ConfigMismatch {
        /// Digest recorded in the snapshot.
        snapshot: u64,
        /// Digest of the currently running configuration.
        current: u64,
    },
    /// The checksummed payload failed structural decoding. (Reachable
    /// only across code versions that share [`SNAPSHOT_VERSION`] but
    /// disagree on the schema — the checksum catches corruption first.)
    Decode(SnapError),
    /// The payload decoded but left unconsumed bytes.
    TrailingBytes {
        /// Number of undecoded payload bytes.
        extra: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            SnapshotError::BadMagic => write!(f, "not a monitor snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "snapshot format version {found} unsupported (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot file truncated"),
            SnapshotError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "snapshot checksum mismatch (recorded {expected:#018x}, computed {actual:#018x})"
                )
            }
            SnapshotError::ConfigMismatch { snapshot, current } => {
                write!(
                    f,
                    "snapshot belongs to config {snapshot:#018x}, not running config {current:#018x}"
                )
            }
            SnapshotError::Decode(e) => write!(f, "snapshot payload undecodable: {e}"),
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "snapshot payload has {extra} trailing bytes")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// Everything needed to resume a monitor exactly where it stopped.
#[derive(Debug, Clone)]
pub struct MonitorSnapshot {
    /// The live monitor: trained detector plus vote/hysteresis state.
    pub monitor: OnlineDetector,
    /// Timeline windows already observed (the resume point).
    pub cursor: u64,
    /// FNV-1a digest of the run configuration the monitor was trained
    /// under; [`load`] refuses snapshots whose digest differs.
    pub config_digest: u64,
}

impl MonitorSnapshot {
    /// Bundle a monitor with its resume cursor and config digest.
    pub fn new(monitor: OnlineDetector, cursor: u64, config_digest: u64) -> MonitorSnapshot {
        MonitorSnapshot {
            monitor,
            cursor,
            config_digest,
        }
    }
}

/// Encode a snapshot to the full framed file image (header, payload,
/// checksum).
pub fn encode(snapshot: &MonitorSnapshot) -> Vec<u8> {
    let mut payload = SnapWriter::new();
    snapshot.monitor.snap(&mut payload);
    payload.put_u64(snapshot.cursor);
    let payload = payload.into_bytes();

    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&snapshot.config_digest.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let checksum = fnv1a_64(&bytes[MAGIC.len()..]);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Decode a framed snapshot image, verifying magic, version, length,
/// checksum, and config digest — in that order — before touching the
/// payload.
///
/// # Errors
///
/// Returns a [`SnapshotError`] describing the first check that failed;
/// the payload is never partially applied.
pub fn decode(bytes: &[u8], expected_digest: u64) -> Result<MonitorSnapshot, SnapshotError> {
    if bytes.len() < MAGIC.len() {
        return Err(SnapshotError::Truncated);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(SnapshotError::Truncated);
    }
    let field = |offset: usize, len: usize| &bytes[offset..offset + len];
    let version = u32::from_le_bytes(field(8, 4).try_into().expect("4 bytes"));
    let config_digest = u64::from_le_bytes(field(12, 8).try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(field(20, 8).try_into().expect("8 bytes"));
    let Ok(payload_len) = usize::try_from(payload_len) else {
        return Err(SnapshotError::Truncated);
    };
    let expected_total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(CHECKSUM_LEN));
    if expected_total != Some(bytes.len()) {
        return Err(SnapshotError::Truncated);
    }
    let recorded = u64::from_le_bytes(
        bytes[bytes.len() - CHECKSUM_LEN..]
            .try_into()
            .expect("8 bytes"),
    );
    let actual = fnv1a_64(&bytes[MAGIC.len()..bytes.len() - CHECKSUM_LEN]);
    if recorded != actual {
        return Err(SnapshotError::ChecksumMismatch {
            expected: recorded,
            actual,
        });
    }
    // Only after the checksum proves integrity do version/digest
    // mismatches mean what they say (rather than flipped bits).
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    if config_digest != expected_digest {
        return Err(SnapshotError::ConfigMismatch {
            snapshot: config_digest,
            current: expected_digest,
        });
    }
    let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
    let mut reader = SnapReader::new(payload);
    let monitor = OnlineDetector::unsnap(&mut reader).map_err(SnapshotError::Decode)?;
    let cursor = reader.get_u64().map_err(SnapshotError::Decode)?;
    if !reader.is_done() {
        return Err(SnapshotError::TrailingBytes {
            extra: reader.remaining(),
        });
    }
    Ok(MonitorSnapshot {
        monitor,
        cursor,
        config_digest,
    })
}

/// Write a snapshot crash-safely: encode to `<path>.tmp` in the same
/// directory, fsync, then atomically rename over `path`.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] when the filesystem refuses; the
/// previous snapshot at `path` (if any) is left untouched on failure.
pub fn save(snapshot: &MonitorSnapshot, path: &Path) -> Result<(), SnapshotError> {
    write_atomic(&encode(snapshot), path)
}

/// Write `bytes` crash-safely: `<path>.tmp` in the same directory,
/// fsync, then an atomic rename over `path`.
fn write_atomic(bytes: &[u8], path: &Path) -> Result<(), SnapshotError> {
    let tmp = tmp_path(path);
    {
        let mut file = std::fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(SnapshotError::Io(e));
    }
    Ok(())
}

/// Read and [`decode`] the snapshot at `path`.
///
/// # Errors
///
/// Returns a [`SnapshotError`] when the file is unreadable, corrupt,
/// version-mismatched, or recorded under a different config digest.
pub fn load(path: &Path, expected_digest: u64) -> Result<MonitorSnapshot, SnapshotError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes, expected_digest)
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

// ---------------------------------------------------------------------------
// Multiplexed fleet snapshots
// ---------------------------------------------------------------------------
//
// One versioned file holding the shared detector plus every stream's
// cursor and per-stream state, each in its own checksummed section:
//
// ```text
// offset  size  field
// 0       8     magic  b"HBMDFLTS"
// 8       4     format version (LE u32, currently 1)
// 12      8     config digest (LE u64)
// 20      4     shard count (LE u32)
// 24      8     stream-section count (LE u64)
// 32      8     FNV-1a 64 checksum of bytes [8 .. 32]
// 40      —     detector section: LE u64 length, payload, FNV-1a 64 of payload
// …       —     stream sections, same frame; payload = stream id,
//               cursor, StreamState, StreamHealth ([`Snap`]-encoded)
// ```
//
// The failure semantics differ deliberately from the single-monitor
// codec: the header and the detector section are load-bearing for the
// whole fleet, so corruption there refuses the file. A corrupt
// *stream* section only loses that stream — [`decode_fleet`] skips it,
// counts it in [`FleetRestore::lost_sections`], and the caller starts
// the affected stream pristine while every other stream resumes.

/// Current fleet snapshot format version; bump on wire-format change.
pub const FLEET_SNAPSHOT_VERSION: u32 = 1;

/// File magic identifying an hbmd fleet snapshot.
pub const FLEET_MAGIC: &[u8; 8] = b"HBMDFLTS";

const FLEET_HEADER_LEN: usize = 8 + 4 + 8 + 4 + 8 + 8;

use crate::detector::Detector;
use crate::fleet::StreamHealth;
use crate::online::StreamState;

/// One stream's slice of a fleet snapshot: identity, resume cursor,
/// vote/hysteresis state, and health standing.
#[derive(Debug, Clone)]
pub struct StreamSection {
    /// Stream (endpoint) id.
    pub stream: u64,
    /// Timeline windows of this stream already observed.
    pub cursor: u64,
    /// The stream's vote-window/hysteresis state.
    pub state: StreamState,
    /// The stream's quarantine state machine.
    pub health: StreamHealth,
}

/// What [`decode_fleet`] recovered: everything the file held, minus
/// any stream sections that were individually corrupt.
#[derive(Debug)]
pub struct FleetRestore {
    /// Shard count recorded at save time.
    pub shards: u32,
    /// Config digest recorded at save time (already verified).
    pub config_digest: u64,
    /// The shared trained detector.
    pub detector: Detector,
    /// Stream sections that decoded cleanly, in file order.
    pub streams: Vec<StreamSection>,
    /// Stream sections dropped to per-stream fallback (checksum or
    /// decode failure). `streams.len() + lost_sections` equals the
    /// section count the header declared.
    pub lost_sections: usize,
}

fn frame_section(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a_64(payload).to_le_bytes());
}

/// Encode a fleet snapshot to its full framed file image.
pub fn encode_fleet(
    detector: &Detector,
    shards: u32,
    config_digest: u64,
    sections: &[StreamSection],
) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(FLEET_MAGIC);
    bytes.extend_from_slice(&FLEET_SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&config_digest.to_le_bytes());
    bytes.extend_from_slice(&shards.to_le_bytes());
    bytes.extend_from_slice(&(sections.len() as u64).to_le_bytes());
    let header_checksum = fnv1a_64(&bytes[FLEET_MAGIC.len()..]);
    bytes.extend_from_slice(&header_checksum.to_le_bytes());

    let mut payload = SnapWriter::new();
    detector.snap(&mut payload);
    frame_section(&mut bytes, &payload.into_bytes());

    for section in sections {
        let mut payload = SnapWriter::new();
        payload.put_u64(section.stream);
        payload.put_u64(section.cursor);
        section.state.snap(&mut payload);
        section.health.snap(&mut payload);
        frame_section(&mut bytes, &payload.into_bytes());
    }
    bytes
}

/// A framed section sliced out of `bytes` at `offset`, or `None` when
/// the frame does not fit (a corrupt length field counts as not
/// fitting — framing past it cannot be trusted).
struct Frame<'a> {
    payload: &'a [u8],
    recorded: u64,
    checksum_ok: bool,
    next_offset: usize,
}

fn read_frame(bytes: &[u8], offset: usize) -> Option<Frame<'_>> {
    let len_end = offset.checked_add(8)?;
    if len_end > bytes.len() {
        return None;
    }
    let len = u64::from_le_bytes(bytes[offset..len_end].try_into().expect("8 bytes"));
    let len = usize::try_from(len).ok()?;
    let payload_end = len_end.checked_add(len)?;
    let next_offset = payload_end.checked_add(8)?;
    if next_offset > bytes.len() {
        return None;
    }
    let payload = &bytes[len_end..payload_end];
    let recorded = u64::from_le_bytes(bytes[payload_end..next_offset].try_into().expect("8 bytes"));
    Some(Frame {
        payload,
        recorded,
        checksum_ok: recorded == fnv1a_64(payload),
        next_offset,
    })
}

fn decode_stream_section(payload: &[u8]) -> Result<StreamSection, SnapError> {
    let mut r = SnapReader::new(payload);
    let stream = r.get_u64()?;
    let cursor = r.get_u64()?;
    let state = StreamState::unsnap(&mut r)?;
    let health = StreamHealth::unsnap(&mut r)?;
    if !r.is_done() {
        return Err(SnapError::Invalid(format!(
            "stream section has {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(StreamSection {
        stream,
        cursor,
        state,
        health,
    })
}

/// Decode a fleet snapshot image with per-stream fallback.
///
/// Header and detector-section corruption refuse the whole file (the
/// fleet cannot serve without its model); a corrupt stream section
/// only drops that stream into [`FleetRestore::lost_sections`].
///
/// # Errors
///
/// Returns a [`SnapshotError`] when the header, detector section,
/// version, or config digest is unusable.
pub fn decode_fleet(bytes: &[u8], expected_digest: u64) -> Result<FleetRestore, SnapshotError> {
    if bytes.len() < FLEET_MAGIC.len() {
        return Err(SnapshotError::Truncated);
    }
    if &bytes[..FLEET_MAGIC.len()] != FLEET_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < FLEET_HEADER_LEN {
        return Err(SnapshotError::Truncated);
    }
    let field = |offset: usize, len: usize| &bytes[offset..offset + len];
    let recorded = u64::from_le_bytes(field(32, 8).try_into().expect("8 bytes"));
    let actual = fnv1a_64(&bytes[FLEET_MAGIC.len()..32]);
    if recorded != actual {
        return Err(SnapshotError::ChecksumMismatch {
            expected: recorded,
            actual,
        });
    }
    let version = u32::from_le_bytes(field(8, 4).try_into().expect("4 bytes"));
    if version != FLEET_SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let config_digest = u64::from_le_bytes(field(12, 8).try_into().expect("8 bytes"));
    if config_digest != expected_digest {
        return Err(SnapshotError::ConfigMismatch {
            snapshot: config_digest,
            current: expected_digest,
        });
    }
    let shards = u32::from_le_bytes(field(20, 4).try_into().expect("4 bytes"));
    let section_count = u64::from_le_bytes(field(24, 8).try_into().expect("8 bytes"));
    let Ok(section_count) = usize::try_from(section_count) else {
        return Err(SnapshotError::Truncated);
    };

    // The detector section is all-or-nothing: without the model there
    // is nothing to resume.
    let Some(frame) = read_frame(bytes, FLEET_HEADER_LEN) else {
        return Err(SnapshotError::Truncated);
    };
    if !frame.checksum_ok {
        return Err(SnapshotError::ChecksumMismatch {
            expected: frame.recorded,
            actual: fnv1a_64(frame.payload),
        });
    }
    let mut reader = SnapReader::new(frame.payload);
    let detector = Detector::unsnap(&mut reader).map_err(SnapshotError::Decode)?;
    if !reader.is_done() {
        return Err(SnapshotError::TrailingBytes {
            extra: reader.remaining(),
        });
    }

    let mut streams = Vec::with_capacity(section_count);
    let mut lost_sections = 0usize;
    let mut offset = frame.next_offset;
    let mut parsed = 0usize;
    while parsed < section_count {
        let Some(frame) = read_frame(bytes, offset) else {
            // A corrupt length field (or truncation) makes every
            // remaining frame boundary untrustworthy: those streams
            // fall back, everything already parsed survives.
            lost_sections += section_count - parsed;
            offset = bytes.len();
            break;
        };
        if frame.checksum_ok {
            match decode_stream_section(frame.payload) {
                Ok(section) => streams.push(section),
                Err(_) => lost_sections += 1,
            }
        } else {
            lost_sections += 1;
        }
        offset = frame.next_offset;
        parsed += 1;
    }
    if offset != bytes.len() {
        return Err(SnapshotError::TrailingBytes {
            extra: bytes.len() - offset,
        });
    }
    Ok(FleetRestore {
        shards,
        config_digest,
        detector,
        streams,
        lost_sections,
    })
}

/// Write a fleet snapshot crash-safely (tmp + fsync + atomic rename).
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] when the filesystem refuses; the
/// previous snapshot at `path` (if any) survives a failed write.
pub fn save_fleet(
    detector: &Detector,
    shards: u32,
    config_digest: u64,
    sections: &[StreamSection],
    path: &Path,
) -> Result<(), SnapshotError> {
    write_atomic(
        &encode_fleet(detector, shards, config_digest, sections),
        path,
    )
}

/// Read and [`decode_fleet`] the snapshot at `path`.
///
/// # Errors
///
/// Returns a [`SnapshotError`] when the file is unreadable or refused
/// wholesale; individually corrupt stream sections do **not** error —
/// see [`FleetRestore::lost_sections`].
pub fn load_fleet(path: &Path, expected_digest: u64) -> Result<FleetRestore, SnapshotError> {
    let bytes = std::fs::read(path)?;
    decode_fleet(&bytes, expected_digest)
}

/// The payload byte span of every *stream* section in a fleet image,
/// in file order — the corruption-targeting helper the chaos drill and
/// the isolation proptests use to hit exactly one section.
///
/// # Errors
///
/// Returns a [`SnapshotError`] when the image's framing cannot be
/// walked (bad magic, truncated header or frames).
pub fn fleet_stream_section_spans(
    bytes: &[u8],
) -> Result<Vec<std::ops::Range<usize>>, SnapshotError> {
    if bytes.len() < FLEET_HEADER_LEN || &bytes[..FLEET_MAGIC.len()] != FLEET_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let section_count = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    let Some(detector_frame) = read_frame(bytes, FLEET_HEADER_LEN) else {
        return Err(SnapshotError::Truncated);
    };
    let mut spans = Vec::new();
    let mut offset = detector_frame.next_offset;
    for _ in 0..section_count {
        let Some(frame) = read_frame(bytes, offset) else {
            return Err(SnapshotError::Truncated);
        };
        let payload_start = offset + 8;
        spans.push(payload_start..payload_start + frame.payload.len());
        offset = frame.next_offset;
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorBuilder;
    use crate::features::FeatureSet;
    use crate::suite::ClassifierKind;
    use hbmd_events::{FeatureVector, HpcEvent};
    use hbmd_malware::{AppClass, SampleId};
    use hbmd_perf::{DataRow, HpcDataset};

    fn features(level: f64) -> FeatureVector {
        FeatureVector::from_slice(&[level; HpcEvent::COUNT]).expect("full-width vector")
    }

    /// A tiny, perfectly separable dataset: benign rows sit at 1.0,
    /// malware rows at 100.0 on every feature.
    fn synthetic_dataset() -> HpcDataset {
        let mut rows = Vec::new();
        for i in 0..40 {
            let class = AppClass::ALL[i % AppClass::COUNT];
            let level = if class == AppClass::Benign {
                1.0
            } else {
                100.0
            };
            rows.push(DataRow {
                sample: SampleId(i as u32),
                class,
                features: features(level),
            });
        }
        HpcDataset::from_rows(rows)
    }

    fn trained_monitor() -> OnlineDetector {
        let dataset = synthetic_dataset();
        let detector = DetectorBuilder::new()
            .classifier(ClassifierKind::J48)
            .feature_set(FeatureSet::Full16)
            .train_binary(&dataset)
            .expect("train on separable data");
        OnlineDetector::builder(detector)
            .window(5)
            .threshold(3)
            .hysteresis(2, 2)
            .build()
            .expect("valid monitor config")
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let snap = MonitorSnapshot::new(trained_monitor(), 42, 0xFEED);
        let bytes = encode(&snap);
        let back = decode(&bytes, 0xFEED).expect("decode own encoding");
        assert_eq!(back.cursor, 42);
        assert_eq!(back.config_digest, 0xFEED);
        assert_eq!(encode(&back), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn every_single_byte_corruption_is_refused() {
        let snap = MonitorSnapshot::new(trained_monitor(), 7, 0xFEED);
        let bytes = encode(&snap);
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x01;
            assert!(
                decode(&evil, 0xFEED).is_err(),
                "flipping byte {i} must be refused"
            );
        }
    }

    #[test]
    fn truncation_and_extension_are_refused() {
        let snap = MonitorSnapshot::new(trained_monitor(), 7, 0xFEED);
        let bytes = encode(&snap);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut], 0xFEED).is_err(), "cut at {cut}");
        }
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(matches!(
            decode(&longer, 0xFEED),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn config_digest_mismatch_is_refused() {
        let snap = MonitorSnapshot::new(trained_monitor(), 7, 0xFEED);
        let bytes = encode(&snap);
        assert!(matches!(
            decode(&bytes, 0xBEEF),
            Err(SnapshotError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn version_mismatch_is_refused() {
        let snap = MonitorSnapshot::new(trained_monitor(), 7, 0xFEED);
        let mut bytes = encode(&snap);
        // Rewrite the version field and re-stamp the checksum so only
        // the version check can fire.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let checksum_at = bytes.len() - CHECKSUM_LEN;
        let checksum = fnv1a_64(&bytes[MAGIC.len()..checksum_at]);
        bytes[checksum_at..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode(&bytes, 0xFEED),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn save_is_atomic_and_load_resumes_verdicts() {
        let dir = std::env::temp_dir().join(format!("hbmd-snapshot-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("monitor.snapshot");

        let mut original = trained_monitor();
        let benign = features(1.0);
        let malign = features(100.0);
        for _ in 0..3 {
            original.observe(&malign);
        }
        let snap = MonitorSnapshot::new(original.clone(), 3, 0x1234);
        save(&snap, &path).expect("save");
        assert!(
            !tmp_path(&path).exists(),
            "tmp file must not survive a successful save"
        );

        let mut restored = load(&path, 0x1234).expect("load").monitor;
        // The restored monitor must continue the verdict stream exactly
        // as the original would have.
        for _ in 0..4 {
            assert_eq!(restored.observe(&malign), original.observe(&malign));
        }
        for _ in 0..6 {
            assert_eq!(restored.observe(&benign), original.observe(&benign));
        }

        // A corrupted file on disk is refused by load.
        let mut on_disk = std::fs::read(&path).expect("read back");
        let mid = on_disk.len() / 2;
        on_disk[mid] ^= 0xFF;
        std::fs::write(&path, &on_disk).expect("corrupt");
        assert!(load(&path, 0x1234).is_err());

        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- multiplexed fleet snapshots --

    use crate::fleet::{StreamHealth, StreamHealthConfig};
    use crate::online::StreamState;

    fn fleet_sections(n: u64) -> Vec<StreamSection> {
        (0..n)
            .map(|stream| {
                let mut state = StreamState::new(4, 3, 2, 2).expect("valid shape");
                let mut health = StreamHealth::new(StreamHealthConfig::default());
                let detector = trained_monitor().shared_detector();
                // Warm each stream differently so sections differ.
                for i in 0..(stream % 7) {
                    let level = if i % 2 == 0 { 1.0 } else { 100.0 };
                    state.observe(&detector, &features(level));
                    health.record(i % 3 == 0);
                }
                StreamSection {
                    stream,
                    cursor: stream * 11,
                    state,
                    health,
                }
            })
            .collect()
    }

    #[test]
    fn fleet_roundtrip_restores_every_stream() {
        let detector = trained_monitor().shared_detector();
        let sections = fleet_sections(9);
        let bytes = encode_fleet(&detector, 4, 0xFEED, &sections);
        let back = decode_fleet(&bytes, 0xFEED).expect("decode own encoding");
        assert_eq!(back.shards, 4);
        assert_eq!(back.lost_sections, 0);
        assert_eq!(back.streams.len(), 9);
        for (restored, original) in back.streams.iter().zip(&sections) {
            assert_eq!(restored.stream, original.stream);
            assert_eq!(restored.cursor, original.cursor);
            assert_eq!(restored.health, original.health);
        }
        // Byte-identity: re-encoding the restore reproduces the file.
        assert_eq!(
            encode_fleet(
                &back.detector,
                back.shards,
                back.config_digest,
                &back.streams
            ),
            bytes
        );
    }

    #[test]
    fn corrupt_stream_section_falls_back_alone() {
        let detector = trained_monitor().shared_detector();
        let sections = fleet_sections(5);
        let mut bytes = encode_fleet(&detector, 2, 0xFEED, &sections);
        let spans = fleet_stream_section_spans(&bytes).expect("walk framing");
        assert_eq!(spans.len(), 5);
        // Flip one byte inside stream section 2's payload.
        let mid = spans[2].start + (spans[2].end - spans[2].start) / 2;
        bytes[mid] ^= 0xFF;
        let back = decode_fleet(&bytes, 0xFEED).expect("partial restore succeeds");
        assert_eq!(back.lost_sections, 1);
        let restored: Vec<u64> = back.streams.iter().map(|s| s.stream).collect();
        assert_eq!(restored, vec![0, 1, 3, 4], "only stream 2 falls back");
    }

    #[test]
    fn corrupt_header_or_detector_refuses_the_fleet() {
        let detector = trained_monitor().shared_detector();
        let sections = fleet_sections(3);
        let bytes = encode_fleet(&detector, 2, 0xFEED, &sections);

        // Header corruption (shard count byte) is caught wholesale.
        let mut evil = bytes.clone();
        evil[20] ^= 0x01;
        assert!(decode_fleet(&evil, 0xFEED).is_err());

        // Detector payload corruption is caught wholesale.
        let mut evil = bytes.clone();
        evil[FLEET_HEADER_LEN + 8] ^= 0x01;
        assert!(matches!(
            decode_fleet(&evil, 0xFEED),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Wrong digest and truncation are refused.
        assert!(matches!(
            decode_fleet(&bytes, 0xBEEF),
            Err(SnapshotError::ConfigMismatch { .. })
        ));
        assert!(decode_fleet(&bytes[..FLEET_HEADER_LEN + 4], 0xFEED).is_err());
    }

    #[test]
    fn corrupt_length_field_loses_the_tail_not_the_head() {
        let detector = trained_monitor().shared_detector();
        let sections = fleet_sections(4);
        let mut bytes = encode_fleet(&detector, 2, 0xFEED, &sections);
        let spans = fleet_stream_section_spans(&bytes).expect("walk framing");
        // Wreck section 1's length field (the 8 bytes before its payload):
        // framing beyond it is untrustworthy, so streams 1..4 fall back
        // while stream 0 survives.
        let len_at = spans[1].start - 8;
        bytes[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let back = decode_fleet(&bytes, 0xFEED).expect("head survives");
        assert_eq!(back.lost_sections, 3);
        assert_eq!(back.streams.len(), 1);
        assert_eq!(back.streams[0].stream, 0);
    }

    #[test]
    fn fleet_save_load_is_atomic() {
        let dir = std::env::temp_dir().join(format!("hbmd-fleet-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("fleet.snap");
        let detector = trained_monitor().shared_detector();
        let sections = fleet_sections(6);
        save_fleet(&detector, 3, 0x77, &sections, &path).expect("save");
        assert!(!tmp_path(&path).exists());
        let back = load_fleet(&path, 0x77).expect("load");
        assert_eq!(back.streams.len(), 6);
        assert_eq!(back.lost_sections, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
