//! Post-hoc trace analysis: load a `--trace-jsonl` event log back into
//! span trees and compute where the time actually went.
//!
//! The [`JsonlSink`](crate::sink::JsonlSink) writes one JSON object per
//! closed span; [`Trace::parse_jsonl`] rebuilds the forest those
//! records describe (spans opened on worker threads have no recorded
//! parent and surface as additional roots, exactly as the sink saw
//! them). On top of the forest:
//!
//! * [`Trace::self_ns`] — per-span *self time* (duration minus direct
//!   children; the time a span spent doing its own work),
//! * [`Trace::aggregate`] — totals per span name, ranked by self time:
//!   the "where do I optimise" table,
//! * [`Trace::critical_path`] — the chain of heaviest spans from the
//!   heaviest root down to a leaf,
//! * [`Trace::collapsed`] — Brendan-Gregg-style folded stacks
//!   (`root;child;leaf <self_ns>`), ready for any flamegraph renderer.
//!
//! All outputs are pure functions of the record set: stable ordering,
//! no clocks, no environment.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{self, Value};
use crate::span::{FieldValue, SpanRecord};

/// Why a trace failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line was not a valid JSON object (1-based line number, cause).
    Malformed(usize, String),
    /// A span object lacked a required key (1-based line number, key).
    MissingKey(usize, &'static str),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Malformed(line, cause) => {
                write!(f, "trace line {line}: {cause}")
            }
            TraceError::MissingKey(line, key) => {
                write!(f, "trace line {line}: span object missing `{key}`")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// One node of the reconstructed span forest.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// The record as the sink delivered it.
    pub record: SpanRecord,
    /// Indices (into [`Trace::spans`]) of direct children, ordered by
    /// start time then id.
    pub children: Vec<usize>,
}

/// A reconstructed span forest with its analysis queries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// All spans, ordered by (start_ns, id).
    pub spans: Vec<TraceSpan>,
    /// Indices of the roots (no parent, or parent not in the trace),
    /// ordered by start time then id.
    pub roots: Vec<usize>,
}

/// Aggregated totals for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameAggregate {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of their durations.
    pub total_ns: u64,
    /// Sum of their self times (duration minus direct children).
    pub self_ns: u64,
    /// Longest single duration.
    pub max_ns: u64,
}

/// One hop of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalHop {
    /// Index into [`Trace::spans`].
    pub index: usize,
    /// Span name.
    pub name: String,
    /// The span's full duration.
    pub duration_ns: u64,
    /// The span's self time.
    pub self_ns: u64,
    /// Fraction of the parent hop's duration (1.0 for the root).
    pub share_of_parent: f64,
}

impl Trace {
    /// Rebuild the forest from sink-order records (inner spans close
    /// first — the order [`MemorySink`](crate::sink::MemorySink) and
    /// the JSONL log both use).
    pub fn from_records(records: &[SpanRecord]) -> Trace {
        let mut order: Vec<usize> = (0..records.len()).collect();
        order.sort_by_key(|&i| (records[i].start_ns, records[i].id));
        let mut spans: Vec<TraceSpan> = order
            .iter()
            .map(|&i| TraceSpan {
                record: records[i].clone(),
                children: Vec::new(),
            })
            .collect();
        let index_of: BTreeMap<u64, usize> = spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.record.id, i))
            .collect();
        let mut roots = Vec::new();
        for i in 0..spans.len() {
            match spans[i].record.parent.and_then(|p| index_of.get(&p)) {
                Some(&parent) if parent != i => spans[parent].children.push(i),
                // Orphans (parent never closed, cross-thread spans, or
                // a truncated log) become roots rather than vanishing.
                _ => roots.push(i),
            }
        }
        // Children were pushed in (start, id) order because `i` walks
        // the sorted span list; roots likewise.
        Trace { spans, roots }
    }

    /// Parse a JSONL event log (the `--trace-jsonl` output). Lines
    /// whose `type` is not `"span"` are ignored, so the format can
    /// grow other event kinds without breaking old analyzers.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] with the 1-based line number of the
    /// first malformed line.
    pub fn parse_jsonl(text: &str) -> Result<Trace, TraceError> {
        let mut records = Vec::new();
        for (number, line) in text.lines().enumerate() {
            let number = number + 1;
            if line.trim().is_empty() {
                continue;
            }
            let value =
                json::parse(line).map_err(|e| TraceError::Malformed(number, e.to_string()))?;
            if value.get("type").and_then(Value::as_str) != Some("span") {
                continue;
            }
            records.push(span_record(&value, number)?);
        }
        Ok(Trace::from_records(&records))
    }

    /// Number of spans in the trace.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when the trace holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Self time of the span at `index`: its duration minus the summed
    /// durations of its direct children, floored at zero (children on
    /// the same thread can marginally overshoot through clock
    /// granularity).
    pub fn self_ns(&self, index: usize) -> u64 {
        let span = &self.spans[index];
        let children: u64 = span
            .children
            .iter()
            .map(|&c| self.spans[c].record.duration_ns)
            .sum();
        span.record.duration_ns.saturating_sub(children)
    }

    /// Sum of the root spans' durations — the trace's total covered
    /// wall-clock (roots on parallel threads may overlap; this is the
    /// sum of their individual spans, not elapsed time).
    pub fn total_ns(&self) -> u64 {
        self.roots
            .iter()
            .map(|&r| self.spans[r].record.duration_ns)
            .sum()
    }

    /// Totals per span name, ranked by self time (descending), ties by
    /// name.
    pub fn aggregate(&self) -> Vec<NameAggregate> {
        let mut by_name: BTreeMap<&str, NameAggregate> = BTreeMap::new();
        for (i, span) in self.spans.iter().enumerate() {
            let entry = by_name
                .entry(span.record.name.as_str())
                .or_insert_with(|| NameAggregate {
                    name: span.record.name.clone(),
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                    max_ns: 0,
                });
            entry.count += 1;
            entry.total_ns += span.record.duration_ns;
            entry.self_ns += self.self_ns(i);
            entry.max_ns = entry.max_ns.max(span.record.duration_ns);
        }
        let mut rows: Vec<NameAggregate> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        rows
    }

    /// The critical path: starting from the longest root, repeatedly
    /// descend into the longest child. Ties resolve to the earliest
    /// start, then the lowest id — deterministic for a given log.
    pub fn critical_path(&self) -> Vec<CriticalHop> {
        let heaviest = |candidates: &[usize]| -> Option<usize> {
            candidates.iter().copied().max_by(|&a, &b| {
                let ra = &self.spans[a].record;
                let rb = &self.spans[b].record;
                ra.duration_ns
                    .cmp(&rb.duration_ns)
                    .then(rb.start_ns.cmp(&ra.start_ns))
                    .then(rb.id.cmp(&ra.id))
            })
        };
        let mut path = Vec::new();
        let Some(mut current) = heaviest(&self.roots) else {
            return path;
        };
        let mut parent_duration = None::<u64>;
        loop {
            let record = &self.spans[current].record;
            path.push(CriticalHop {
                index: current,
                name: record.name.clone(),
                duration_ns: record.duration_ns,
                self_ns: self.self_ns(current),
                share_of_parent: match parent_duration {
                    Some(parent) if parent > 0 => record.duration_ns as f64 / parent as f64,
                    _ => 1.0,
                },
            });
            parent_duration = Some(record.duration_ns);
            match heaviest(&self.spans[current].children) {
                Some(child) => current = child,
                None => return path,
            }
        }
    }

    /// Folded-stack export: one line per distinct stack,
    /// `root;child;leaf <self_ns>`, sorted lexicographically. Feed it
    /// to any flamegraph renderer (`flamegraph.pl`, speedscope, …).
    /// Semicolons in span names are replaced with `_` to keep the
    /// stack separator unambiguous.
    pub fn collapsed(&self) -> String {
        fn frame(name: &str) -> String {
            name.replace([';', '\n', '\r'], "_")
        }
        fn walk(
            trace: &Trace,
            index: usize,
            stack: &mut Vec<String>,
            folded: &mut BTreeMap<String, u64>,
        ) {
            stack.push(frame(&trace.spans[index].record.name));
            let self_ns = trace.self_ns(index);
            if self_ns > 0 {
                *folded.entry(stack.join(";")).or_insert(0) += self_ns;
            }
            for &child in &trace.spans[index].children {
                walk(trace, child, stack, folded);
            }
            stack.pop();
        }
        let mut folded = BTreeMap::new();
        let mut stack = Vec::new();
        for &root in &self.roots {
            walk(self, root, &mut stack, &mut folded);
        }
        let mut out = String::new();
        for (stack, ns) in folded {
            out.push_str(&format!("{stack} {ns}\n"));
        }
        out
    }
}

fn span_record(value: &Value, line: usize) -> Result<SpanRecord, TraceError> {
    let need_u64 = |key: &'static str| -> Result<u64, TraceError> {
        value
            .get(key)
            .and_then(Value::as_u64)
            .ok_or(TraceError::MissingKey(line, key))
    };
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or(TraceError::MissingKey(line, "name"))?
        .to_owned();
    let parent = match value.get("parent") {
        Some(Value::Null) | None => None,
        Some(v) => Some(v.as_u64().ok_or(TraceError::MissingKey(line, "parent"))?),
    };
    let fields = match value.get("fields") {
        Some(Value::Object(members)) => members
            .iter()
            .map(|(k, v)| (k.clone(), field_value(v)))
            .collect(),
        _ => Vec::new(),
    };
    Ok(SpanRecord {
        id: need_u64("id")?,
        parent,
        depth: need_u64("depth")? as usize,
        name,
        fields,
        start_ns: need_u64("start_ns")?,
        duration_ns: need_u64("duration_ns")?,
    })
}

/// Map a parsed JSON value back onto the closest [`FieldValue`].
/// Unsigned integers come back as `Uint`, other numbers as `Int` or
/// `Float` — the JSONL rendering does not distinguish `Int(3)` from
/// `Uint(3)`, so a roundtrip normalises to the unsigned form.
fn field_value(value: &Value) -> FieldValue {
    match value {
        Value::Bool(b) => FieldValue::Bool(*b),
        Value::Str(s) => FieldValue::Str(s.clone()),
        Value::Num(n) => {
            if let Some(u) = value.as_u64() {
                FieldValue::Uint(u)
            } else if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n < 0.0 {
                FieldValue::Int(*n as i64)
            } else {
                FieldValue::Float(*n)
            }
        }
        _ => FieldValue::Str(String::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        id: u64,
        parent: Option<u64>,
        name: &str,
        start_ns: u64,
        duration_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            depth: 0,
            name: name.to_owned(),
            fields: Vec::new(),
            start_ns,
            duration_ns,
        }
    }

    /// root(100ns) -> a(60) -> leaf(10); root -> b(25); orphan(40).
    fn sample() -> Vec<SpanRecord> {
        vec![
            record(3, Some(2), "leaf", 20, 10),
            record(2, Some(1), "a", 10, 60),
            record(4, Some(1), "b", 75, 25),
            record(1, None, "root", 0, 100),
            record(9, Some(77), "orphan", 5, 40),
        ]
    }

    #[test]
    fn forest_rebuilds_parent_links_and_self_time() {
        let trace = Trace::from_records(&sample());
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.roots.len(), 2, "orphan surfaces as a root");
        let root = trace.roots[0];
        assert_eq!(trace.spans[root].record.name, "root");
        assert_eq!(trace.spans[root].children.len(), 2);
        assert_eq!(trace.self_ns(root), 100 - 60 - 25);
        let a = trace.spans[root].children[0];
        assert_eq!(trace.spans[a].record.name, "a");
        assert_eq!(trace.self_ns(a), 50);
        assert_eq!(trace.total_ns(), 140);
    }

    #[test]
    fn aggregates_rank_by_self_time() {
        let trace = Trace::from_records(&sample());
        let rows = trace.aggregate();
        assert_eq!(rows[0].name, "a", "a has the largest self time");
        assert_eq!(rows[0].self_ns, 50);
        let root = rows.iter().find(|r| r.name == "root").expect("root row");
        assert_eq!((root.count, root.total_ns, root.self_ns), (1, 100, 15));
    }

    #[test]
    fn critical_path_follows_heaviest_children() {
        let trace = Trace::from_records(&sample());
        let path = trace.critical_path();
        let names: Vec<&str> = path.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, ["root", "a", "leaf"]);
        assert!((path[0].share_of_parent - 1.0).abs() < 1e-12);
        assert!((path[1].share_of_parent - 0.6).abs() < 1e-12);
    }

    #[test]
    fn collapsed_stacks_fold_self_time() {
        let trace = Trace::from_records(&sample());
        let collapsed = trace.collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert!(lines.contains(&"root 15"));
        assert!(lines.contains(&"root;a 50"));
        assert!(lines.contains(&"root;a;leaf 10"));
        assert!(lines.contains(&"root;b 25"));
        assert!(lines.contains(&"orphan 40"));
        let total: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, trace.total_ns(), "self times partition the total");
    }

    #[test]
    fn jsonl_roundtrip_reproduces_the_exact_tree() {
        let records = sample();
        let jsonl: String = records
            .iter()
            .map(|r| format!("{}\n", r.to_json_line()))
            .collect();
        let parsed = Trace::parse_jsonl(&jsonl).expect("parse");
        assert_eq!(parsed, Trace::from_records(&records));
    }

    #[test]
    fn non_span_lines_and_blanks_are_skipped() {
        let text = "\n{\"type\": \"meta\", \"x\": 1}\n".to_owned()
            + &record(1, None, "only", 0, 5).to_json_line();
        let trace = Trace::parse_jsonl(&text).expect("parse");
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let text = format!("{}\nnot json\n", record(1, None, "x", 0, 1).to_json_line());
        match Trace::parse_jsonl(&text) {
            Err(TraceError::Malformed(2, _)) => {}
            other => panic!("expected Malformed(2, _), got {other:?}"),
        }
        let missing = "{\"type\": \"span\", \"name\": \"x\"}";
        assert!(matches!(
            Trace::parse_jsonl(missing),
            Err(TraceError::MissingKey(1, "id"))
        ));
    }

    #[test]
    fn hostile_span_names_roundtrip_through_the_log() {
        let hostile = "evil\"name\u{1}\n;with\u{2028}everything";
        let record = SpanRecord {
            id: 1,
            parent: None,
            depth: 0,
            name: hostile.to_owned(),
            fields: vec![("k".to_owned(), FieldValue::Str("v\"\u{7f}".to_owned()))],
            start_ns: 0,
            duration_ns: 9,
        };
        let line = record.to_json_line();
        assert!(!line.contains('\n'), "the JSONL line must stay one line");
        let trace = Trace::parse_jsonl(&line).expect("parse hostile");
        assert_eq!(trace.spans[0].record.name, hostile);
        // The collapsed export neutralises the separator characters.
        assert!(!trace.collapsed().contains(';') || trace.collapsed().matches(';').count() == 0);
    }
}
