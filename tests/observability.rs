//! Observability integration: span capture, exact counters, and the
//! determinism contract, driven through the public facade.
//!
//! Each test installs its own [`Obs`] context; installs serialize on a
//! process-wide lock, so the tests' counters never bleed into each
//! other even when the harness runs them on parallel threads.

use std::sync::Arc;

use hbmd::malware::SampleCatalog;
use hbmd::obs::{MemorySink, Obs};
use hbmd::perf::{Collection, Collector, CollectorConfig, FaultPlan};

/// A fault plan hot enough to exercise every counter on a tiny catalog,
/// but below the failure threshold.
fn faulted_config() -> CollectorConfig {
    CollectorConfig::faulted(FaultPlan::uniform(0.05, 11))
}

fn collect(config: CollectorConfig, catalog: &SampleCatalog) -> Collection {
    Collector::new(config)
        .expect("valid config")
        .collect(catalog)
        .expect("collection under threshold")
}

#[test]
fn spans_nest_and_counters_match_the_report_exactly() {
    let sink = Arc::new(MemorySink::new());
    let guard = hbmd::obs::install(Obs::new().with_sink(sink.clone()));

    let catalog = SampleCatalog::scaled(0.02, 7);
    let collection = collect(faulted_config(), &catalog);
    let report = &collection.report;

    // One root `collect` span; with the sequential (threads = 1) fast
    // config every per-sample span nests under it.
    let roots = sink.named("collect");
    assert_eq!(roots.len(), 1);
    let samples = sink.named("collect.sample");
    assert_eq!(samples.len(), report.samples_total);
    for span in &samples {
        assert_eq!(span.parent, Some(roots[0].id), "sequential spans nest");
    }

    // Counters are exact mirrors of the collection report.
    let snapshot = guard.registry().snapshot();
    assert_eq!(snapshot.counter("collect.samples"), catalog.len() as u64);
    assert_eq!(snapshot.counter("windows_collected"), report.rows as u64);
    assert_eq!(
        snapshot.counter("windows_collected"),
        collection.dataset.len() as u64
    );
    assert_eq!(snapshot.counter("collect.retries"), report.retries as u64);
    assert_eq!(
        snapshot.counter("collect.quarantined"),
        report.quarantined.len() as u64
    );
    let faults_total: usize = report.faults.per_kind().iter().map(|&(_, n)| n).sum();
    assert!(faults_total > 0, "the uniform plan must inject something");
    assert_eq!(snapshot.counter("faults_injected"), faults_total as u64);

    drop(guard);
}

#[test]
fn per_kind_fault_counters_carry_labels() {
    let guard = hbmd::obs::install(Obs::new());
    let catalog = SampleCatalog::scaled(0.02, 13);
    let collection = collect(faulted_config(), &catalog);

    let snapshot = guard.registry().snapshot();
    for (kind, count) in collection.report.faults.per_kind() {
        let recorded: u64 = snapshot
            .counters
            .iter()
            .filter(|c| {
                c.name == "faults_injected"
                    && c.labels == vec![("kind".to_owned(), kind.to_owned())]
            })
            .map(|c| c.value)
            .sum();
        assert_eq!(recorded, count as u64, "kind {kind}");
    }
    drop(guard);
}

#[test]
fn deterministic_metrics_are_identical_across_thread_counts() {
    let fingerprint = |threads: usize| {
        let guard = hbmd::obs::install(Obs::new());
        let mut config = faulted_config();
        config.threads = threads;
        let catalog = SampleCatalog::scaled(0.02, 29);
        let _faulted = collect(config.clone(), &catalog);
        // Exercise the training side too, so classifier counters are
        // part of the fingerprint. Train on a clean collection — raw
        // faulted windows carry NaNs that only the detector's sanitizer
        // screens out.
        let clean = collect(
            CollectorConfig {
                fault: None,
                ..config
            },
            &catalog,
        );
        let dataset = hbmd::core::to_binary_dataset(&clean.dataset);
        let mut tree = hbmd::ml::J48::new();
        hbmd::ml::fit_timed(&mut tree, &dataset).expect("fit");
        let json = guard.registry().snapshot().deterministic().to_json();
        drop(guard);
        json
    };
    let sequential = fingerprint(1);
    assert_eq!(sequential, fingerprint(2));
    assert_eq!(sequential, fingerprint(8));
    // The fingerprint is non-trivial and wall-clock-free.
    assert!(sequential.contains("windows_collected"));
    assert!(!sequential.contains("train_ns"));
}

#[test]
fn default_context_collects_without_sinks() {
    // No install, no sinks: the pipeline must run exactly as before,
    // metrics landing silently in the default registry.
    let catalog = SampleCatalog::scaled(0.01, 3);
    let collection = collect(CollectorConfig::fast(), &catalog);
    assert_eq!(collection.dataset.len(), collection.report.rows);
    assert!(!hbmd::obs::has_sinks());
}

#[test]
fn summary_table_renders_counters_and_histograms() {
    let guard = hbmd::obs::install(Obs::new());
    let catalog = SampleCatalog::scaled(0.01, 3);
    let _ = collect(CollectorConfig::fast(), &catalog);
    let summary = guard.registry().snapshot().summary();
    assert!(summary.contains("counters"));
    assert!(summary.contains("windows_collected"));
    drop(guard);
}

#[test]
fn per_source_window_counter_labels_the_active_backend() {
    let guard = hbmd::obs::install(Obs::new());
    let catalog = SampleCatalog::scaled(0.01, 5);
    let collection = collect(CollectorConfig::fast(), &catalog);

    let snapshot = guard.registry().snapshot();
    let by_source: u64 = snapshot
        .counters
        .iter()
        .filter(|c| {
            c.name == "collect.windows_by_source"
                && c.labels == vec![("source".to_owned(), "sim".to_owned())]
        })
        .map(|c| c.value)
        .sum();
    assert_eq!(by_source, collection.dataset.len() as u64);
    assert_eq!(snapshot.counter("collect.starved_windows"), 0);
    drop(guard);
}
