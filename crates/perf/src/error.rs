use std::fmt;
use std::io;

/// Errors produced by the collection pipeline and the dataset
/// interchange formats.
///
/// Marked `#[non_exhaustive]`: future pipeline stages will grow new
/// failure modes, and downstream `match`es must keep a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum PerfError {
    /// Underlying I/O failure while reading or writing a trace/dataset.
    Io(io::Error),
    /// A CSV line did not match the expected schema.
    ParseCsv {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// An ARFF construct could not be parsed.
    ParseArff {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A perf-stat trace line could not be parsed.
    ParseTrace {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A configuration value is unusable.
    Config(String),
    /// The selected counter backend cannot run on this host/build.
    ///
    /// Returned by [`SourceSelect::probe`](crate::SourceSelect::probe)
    /// and backend construction when live collection was requested but
    /// `perf_event_open(2)` is unavailable: the crate was built without
    /// the `perf-backend` feature, the kernel's `perf_event_paranoid`
    /// level forbids self-profiling, or the PMU is missing. Callers can
    /// degrade gracefully to the simulator on this variant.
    BackendUnavailable {
        /// What the runtime probe found.
        reason: String,
    },
    /// A live counter backend failed mid-collection (a syscall,
    /// `ioctl`, or counter read returned an error after programming
    /// succeeded).
    Backend {
        /// The operation that failed (e.g. `perf_event_open`, `read`).
        op: &'static str,
        /// The OS error behind it.
        source: io::Error,
    },
    /// Too many samples failed collection even after retries; the
    /// dataset would be too degraded to trust.
    DegradedCollection {
        /// Samples quarantined after exhausting retries.
        failed: usize,
        /// Samples attempted.
        total: usize,
        /// Configured failure-rate ceiling that was exceeded.
        threshold: f64,
    },
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::Io(e) => write!(f, "i/o error: {e}"),
            PerfError::ParseCsv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            PerfError::ParseArff { line, message } => {
                write!(f, "arff parse error at line {line}: {message}")
            }
            PerfError::ParseTrace { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            PerfError::Config(message) => write!(f, "invalid configuration: {message}"),
            PerfError::BackendUnavailable { reason } => {
                write!(f, "counter backend unavailable: {reason}")
            }
            PerfError::Backend { op, source } => {
                write!(f, "counter backend failed during {op}: {source}")
            }
            PerfError::DegradedCollection {
                failed,
                total,
                threshold,
            } => write!(
                f,
                "collection degraded beyond use: {failed}/{total} samples failed \
                 (threshold {:.0}%)",
                threshold * 100.0
            ),
        }
    }
}

impl std::error::Error for PerfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PerfError::Io(e) => Some(e),
            PerfError::Backend { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for PerfError {
    fn from(e: io::Error) -> PerfError {
        PerfError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PerfError::ParseCsv {
            line: 3,
            message: "expected 17 columns, found 5".to_owned(),
        };
        let text = e.to_string();
        assert!(text.contains("line 3"));
        assert!(text.contains("17 columns"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        use std::error::Error;
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = PerfError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
