//! The live Linux counter backend (`--features perf-backend`): the
//! paper's 16 events programmed through `perf_event_open(2)` as
//! kernel-scheduled groups, read with `time_enabled`/`time_running`
//! multiplexing telemetry exactly as `perf stat` reports it.
//!
//! What gets measured: the collector process itself, while it executes
//! the sample's synthetic instruction stream on the `hbmd-uarch` core
//! model. The *workload driver* is identical to the simulator source —
//! same stream, same per-window instruction budget — but the counts
//! come from the host PMU observing that execution, so traces carry
//! real-hardware artefacts (multiplexing error, interrupt noise,
//! frequency scaling) that the deterministic model can only imitate.
//! Live traces are therefore machine-specific and non-reproducible
//! across runs; the simulator stays the default for CI and for every
//! byte-identical experiment.
//!
//! Availability is probed at runtime ([`probe`]): a kernel without the
//! syscall, a restrictive `kernel.perf_event_paranoid`, or a missing
//! PMU yields [`PerfError::BackendUnavailable`](crate::PerfError) so
//! callers can degrade gracefully to the simulator.

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod ffi;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use std::collections::HashMap;

    use hbmd_events::{FeatureVector, HpcEvent};
    use hbmd_malware::Sample;
    use hbmd_uarch::Cpu;

    use super::ffi;
    use crate::container::ContainedStream;
    use crate::error::PerfError;
    use crate::sampler::SamplerConfig;
    use crate::source::{CounterSource, CounterWindow, EventSel, SourceCaps, SourceSelect};

    /// Events scheduled per kernel group. Four fits the programmable
    /// registers of every PMU this targets (and leaves room for NMI
    /// watchdog reservations); the kernel multiplexes the groups and
    /// the `time_enabled`/`time_running` scaling corrects for it.
    const GROUP_WIDTH: usize = 4;

    /// Check `perf_event_open` works here by opening (and immediately
    /// closing) one hardware instructions counter on this thread.
    ///
    /// # Errors
    ///
    /// [`PerfError::BackendUnavailable`] with the probe's findings,
    /// including the `perf_event_paranoid` level when readable.
    pub fn probe() -> Result<(), PerfError> {
        // PERF_COUNT_HW_INSTRUCTIONS: the one counter every PMU has.
        let attr = ffi::PerfEventAttr::counting(0, 1, true);
        match ffi::perf_event_open(&attr, 0, -1, -1) {
            Ok(_fd) => Ok(()),
            Err(err) => {
                let paranoid = match ffi::paranoid_level() {
                    Some(level) => format!("kernel.perf_event_paranoid={level}"),
                    None => "kernel.perf_event_paranoid unreadable".to_owned(),
                };
                let hint = match err.raw_os_error() {
                    Some(1) | Some(13) => {
                        "insufficient privilege; lower \
                         kernel.perf_event_paranoid to 2 or grant CAP_PERFMON"
                    }
                    Some(2) => "no PMU exposes hardware events (virtualised host?)",
                    Some(38) => "kernel built without perf_event_open",
                    _ => "perf_event_open probe failed",
                };
                Err(PerfError::BackendUnavailable {
                    reason: format!("{hint} ({err}; {paranoid})"),
                })
            }
        }
    }

    /// One kernel scheduling group: a leader fd, its siblings, and the
    /// event each kernel-assigned id counts.
    struct Group {
        leader: ffi::Fd,
        /// Kept for their fds' lifetimes; read via the leader.
        _siblings: Vec<ffi::Fd>,
        id_to_event: Vec<(u64, HpcEvent)>,
    }

    /// The live `perf_event_open` implementation of
    /// [`CounterSource`].
    pub struct PerfSource {
        cpu: Cpu,
        stream: ContainedStream,
        budget: u64,
        groups: Vec<Group>,
        /// Events the host PMU refused at `program` time (reported as
        /// `NaN` features, counted as starved).
        unsupported: Vec<HpcEvent>,
        programmed: bool,
    }

    impl PerfSource {
        /// Probe the host, then stage the sample's workload driver.
        /// Counters are opened later, in
        /// [`program`](CounterSource::program).
        ///
        /// # Errors
        ///
        /// [`PerfError::BackendUnavailable`] when the probe fails.
        pub fn open(config: &SamplerConfig, sample: &Sample) -> Result<PerfSource, PerfError> {
            probe()?;
            Ok(PerfSource {
                cpu: Cpu::new(config.cpu.clone()),
                stream: ContainedStream::new(sample, config.host_noise),
                budget: config.instructions_per_window,
                groups: Vec::new(),
                unsupported: Vec::new(),
                programmed: false,
            })
        }
    }

    impl CounterSource for PerfSource {
        fn program(&mut self, events: &[EventSel]) -> Result<(), PerfError> {
            if !EventSel::is_paper_set(events) {
                return Err(PerfError::Config(
                    "the perf source counts exactly the 16 collected events \
                     in column order"
                        .to_owned(),
                ));
            }
            self.groups.clear();
            self.unsupported.clear();
            let mut current: Option<Group> = None;
            for sel in events {
                let full = current
                    .as_ref()
                    .is_some_and(|g| g.id_to_event.len() >= GROUP_WIDTH);
                if full {
                    self.groups.extend(current.take());
                }
                let leader_fd = current.as_ref().map_or(-1, |g| g.leader.raw());
                let attr =
                    ffi::PerfEventAttr::counting(sel.perf_type, sel.perf_config, current.is_none());
                match ffi::perf_event_open(&attr, 0, -1, leader_fd) {
                    Ok(fd) => {
                        let id = ffi::event_id(&fd)?;
                        match &mut current {
                            Some(group) => {
                                group._siblings.push(fd);
                                group.id_to_event.push((id, sel.event));
                            }
                            None => {
                                current = Some(Group {
                                    leader: fd,
                                    _siblings: Vec::new(),
                                    id_to_event: vec![(id, sel.event)],
                                });
                            }
                        }
                    }
                    // Events a given PMU simply does not implement
                    // (node-*, bpu-* on many cores) open with ENOENT /
                    // EOPNOTSUPP / EINVAL: degrade per-event to NaN
                    // instead of failing the backend.
                    Err(err) if matches!(err.raw_os_error(), Some(2) | Some(22) | Some(95)) => {
                        self.unsupported.push(sel.event);
                    }
                    Err(err) => {
                        return Err(PerfError::Backend {
                            op: "perf_event_open",
                            source: err,
                        });
                    }
                }
            }
            self.groups.extend(current);
            if self.groups.is_empty() {
                return Err(PerfError::BackendUnavailable {
                    reason: "the host PMU rejected every collected event".to_owned(),
                });
            }
            self.programmed = true;
            Ok(())
        }

        fn read_window(&mut self) -> Result<CounterWindow, PerfError> {
            if !self.programmed {
                return Err(PerfError::Config(
                    "read_window before program on the perf source".to_owned(),
                ));
            }
            for group in &self.groups {
                ffi::reset_group(&group.leader)?;
                ffi::enable_group(&group.leader)?;
            }
            self.cpu.run(&mut self.stream, self.budget);
            for group in &self.groups {
                ffi::disable_group(&group.leader)?;
            }

            let mut features = FeatureVector::zeroed();
            for event in &self.unsupported {
                features[*event] = f64::NAN;
            }
            let mut starved = self.unsupported.len();
            let mut time_enabled = 0u64;
            let mut time_running = u64::MAX;
            for group in &self.groups {
                let read = ffi::read_group(&group.leader, group.id_to_event.len())?;
                time_enabled = time_enabled.max(read.time_enabled);
                time_running = time_running.min(read.time_running);
                let by_id: HashMap<u64, u64> = read.values.iter().copied().collect();
                for (id, event) in &group.id_to_event {
                    let scaled = match by_id.get(id) {
                        Some(&value) if read.time_running > 0 => {
                            value as f64 * read.time_enabled as f64 / read.time_running as f64
                        }
                        // Never scheduled this window (or missing from
                        // the read): no estimate exists.
                        _ => {
                            starved += 1;
                            f64::NAN
                        }
                    };
                    features[*event] = scaled;
                }
            }
            Ok(CounterWindow {
                features,
                time_enabled,
                time_running: if time_running == u64::MAX {
                    0
                } else {
                    time_running
                },
                starved_events: starved,
            })
        }

        fn caps(&self) -> SourceCaps {
            SourceCaps {
                backend: SourceSelect::Perf.name(),
                live: true,
                counters: GROUP_WIDTH,
                multiplexed: true,
            }
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use hbmd_malware::Sample;

    use crate::error::PerfError;
    use crate::sampler::SamplerConfig;
    use crate::source::{CounterSource, CounterWindow, EventSel, SourceCaps};

    fn unavailable() -> PerfError {
        PerfError::BackendUnavailable {
            reason: "perf_event_open is Linux-only (x86_64/aarch64)".to_owned(),
        }
    }

    /// Stub for targets without `perf_event_open`: everything returns
    /// [`PerfError::BackendUnavailable`].
    pub fn probe() -> Result<(), PerfError> {
        Err(unavailable())
    }

    /// Uninhabitable stub of the live backend for non-Linux targets.
    pub struct PerfSource {
        never: std::convert::Infallible,
    }

    impl PerfSource {
        /// Always fails on this target.
        ///
        /// # Errors
        ///
        /// [`PerfError::BackendUnavailable`], unconditionally.
        pub fn open(_config: &SamplerConfig, _sample: &Sample) -> Result<PerfSource, PerfError> {
            Err(unavailable())
        }
    }

    impl CounterSource for PerfSource {
        fn program(&mut self, _events: &[EventSel]) -> Result<(), PerfError> {
            match self.never {}
        }

        fn read_window(&mut self) -> Result<CounterWindow, PerfError> {
            match self.never {}
        }

        fn caps(&self) -> SourceCaps {
            match self.never {}
        }
    }
}

pub use imp::{probe, PerfSource};
