use crate::classifier::Classifier;
use crate::data::{Dataset, MlError, RowsView};

/// WEKA `OneR`: a one-attribute rule learner.
///
/// For each attribute, the values are sorted and partitioned into
/// buckets of at least `min_bucket` instances with a shared majority
/// class; the attribute whose bucket rule misclassifies the fewest
/// training instances wins. Famously competitive on many problems while
/// being almost free to evaluate — the reason the paper's
/// accuracy-per-area analysis crowns it (with JRip).
///
/// # Examples
///
/// ```
/// use hbmd_ml::{Classifier, Dataset, OneR};
///
/// let mut data = Dataset::new(
///     vec!["noise".into(), "signal".into()],
///     vec!["neg".into(), "pos".into()],
/// )?;
/// for i in 0..20 {
///     data.push(vec![(i % 4) as f64, i as f64], usize::from(i >= 10))?;
/// }
/// let mut one_r = OneR::new();
/// one_r.fit(&data)?;
/// assert_eq!(one_r.chosen_feature(), Some(1));
/// assert_eq!(one_r.predict(&[0.0, 19.0]), 1);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OneR {
    min_bucket: usize,
    model: Option<OneRModel>,
}

#[derive(Debug, Clone)]
pub(crate) struct OneRModel {
    pub(crate) feature: usize,
    /// Ascending bucket upper bounds with the class each bucket
    /// predicts; the final entry is `(f64::INFINITY, class)`.
    pub(crate) buckets: Vec<(f64, usize)>,
}

impl OneR {
    /// The fitted rule, for the flat compiler in [`crate::compiled`].
    pub(crate) fn model(&self) -> Option<&OneRModel> {
        self.model.as_ref()
    }

    /// OneR with WEKA's default minimum bucket size (6).
    pub fn new() -> OneR {
        OneR {
            min_bucket: 6,
            model: None,
        }
    }

    /// OneR with a custom minimum bucket size.
    ///
    /// # Panics
    ///
    /// Panics when `min_bucket` is zero.
    pub fn with_min_bucket(min_bucket: usize) -> OneR {
        assert!(min_bucket > 0, "min_bucket must be non-zero");
        OneR {
            min_bucket,
            model: None,
        }
    }

    /// The attribute the learned rule tests (after a successful fit).
    pub fn chosen_feature(&self) -> Option<usize> {
        self.model.as_ref().map(|m| m.feature)
    }

    /// Number of rule buckets (after a successful fit).
    pub fn num_buckets(&self) -> Option<usize> {
        self.model.as_ref().map(|m| m.buckets.len())
    }

    fn build_buckets(&self, data: &Dataset, feature: usize) -> (Vec<(f64, usize)>, usize) {
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.sort_by(|&a, &b| {
            data.rows()[a][feature]
                .partial_cmp(&data.rows()[b][feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let num_classes = data.num_classes();
        let mut buckets: Vec<(f64, usize)> = Vec::new();
        let mut errors = 0usize;
        let mut counts = vec![0usize; num_classes];
        let mut bucket_len = 0usize;
        let mut k = 0usize;

        while k < order.len() {
            let i = order[k];
            counts[data.labels()[i]] += 1;
            bucket_len += 1;
            k += 1;

            let (class, class_count) = counts
                .iter()
                .enumerate()
                .max_by_key(|&(ci, &c)| (c, usize::MAX - ci))
                .map(|(ci, &c)| (ci, c))
                .expect("classes exist");
            // Holte's rule: a bucket closes once its majority class has
            // `min_bucket` members, but only at a value boundary
            // (identical values must share a bucket) and only where the
            // class actually changes — so bucket edges align with class
            // boundaries on clean data.
            let majority_full = class_count >= self.min_bucket;
            let at_boundary =
                k == order.len() || data.rows()[order[k]][feature] > data.rows()[i][feature];
            let class_changes = k == order.len() || data.labels()[order[k]] != class;
            if majority_full && at_boundary && class_changes {
                errors += bucket_len - class_count;
                let upper = if k == order.len() {
                    f64::INFINITY
                } else {
                    (data.rows()[i][feature] + data.rows()[order[k]][feature]) / 2.0
                };
                buckets.push((upper, class));
                counts.fill(0);
                bucket_len = 0;
            }
        }
        if bucket_len > 0 {
            // Leftover tail shorter than min_bucket: merge into a final
            // bucket of its own majority.
            let (class, class_count) = counts
                .iter()
                .enumerate()
                .max_by_key(|&(ci, &c)| (c, usize::MAX - ci))
                .map(|(ci, &c)| (ci, c))
                .expect("classes exist");
            errors += bucket_len - class_count;
            buckets.push((f64::INFINITY, class));
        }
        if let Some(last) = buckets.last_mut() {
            last.0 = f64::INFINITY;
        }
        // Merge adjacent buckets that predict the same class.
        buckets.dedup_by(|next, prev| {
            if prev.1 == next.1 {
                prev.0 = next.0;
                true
            } else {
                false
            }
        });
        (buckets, errors)
    }
}

impl Default for OneR {
    fn default() -> OneR {
        OneR::new()
    }
}

/// `(feature, buckets, errors)` candidate during OneR's search.
type OneRCandidate = (usize, Vec<(f64, usize)>, usize);

impl Classifier for OneR {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        data.check_trainable()?;
        let mut best: Option<OneRCandidate> = None;
        for feature in 0..data.num_features() {
            let (buckets, errors) = self.build_buckets(data, feature);
            let better = match &best {
                None => true,
                Some((_, _, best_errors)) => errors < *best_errors,
            };
            if better {
                best = Some((feature, buckets, errors));
            }
        }
        let (feature, buckets, _) = best.expect("at least one feature");
        self.model = Some(OneRModel { feature, buckets });
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> usize {
        let model = self
            .model
            .as_ref()
            .expect("OneR::predict called before fit");
        let value = features[model.feature];
        for &(upper, class) in &model.buckets {
            if value <= upper {
                return class;
            }
        }
        model.buckets.last().expect("buckets exist").1
    }

    fn name(&self) -> &str {
        "OneR"
    }

    fn predict_batch(&self, rows: RowsView<'_>) -> Vec<usize> {
        match self.compile() {
            Some(compiled) => compiled.predict_batch(rows),
            None => rows.iter().map(|r| self.predict(r)).collect(),
        }
    }
}

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for OneR {
    fn snap(&self, w: &mut SnapWriter) {
        self.min_bucket.snap(w);
        self.model.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(OneR {
            min_bucket: Snap::unsnap(r)?,
            model: Snap::unsnap(r)?,
        })
    }
}

impl Snap for OneRModel {
    fn snap(&self, w: &mut SnapWriter) {
        self.feature.snap(w);
        self.buckets.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(OneRModel {
            feature: Snap::unsnap(r)?,
            buckets: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Dataset {
        let mut d = Dataset::new(
            vec!["noise".into(), "signal".into()],
            vec!["neg".into(), "pos".into()],
        )
        .expect("schema");
        for i in 0..30 {
            d.push(vec![(i % 5) as f64, i as f64], usize::from(i >= 15))
                .expect("row");
        }
        d
    }

    #[test]
    fn picks_the_informative_feature() {
        let mut one_r = OneR::new();
        one_r.fit(&separable()).expect("fit");
        assert_eq!(one_r.chosen_feature(), Some(1));
        assert_eq!(one_r.predict(&[0.0, 0.0]), 0);
        assert_eq!(one_r.predict(&[0.0, 29.0]), 1);
    }

    #[test]
    fn training_accuracy_is_high_on_separable_data() {
        let data = separable();
        let mut one_r = OneR::new();
        one_r.fit(&data).expect("fit");
        let correct = data
            .iter()
            .filter(|(row, label)| one_r.predict(row) == *label)
            .count();
        // The boundary bucket straddles the class change, costing a
        // few instances: 0.85 is the right bar for min_bucket = 6.
        assert!(correct as f64 / data.len() as f64 > 0.85);
    }

    #[test]
    fn identical_values_share_a_bucket() {
        // All values equal: a single bucket predicting the majority.
        let mut d = Dataset::new(vec!["f".into()], vec!["a".into(), "b".into()]).expect("schema");
        for i in 0..12 {
            d.push(vec![5.0], usize::from(i < 4)).expect("row");
        }
        let mut one_r = OneR::new();
        one_r.fit(&d).expect("fit");
        assert_eq!(one_r.num_buckets(), Some(1));
        assert_eq!(one_r.predict(&[5.0]), 0);
    }

    #[test]
    fn min_bucket_controls_granularity() {
        let data = separable();
        let mut coarse = OneR::with_min_bucket(15);
        coarse.fit(&data).expect("fit");
        let mut fine = OneR::with_min_bucket(1);
        fine.fit(&data).expect("fit");
        assert!(fine.num_buckets() >= coarse.num_buckets());
    }

    #[test]
    fn untrainable_data_is_rejected() {
        let empty = Dataset::new(vec!["f".into()], vec!["a".into(), "b".into()]).expect("schema");
        assert!(OneR::new().fit(&empty).is_err());
    }

    #[test]
    #[should_panic(expected = "min_bucket")]
    fn zero_bucket_panics() {
        let _ = OneR::with_min_bucket(0);
    }
}
