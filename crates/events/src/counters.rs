use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::event::HpcEvent;

/// A full set of raw 64-bit counts, one per collected [`HpcEvent`].
///
/// `CounterSet` is the unit of exchange between the microarchitecture
/// simulator (which increments counts) and the PMU model (which snapshots
/// and differences them at sampling boundaries).
///
/// # Examples
///
/// ```
/// use hbmd_events::{CounterSet, HpcEvent};
///
/// let mut c = CounterSet::new();
/// c.record(HpcEvent::CacheMisses, 3);
/// assert_eq!(c[HpcEvent::CacheMisses], 3);
/// assert_eq!(c.total(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CounterSet {
    counts: [u64; HpcEvent::COUNT],
}

impl CounterSet {
    /// An all-zero counter set.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Counter set from a raw column-ordered array.
    pub fn from_array(counts: [u64; HpcEvent::COUNT]) -> CounterSet {
        CounterSet { counts }
    }

    /// Raw counts in feature-column order.
    pub fn as_array(&self) -> &[u64; HpcEvent::COUNT] {
        &self.counts
    }

    /// Add `n` occurrences of `event`, saturating at `u64::MAX`.
    #[inline]
    pub fn record(&mut self, event: HpcEvent, n: u64) {
        let slot = &mut self.counts[event.index()];
        *slot = slot.saturating_add(n);
    }

    /// Per-event difference `self - earlier`, saturating at zero.
    ///
    /// Counters are monotonically increasing in a well-behaved run, so the
    /// saturation only matters when comparing snapshots from different
    /// runs — a caller bug we degrade gracefully on rather than panic.
    pub fn delta(&self, earlier: &CounterSet) -> CounterSet {
        let mut out = CounterSet::new();
        for event in HpcEvent::ALL {
            out.counts[event.index()] =
                self.counts[event.index()].saturating_sub(earlier.counts[event.index()]);
        }
        out
    }

    /// Element-wise sum, saturating at `u64::MAX`.
    pub fn merged(&self, other: &CounterSet) -> CounterSet {
        let mut out = *self;
        for event in HpcEvent::ALL {
            out.record(event, other.counts[event.index()]);
        }
        out
    }

    /// Sum of all event counts (saturating).
    pub fn total(&self) -> u64 {
        self.counts
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// `true` when every count is zero.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Iterate `(event, count)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (HpcEvent, u64)> + '_ {
        HpcEvent::ALL
            .iter()
            .map(move |&event| (event, self.counts[event.index()]))
    }
}

impl Index<HpcEvent> for CounterSet {
    type Output = u64;

    fn index(&self, event: HpcEvent) -> &u64 {
        &self.counts[event.index()]
    }
}

impl IndexMut<HpcEvent> for CounterSet {
    fn index_mut(&mut self, event: HpcEvent) -> &mut u64 {
        &mut self.counts[event.index()]
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (event, count)) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{:>16}  {}", count, event)?;
        }
        Ok(())
    }
}

impl FromIterator<(HpcEvent, u64)> for CounterSet {
    fn from_iter<I: IntoIterator<Item = (HpcEvent, u64)>>(iter: I) -> CounterSet {
        let mut set = CounterSet::new();
        for (event, n) in iter {
            set.record(event, n);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CounterSet {
        HpcEvent::ALL
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, (i as u64 + 1) * 10))
            .collect()
    }

    #[test]
    fn record_and_index() {
        let mut c = CounterSet::new();
        assert!(c.is_zero());
        c.record(HpcEvent::NodeStores, 7);
        c[HpcEvent::NodeLoads] = 2;
        assert_eq!(c[HpcEvent::NodeStores], 7);
        assert_eq!(c[HpcEvent::NodeLoads], 2);
        assert_eq!(c.total(), 9);
        assert!(!c.is_zero());
    }

    #[test]
    fn record_saturates() {
        let mut c = CounterSet::new();
        c[HpcEvent::CacheMisses] = u64::MAX - 1;
        c.record(HpcEvent::CacheMisses, 5);
        assert_eq!(c[HpcEvent::CacheMisses], u64::MAX);
    }

    #[test]
    fn delta_is_pairwise_and_saturating() {
        let early = sample();
        let mut late = early;
        late.record(HpcEvent::BranchMisses, 5);
        let d = late.delta(&early);
        assert_eq!(d[HpcEvent::BranchMisses], 5);
        assert_eq!(d[HpcEvent::CacheMisses], 0);

        // Reversed order saturates to zero instead of wrapping.
        let reversed = early.delta(&late);
        assert!(reversed.is_zero());
    }

    #[test]
    fn merged_adds_counts() {
        let a = sample();
        let b = sample();
        let m = a.merged(&b);
        for event in HpcEvent::ALL {
            assert_eq!(m[event], a[event] * 2);
        }
    }

    #[test]
    fn iter_is_in_column_order() {
        let c = sample();
        let events: Vec<HpcEvent> = c.iter().map(|(e, _)| e).collect();
        assert_eq!(events, HpcEvent::ALL.to_vec());
    }

    #[test]
    fn display_lists_every_event() {
        let text = sample().to_string();
        for event in HpcEvent::ALL {
            assert!(text.contains(event.name()), "missing {}", event.name());
        }
    }
}
