//! Property tests for the columnar [`Dataset`] layout: everything
//! observable through the public API must behave exactly as the old
//! `Vec<Vec<f64>>`-of-rows layout did.

use hbmd_ml::Dataset;
use proptest::prelude::*;

const MAX_WIDTH: usize = 6;

/// Nested rows + labels + a feature-index selection, sized coherently
/// (the vendored proptest has no `prop_flat_map`, so oversized raw
/// material is trimmed in `prop_map`).
fn arb_input() -> impl Strategy<Value = (usize, Vec<Vec<f64>>, Vec<usize>, Vec<usize>)> {
    (
        1usize..(MAX_WIDTH + 1),
        prop::collection::vec(prop::collection::vec(-1e6f64..1e6, MAX_WIDTH), 0..40),
        prop::collection::vec(0usize..3, 0..40),
        prop::collection::vec(0usize..64, 1..(MAX_WIDTH + 1)),
    )
        .prop_map(|(width, raw_rows, raw_labels, raw_selection)| {
            let len = raw_rows.len().min(raw_labels.len());
            let rows: Vec<Vec<f64>> = raw_rows
                .into_iter()
                .take(len)
                .map(|r| r[..width].to_vec())
                .collect();
            let labels: Vec<usize> = raw_labels.into_iter().take(len).collect();
            let selection: Vec<usize> = raw_selection.into_iter().map(|i| i % width).collect();
            (width, rows, labels, selection)
        })
}

fn schema(width: usize) -> (Vec<String>, Vec<String>) {
    (
        (0..width).map(|i| format!("f{i}")).collect(),
        vec!["a".into(), "b".into(), "c".into()],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `from_rows` → `rows()` round-trips the nested layout exactly.
    #[test]
    fn from_rows_round_trips(input in arb_input()) {
        let (width, rows, labels, _) = input;
        let (features, classes) = schema(width);
        let data = Dataset::from_rows(features, classes, rows.clone(), labels.clone())
            .expect("coherent input");
        prop_assert_eq!(data.len(), rows.len());
        prop_assert_eq!(data.labels(), labels.as_slice());
        prop_assert_eq!(data.rows().to_vec(), rows.clone());
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(&data.rows()[i], row.as_slice());
            prop_assert_eq!(data.row(i), row.as_slice());
        }
    }

    /// `from_flat` builds the identical dataset from the contiguous
    /// layout.
    #[test]
    fn from_flat_equals_from_rows(input in arb_input()) {
        let (width, rows, labels, _) = input;
        let (features, classes) = schema(width);
        let nested = Dataset::from_rows(
            features.clone(), classes.clone(), rows.clone(), labels.clone(),
        ).expect("coherent input");
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let direct = Dataset::from_flat(features, classes, flat, labels)
            .expect("coherent input");
        prop_assert_eq!(nested, direct);
    }

    /// `select_features` matches a hand-rolled projection of the nested
    /// rows (the old layout's semantics).
    #[test]
    fn select_features_matches_nested_projection(input in arb_input()) {
        let (width, rows, labels, selection) = input;
        let (features, classes) = schema(width);
        let data = Dataset::from_rows(features, classes, rows.clone(), labels.clone())
            .expect("coherent input");
        let projected = data.select_features(&selection).expect("in-range selection");
        prop_assert_eq!(projected.len(), data.len());
        prop_assert_eq!(projected.num_features(), selection.len());
        prop_assert_eq!(projected.labels(), labels.as_slice());
        let expected: Vec<Vec<f64>> = rows
            .iter()
            .map(|row| selection.iter().map(|&i| row[i]).collect())
            .collect();
        prop_assert_eq!(projected.rows().to_vec(), expected);
    }

    /// `split` partitions every instance exactly once and keeps each
    /// row attached to its label.
    #[test]
    fn split_partitions_rows_with_labels(input in arb_input()) {
        let (width, rows, labels, _) = input;
        if rows.len() < 2 {
            continue; // split needs at least one row on each side
        }
        let (features, classes) = schema(width);
        let data = Dataset::from_rows(features, classes, rows.clone(), labels.clone())
            .expect("coherent input");
        let (train, test) = data.split(0.7, 9);
        prop_assert_eq!(train.len() + test.len(), data.len());

        let mut seen: Vec<(Vec<f64>, usize)> = train
            .iter()
            .chain(test.iter())
            .map(|(row, label)| (row.to_vec(), label))
            .collect();
        let mut original: Vec<(Vec<f64>, usize)> = rows
            .into_iter()
            .zip(labels)
            .collect();
        let key = |pair: &(Vec<f64>, usize)| format!("{pair:?}");
        seen.sort_by_key(key);
        original.sort_by_key(key);
        prop_assert_eq!(seen, original);
    }
}
