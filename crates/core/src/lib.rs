//! The hardware-based malware detection pipeline — the paper's primary
//! contribution, assembled from the suite's substrates.
//!
//! `hbmd-core` connects the synthetic platform (`hbmd-uarch` +
//! `hbmd-malware`), the collection pipeline (`hbmd-perf`), the
//! machine-learning toolbox (`hbmd-ml`) and the hardware cost model
//! (`hbmd-fpga`) into the workflows the reference evaluation reports:
//!
//! * [`ClassifierKind`] / [`TrainedModel`] — the WEKA classifier suite
//!   as a closed enum, trainable and synthesisable,
//! * [`FeatureSet`] / [`FeaturePlan`] — the paper's feature policies:
//!   all 16 counters, PCA top-8 / top-4, the 4 common features, and the
//!   per-malware-class custom 8 of Table 2,
//! * [`Detector`] / [`DetectorBuilder`] — end-to-end training of a
//!   binary (benign/malware) or multiclass (family) detector,
//! * [`OnlineDetector`] — sliding-window majority voting over per-10ms
//!   verdicts for run-time monitoring, with abstention on corrupted
//!   windows and optional alarm hysteresis,
//! * [`Sanitizer`] — training-statistics screening of incoming windows
//!   (median imputation of repairable corruption, abstention on
//!   garbage) for graceful degradation under collection faults,
//! * [`experiments`] — one preset per table/figure of the evaluation
//!   (accuracy sweeps, hardware cost comparisons, PCA-assisted
//!   multiclass), shared by the `repro` binary and the benches.
//!
//! # Examples
//!
//! ```
//! use hbmd_core::{ClassifierKind, DetectorBuilder, FeatureSet};
//! use hbmd_malware::SampleCatalog;
//! use hbmd_perf::{Collector, CollectorConfig};
//!
//! let catalog = SampleCatalog::scaled(0.02, 7);
//! let dataset = Collector::new(CollectorConfig::fast())
//!     .expect("static config")
//!     .collect(&catalog)
//!     .expect("pristine pipeline")
//!     .dataset;
//!
//! let detector = DetectorBuilder::new()
//!     .classifier(ClassifierKind::J48)
//!     .feature_set(FeatureSet::Top(8))
//!     .train_binary(&dataset)?;
//! assert!(detector.evaluation().accuracy() > 0.7);
//! # Ok::<(), hbmd_core::CoreError>(())
//! ```

pub mod experiments;
pub mod fleet;
pub mod snapshot;
pub mod supervisor;

mod convert;
mod detector;
mod error;
mod features;
mod online;
mod sanitize;
mod suite;
mod voting;

pub use convert::{to_binary_dataset, to_multiclass_dataset, BINARY_CLASS_NAMES};
pub use detector::{Detector, DetectorBuilder, DetectorMode, Verdict};
pub use error::CoreError;
pub use experiments::cache::{CacheStats, CollectCache, Collection};
pub use features::{FeaturePlan, FeatureSet};
pub use fleet::{shard_of, StreamHealth, StreamHealthConfig, StreamStanding};
pub use hbmd_ml::par;
pub use online::{OnlineDetector, OnlineDetectorBuilder, OnlineVerdict, StreamState};
pub use sanitize::{SanitizeOutcome, Sanitizer};
pub use snapshot::{FleetRestore, MonitorSnapshot, SnapshotError, StreamSection};
pub use suite::{ClassifierKind, TrainedModel};
pub use supervisor::{Backoff, BreakerState, CircuitBreaker};
pub use voting::VotingDetector;
