use crate::classifier::Classifier;
use crate::data::{Dataset, MlError};
use crate::filter::Standardize;

/// WEKA `IBk`: k-nearest-neighbour classification with Euclidean
/// distance over standardised features.
///
/// Lazy — training just stores the (standardised) instances, prediction
/// is a linear scan. Accurate but with per-query cost proportional to
/// the training-set size, which is exactly why the paper's hardware
/// analysis disfavours instance-based schemes.
///
/// # Examples
///
/// ```
/// use hbmd_ml::{Classifier, Dataset, Ibk};
///
/// let mut data = Dataset::new(vec!["x".into()], vec!["lo".into(), "hi".into()])?;
/// for i in 0..20 {
///     data.push(vec![i as f64], usize::from(i >= 10))?;
/// }
/// let mut knn = Ibk::new(3);
/// knn.fit(&data)?;
/// assert_eq!(knn.predict(&[1.0]), 0);
/// assert_eq!(knn.predict(&[18.5]), 1);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ibk {
    k: usize,
    model: Option<IbkModel>,
}

#[derive(Debug, Clone)]
struct IbkModel {
    standardize: Standardize,
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Ibk {
    /// kNN with the given neighbour count.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn new(k: usize) -> Ibk {
        assert!(k > 0, "k must be non-zero");
        Ibk { k, model: None }
    }

    /// Stored training instances (0 before fit).
    pub fn num_train_instances(&self) -> usize {
        self.model.as_ref().map(|m| m.rows.len()).unwrap_or(0)
    }

    /// The neighbour count.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Classifier for Ibk {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        data.check_trainable()?;
        let standardize = Standardize::fit(data);
        let rows = data
            .rows()
            .iter()
            .map(|r| standardize.transform_row(r))
            .collect();
        self.model = Some(IbkModel {
            standardize,
            rows,
            labels: data.labels().to_vec(),
            num_classes: data.num_classes(),
        });
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> usize {
        let m = self.model.as_ref().expect("Ibk::predict called before fit");
        let x = m.standardize.transform_row(features);
        // Partial selection of the k smallest distances.
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(self.k + 1);
        for (row, &label) in m.rows.iter().zip(&m.labels) {
            let d2: f64 = row.iter().zip(&x).map(|(a, b)| (a - b).powi(2)).sum();
            if best.len() < self.k || d2 < best.last().expect("non-empty").0 {
                let pos = best
                    .iter()
                    .position(|&(bd, _)| d2 < bd)
                    .unwrap_or(best.len());
                best.insert(pos, (d2, label));
                if best.len() > self.k {
                    best.pop();
                }
            }
        }
        let mut votes = vec![0usize; m.num_classes];
        for &(_, label) in &best {
            votes[label] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, usize::MAX - i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &str {
        "IBk"
    }
}

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for Ibk {
    fn snap(&self, w: &mut SnapWriter) {
        self.k.snap(w);
        self.model.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let k: usize = Snap::unsnap(r)?;
        if k == 0 {
            return Err(SnapError::Invalid("Ibk k must be non-zero".to_owned()));
        }
        Ok(Ibk {
            k,
            model: Snap::unsnap(r)?,
        })
    }
}

impl Snap for IbkModel {
    fn snap(&self, w: &mut SnapWriter) {
        self.standardize.snap(w);
        self.rows.snap(w);
        self.labels.snap(w);
        self.num_classes.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(IbkModel {
            standardize: Snap::unsnap(r)?,
            rows: Snap::unsnap(r)?,
            labels: Snap::unsnap(r)?,
            num_classes: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "y".into()], vec!["a".into(), "b".into()])
            .expect("schema");
        for i in 0..20 {
            let wiggle = (i % 5) as f64 * 0.1;
            d.push(vec![wiggle, wiggle], 0).expect("row");
            d.push(vec![10.0 + wiggle, 10.0 + wiggle], 1).expect("row");
        }
        d
    }

    #[test]
    fn nearest_cluster_wins() {
        let mut knn = Ibk::new(5);
        knn.fit(&clusters()).expect("fit");
        assert_eq!(knn.predict(&[0.5, 0.5]), 0);
        assert_eq!(knn.predict(&[9.5, 9.5]), 1);
        assert_eq!(knn.num_train_instances(), 40);
    }

    #[test]
    fn k_one_memorises_training_points() {
        let data = clusters();
        let mut knn = Ibk::new(1);
        knn.fit(&data).expect("fit");
        for (row, label) in data.iter() {
            assert_eq!(knn.predict(row), label);
        }
    }

    #[test]
    fn larger_k_smooths_an_outlier() {
        // One mislabelled point inside cluster A: k=1 trips over it,
        // k=7 does not.
        let mut d = clusters();
        d.push(vec![0.05, 0.05], 1).expect("outlier");
        let probe = [0.06, 0.06];
        let mut k1 = Ibk::new(1);
        k1.fit(&d).expect("fit");
        assert_eq!(k1.predict(&probe), 1, "k=1 memorises the outlier");
        let mut k7 = Ibk::new(7);
        k7.fit(&d).expect("fit");
        assert_eq!(k7.predict(&probe), 0, "k=7 votes it down");
    }

    #[test]
    #[should_panic(expected = "k must be non-zero")]
    fn zero_k_panics() {
        let _ = Ibk::new(0);
    }

    #[test]
    fn rejects_untrainable() {
        let d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        assert!(Ibk::new(3).fit(&d).is_err());
    }
}
