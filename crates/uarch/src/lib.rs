//! A Haswell-shaped microarchitecture simulator that emits hardware
//! performance counter events.
//!
//! The reference evaluation ran live malware on an Intel Haswell i5-4590
//! and read its PMU. This crate is the synthetic substitute: a
//! deterministic CPU model with the same *mechanisms* that generate the
//! 16 collected events —
//!
//! * set-associative, LRU [`Cache`]s (32 KiB 8-way L1I and L1D, 6 MiB
//!   12-way LLC, 64-byte lines),
//! * a gshare [`BranchPredictor`] with a branch target buffer,
//! * instruction and data [`Tlb`]s,
//! * a memory-node traffic model (counter reads/writes that escape the
//!   LLC).
//!
//! A [`Cpu`] executes an [`InstructionSource`] and accumulates a
//! [`CounterSet`](hbmd_events::CounterSet). Program behaviour (locality,
//! branchiness, code footprint, store intensity) is expressed as
//! [`StreamParams`] and realised by [`SyntheticStream`], which upper
//! layers compose into per-malware-class behaviour profiles.
//!
//! Everything is deterministic given a seed: the same `(config, params,
//! seed)` triple always yields the same counter values.
//!
//! # Examples
//!
//! ```
//! use hbmd_uarch::{Cpu, CpuConfig, StreamParams, SyntheticStream};
//! use hbmd_events::HpcEvent;
//!
//! let mut cpu = Cpu::new(CpuConfig::haswell());
//! let params = StreamParams::balanced();
//! let mut stream = SyntheticStream::new(params, 42);
//! cpu.run(&mut stream, 10_000);
//!
//! let counts = cpu.counters();
//! assert!(counts[HpcEvent::BranchInstructions] > 0);
//! assert!(counts[HpcEvent::L1DcacheLoads] > 0);
//! ```

mod branch;
mod cache;
mod config;
mod core;
mod inst;
mod synth;
mod tlb;

pub use crate::core::{Cpu, ExecutionStats};
pub use branch::{BranchOutcome, BranchPredictor, BranchPredictorConfig};
pub use cache::{Access, Cache, CacheConfig};
pub use config::CpuConfig;
pub use inst::{trace_source, Instruction, InstructionSource, Op, TraceSource};
pub use synth::{StreamParams, SyntheticStream};
pub use tlb::{Tlb, TlbConfig};
