use crate::classifier::Classifier;
use crate::data::{Dataset, MlError};
use crate::filter::Standardize;

/// Multinomial logistic regression (softmax regression) — WEKA's
/// `Logistic` scheme, and the paper's "MLR" multiclass classifier.
///
/// Features are standardised internally; weights are trained by
/// full-batch gradient descent on the L2-regularised cross-entropy.
/// On a two-class problem this reduces to ordinary logistic regression.
///
/// # Examples
///
/// ```
/// use hbmd_ml::{Classifier, Dataset, Mlr};
///
/// let mut data = Dataset::new(vec!["x".into()], vec!["lo".into(), "hi".into()])?;
/// for i in 0..40 {
///     data.push(vec![i as f64], usize::from(i >= 20))?;
/// }
/// let mut mlr = Mlr::new();
/// mlr.fit(&data)?;
/// assert_eq!(mlr.predict(&[35.0]), 1);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mlr {
    epochs: usize,
    learning_rate: f64,
    ridge: f64,
    model: Option<MlrModel>,
}

/// WEKA-style alias: [`Mlr`] is registered as `Logistic` in classifier
/// suites.
pub type Logistic = Mlr;

#[derive(Debug, Clone)]
struct MlrModel {
    standardize: Standardize,
    /// `[class][feature]` weights plus a trailing bias per class.
    weights: Vec<Vec<f64>>,
}

impl Mlr {
    /// Defaults: 300 epochs, learning rate 0.5, ridge 1e-4 (WEKA's
    /// Logistic default ridge is 1e-8; a slightly stronger one
    /// stabilises the noisy HPC features).
    pub fn new() -> Mlr {
        Mlr {
            epochs: 300,
            learning_rate: 0.5,
            ridge: 1e-4,
            model: None,
        }
    }

    /// Custom training schedule.
    ///
    /// # Panics
    ///
    /// Panics when `epochs` is zero or `learning_rate` is not positive.
    pub fn with_schedule(epochs: usize, learning_rate: f64) -> Mlr {
        assert!(epochs > 0, "epochs must be non-zero");
        assert!(learning_rate > 0.0, "learning_rate must be positive");
        Mlr {
            epochs,
            learning_rate,
            ridge: 1e-4,
            model: None,
        }
    }

    /// `(num_features, num_classes)` of the fitted model.
    pub fn dims(&self) -> Option<(usize, usize)> {
        self.model
            .as_ref()
            .map(|m| (m.weights[0].len() - 1, m.weights.len()))
    }

    /// Class probabilities for one standardised-on-the-fly instance.
    ///
    /// # Panics
    ///
    /// Panics when called before a successful fit.
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let m = self.model.as_ref().expect("Mlr::predict called before fit");
        let x = m.standardize.transform_row(features);
        softmax(&logits(&m.weights, &x))
    }
}

fn logits(weights: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    weights
        .iter()
        .map(|w| {
            let bias = w[w.len() - 1];
            w[..w.len() - 1]
                .iter()
                .zip(x)
                .map(|(wi, xi)| wi * xi)
                .sum::<f64>()
                + bias
        })
        .collect()
}

fn softmax(z: &[f64]) -> Vec<f64> {
    let max = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

impl Default for Mlr {
    fn default() -> Mlr {
        Mlr::new()
    }
}

impl Classifier for Mlr {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        data.check_trainable()?;
        let classes = data.num_classes();
        let features = data.num_features();
        let n = data.len() as f64;

        let standardize = Standardize::fit(data);
        let rows: Vec<Vec<f64>> = data
            .rows()
            .iter()
            .map(|r| standardize.transform_row(r))
            .collect();

        let mut weights = vec![vec![0.0f64; features + 1]; classes];
        for epoch in 0..self.epochs {
            // Simple 1/t learning-rate decay.
            let lr = self.learning_rate / (1.0 + epoch as f64 * 0.01);
            let mut grad = vec![vec![0.0f64; features + 1]; classes];
            for (x, label) in rows.iter().zip(data.labels()) {
                let p = softmax(&logits(&weights, x));
                for class in 0..classes {
                    let err = p[class] - f64::from(class == *label);
                    let g = &mut grad[class];
                    for (j, &xj) in x.iter().enumerate() {
                        g[j] += err * xj;
                    }
                    g[features] += err;
                }
            }
            for class in 0..classes {
                for j in 0..=features {
                    let reg = if j < features {
                        self.ridge * weights[class][j]
                    } else {
                        0.0
                    };
                    weights[class][j] -= lr * (grad[class][j] / n + reg);
                }
            }
        }

        self.model = Some(MlrModel {
            standardize,
            weights,
        });
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> usize {
        let p = self.predict_proba(features);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &str {
        "Logistic"
    }
}

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for Mlr {
    fn snap(&self, w: &mut SnapWriter) {
        self.epochs.snap(w);
        self.learning_rate.snap(w);
        self.ridge.snap(w);
        self.model.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Mlr {
            epochs: Snap::unsnap(r)?,
            learning_rate: Snap::unsnap(r)?,
            ridge: Snap::unsnap(r)?,
            model: Snap::unsnap(r)?,
        })
    }
}

impl Snap for MlrModel {
    fn snap(&self, w: &mut SnapWriter) {
        self.standardize.snap(w);
        self.weights.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MlrModel {
            standardize: Snap::unsnap(r)?,
            weights: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_boundary_is_learned() {
        let mut d =
            Dataset::new(vec!["x".into()], vec!["neg".into(), "pos".into()]).expect("schema");
        for i in 0..60 {
            d.push(vec![i as f64], usize::from(i >= 30)).expect("row");
        }
        let mut mlr = Mlr::new();
        mlr.fit(&d).expect("fit");
        assert_eq!(mlr.predict(&[5.0]), 0);
        assert_eq!(mlr.predict(&[55.0]), 1);
        let proba = mlr.predict_proba(&[55.0]);
        assert!(proba[1] > 0.9, "confident far from the boundary: {proba:?}");
        assert!((proba.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn three_class_bands_are_learned() {
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into(), "c".into()])
            .expect("schema");
        for i in 0..90 {
            d.push(vec![i as f64], i / 30).expect("row");
        }
        let mut mlr = Mlr::new();
        mlr.fit(&d).expect("fit");
        assert_eq!(mlr.predict(&[5.0]), 0);
        assert_eq!(mlr.predict(&[45.0]), 1);
        assert_eq!(mlr.predict(&[85.0]), 2);
        assert_eq!(mlr.dims(), Some((1, 3)));
    }

    #[test]
    fn two_features_weight_the_informative_one() {
        let mut d = Dataset::new(
            vec!["noise".into(), "signal".into()],
            vec!["a".into(), "b".into()],
        )
        .expect("schema");
        for i in 0..80 {
            d.push(vec![(i % 4) as f64, i as f64], usize::from(i >= 40))
                .expect("row");
        }
        let mut mlr = Mlr::new();
        mlr.fit(&d).expect("fit");
        let correct = d
            .iter()
            .filter(|(row, label)| mlr.predict(row) == *label)
            .count();
        assert!(correct >= 76, "correct {correct}");
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-9);
        assert!(p[1] >= 0.0);
    }

    #[test]
    #[should_panic(expected = "epochs")]
    fn zero_epochs_panics() {
        let _ = Mlr::with_schedule(0, 0.1);
    }

    #[test]
    fn rejects_untrainable() {
        let d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        assert!(Mlr::new().fit(&d).is_err());
    }
}
