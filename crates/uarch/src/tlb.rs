use serde::{Deserialize, Serialize};

/// Sizing of a translation lookaside buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of page-translation entries.
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
}

impl TlbConfig {
    /// Haswell instruction TLB: 64 entries, 4 KiB pages.
    pub fn haswell_itlb() -> TlbConfig {
        TlbConfig {
            entries: 64,
            page_bytes: 4096,
        }
    }

    /// Haswell data TLB: 128 entries, 4 KiB pages.
    pub fn haswell_dtlb() -> TlbConfig {
        TlbConfig {
            entries: 128,
            page_bytes: 4096,
        }
    }
}

/// A fully-associative, LRU translation lookaside buffer.
///
/// # Examples
///
/// ```
/// use hbmd_uarch::{Tlb, TlbConfig};
///
/// let mut dtlb = Tlb::new(TlbConfig::haswell_dtlb());
/// assert!(!dtlb.access(0x1234)); // cold miss, entry installed
/// assert!(dtlb.access(0x1fff)); // same 4 KiB page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// `(page_number, lru_stamp)` per entry; `u64::MAX` page = invalid.
    entries: Vec<(u64, u64)>,
    page_shift: u32,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Build a TLB with the given sizing.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is zero or `page_bytes` is not a power of
    /// two.
    pub fn new(config: TlbConfig) -> Tlb {
        assert!(config.entries > 0, "TLB needs at least one entry");
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            config,
            entries: vec![(u64::MAX, 0); config.entries],
            page_shift: config.page_bytes.trailing_zeros(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Sizing this TLB was built with.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Translate `addr`; returns `true` on a hit. A miss installs the
    /// translation, evicting the LRU entry.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let page = addr >> self.page_shift;
        let mut victim = 0usize;
        let mut oldest = u64::MAX;
        for (i, entry) in self.entries.iter_mut().enumerate() {
            if entry.0 == page {
                entry.1 = self.clock;
                self.hits += 1;
                return true;
            }
            if entry.1 < oldest {
                oldest = entry.1;
                victim = i;
            }
        }
        self.misses += 1;
        self.entries[victim] = (page, self.clock);
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Invalidate all entries and zero statistics.
    pub fn reset(&mut self) {
        self.entries.fill((u64::MAX, 0));
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 4,
            page_bytes: 4096,
        })
    }

    #[test]
    fn same_page_hits() {
        let mut t = tiny();
        assert!(!t.access(0x0));
        assert!(t.access(0xfff));
        assert!(!t.access(0x1000));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction_over_capacity() {
        let mut t = tiny();
        for page in 0..4u64 {
            t.access(page * 4096);
        }
        t.access(0); // refresh page 0
        t.access(4 * 4096); // evicts page 1 (LRU)
        assert!(t.access(0), "page 0 survived");
        assert!(!t.access(4096), "page 1 evicted");
    }

    #[test]
    fn spread_accesses_thrash_small_tlb() {
        let mut t = tiny();
        for i in 0..10_000u64 {
            t.access((i % 64) * 4096);
        }
        assert!(t.miss_ratio() > 0.9);
    }

    #[test]
    fn reset_clears() {
        let mut t = tiny();
        t.access(0);
        t.reset();
        assert_eq!(t.misses(), 0);
        assert!(!t.access(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_pages_rejected() {
        let _ = Tlb::new(TlbConfig {
            entries: 4,
            page_bytes: 3000,
        });
    }
}
