use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::classifier::Classifier;
use crate::classifiers::split::{best_split, histogram, majority};
use crate::data::{Dataset, MlError, RowsView};

/// WEKA `REPTree`: a fast information-gain tree with reduced-error
/// pruning.
///
/// The tree is grown on two thirds of the training data (by raw
/// information gain, not gain ratio) and pruned bottom-up against the
/// held-out third: a subtree is replaced by a leaf whenever the leaf
/// makes no more holdout errors than the subtree.
///
/// # Examples
///
/// ```
/// use hbmd_ml::{Classifier, Dataset, RepTree};
///
/// let mut data = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()])?;
/// for i in 0..60 {
///     data.push(vec![i as f64], usize::from(i >= 30))?;
/// }
/// let mut tree = RepTree::new();
/// tree.fit(&data)?;
/// assert_eq!(tree.predict(&[50.0]), 1);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RepTree {
    min_leaf: usize,
    max_depth: usize,
    seed: u64,
    root: Option<Node>,
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        class: usize,
    },
    Inner {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl RepTree {
    /// The fitted tree, for the flat compiler in [`crate::compiled`].
    pub(crate) fn root(&self) -> Option<&Node> {
        self.root.as_ref()
    }

    /// REPTree with WEKA defaults (minimum 2 instances per leaf).
    pub fn new() -> RepTree {
        RepTree {
            min_leaf: 2,
            max_depth: 40,
            seed: 1,
            root: None,
        }
    }

    /// REPTree with a specific shuffle seed for the grow/prune split.
    pub fn with_seed(seed: u64) -> RepTree {
        RepTree {
            seed,
            ..RepTree::new()
        }
    }

    /// Number of leaves (0 before fit).
    pub fn num_leaves(&self) -> usize {
        self.root.as_ref().map(count_leaves).unwrap_or(0)
    }

    /// Number of internal nodes (0 before fit).
    pub fn num_internal_nodes(&self) -> usize {
        self.root.as_ref().map(count_inner).unwrap_or(0)
    }

    /// Depth in test nodes (0 before fit).
    pub fn depth(&self) -> usize {
        self.root.as_ref().map(node_depth).unwrap_or(0)
    }

    fn build(&self, data: &Dataset, indices: &[usize], depth: usize) -> Node {
        let counts = histogram(data, indices);
        let class = majority(data, indices);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= self.max_depth || indices.len() < 2 * self.min_leaf {
            return Node::Leaf { class };
        }
        match best_split(data, indices, self.min_leaf, false) {
            None => Node::Leaf { class },
            Some(split) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| data.rows()[i][split.feature] <= split.threshold);
                Node::Inner {
                    feature: split.feature,
                    threshold: split.threshold,
                    left: Box::new(self.build(data, &left_idx, depth + 1)),
                    right: Box::new(self.build(data, &right_idx, depth + 1)),
                }
            }
        }
    }

    /// Reduced-error pruning against `holdout` indices: returns the
    /// pruned node and its holdout error count.
    fn prune(
        &self,
        node: Node,
        data: &Dataset,
        grow: &[usize],
        holdout: &[usize],
    ) -> (Node, usize) {
        match node {
            Node::Leaf { class } => {
                let errors = holdout
                    .iter()
                    .filter(|&&i| data.labels()[i] != class)
                    .count();
                (Node::Leaf { class }, errors)
            }
            Node::Inner {
                feature,
                threshold,
                left,
                right,
            } => {
                let (grow_l, grow_r): (Vec<usize>, Vec<usize>) = grow
                    .iter()
                    .partition(|&&i| data.rows()[i][feature] <= threshold);
                let (hold_l, hold_r): (Vec<usize>, Vec<usize>) = holdout
                    .iter()
                    .partition(|&&i| data.rows()[i][feature] <= threshold);
                let (left, err_l) = self.prune(*left, data, &grow_l, &hold_l);
                let (right, err_r) = self.prune(*right, data, &grow_r, &hold_r);
                let subtree_errors = err_l + err_r;

                let leaf_class = majority(data, grow);
                let leaf_errors = holdout
                    .iter()
                    .filter(|&&i| data.labels()[i] != leaf_class)
                    .count();
                if leaf_errors <= subtree_errors {
                    (Node::Leaf { class: leaf_class }, leaf_errors)
                } else {
                    (
                        Node::Inner {
                            feature,
                            threshold,
                            left: Box::new(left),
                            right: Box::new(right),
                        },
                        subtree_errors,
                    )
                }
            }
        }
    }
}

fn count_leaves(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 1,
        Node::Inner { left, right, .. } => count_leaves(left) + count_leaves(right),
    }
}

fn count_inner(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 0,
        Node::Inner { left, right, .. } => 1 + count_inner(left) + count_inner(right),
    }
}

fn node_depth(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 0,
        Node::Inner { left, right, .. } => 1 + node_depth(left).max(node_depth(right)),
    }
}

impl Default for RepTree {
    fn default() -> RepTree {
        RepTree::new()
    }
}

impl Classifier for RepTree {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        data.check_trainable()?;
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(&mut SmallRng::seed_from_u64(self.seed));
        let cut = (order.len() * 2) / 3;
        let (grow, holdout) = order.split_at(cut.max(1));

        let grown = self.build(data, grow, 0);
        let root = if holdout.is_empty() {
            grown
        } else {
            self.prune(grown, data, grow, holdout).0
        };
        self.root = Some(root);
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> usize {
        let mut node = self
            .root
            .as_ref()
            .expect("RepTree::predict called before fit");
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Inner {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn name(&self) -> &str {
        "REPTree"
    }

    fn predict_batch(&self, rows: RowsView<'_>) -> Vec<usize> {
        match self.compile() {
            Some(compiled) => compiled.predict_batch(rows),
            None => rows.iter().map(|r| self.predict(r)).collect(),
        }
    }
}

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for RepTree {
    fn snap(&self, w: &mut SnapWriter) {
        self.min_leaf.snap(w);
        self.max_depth.snap(w);
        self.seed.snap(w);
        self.root.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RepTree {
            min_leaf: Snap::unsnap(r)?,
            max_depth: Snap::unsnap(r)?,
            seed: Snap::unsnap(r)?,
            root: Snap::unsnap(r)?,
        })
    }
}

impl Snap for Node {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Node::Leaf { class } => {
                w.put_u8(0);
                class.snap(w);
            }
            Node::Inner {
                feature,
                threshold,
                left,
                right,
            } => {
                w.put_u8(1);
                feature.snap(w);
                threshold.snap(w);
                left.snap(w);
                right.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(Node::Leaf {
                class: Snap::unsnap(r)?,
            }),
            1 => Ok(Node::Inner {
                feature: Snap::unsnap(r)?,
                threshold: Snap::unsnap(r)?,
                left: Snap::unsnap(r)?,
                right: Snap::unsnap(r)?,
            }),
            other => Err(SnapError::Invalid(format!("RepTree node tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_clean_boundary() {
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        for i in 0..90 {
            d.push(vec![i as f64], usize::from(i >= 45)).expect("row");
        }
        let mut tree = RepTree::new();
        tree.fit(&d).expect("fit");
        assert_eq!(tree.predict(&[0.0]), 0);
        assert_eq!(tree.predict(&[89.0]), 1);
        assert!(tree.num_leaves() >= 2);
    }

    #[test]
    fn pruning_controls_noise_overfit() {
        // Labels are noise: the pruned tree should stay tiny.
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        for i in 0..120 {
            d.push(vec![i as f64], (i * 13 + 5) % 2).expect("row");
        }
        let mut tree = RepTree::new();
        tree.fit(&d).expect("fit");
        assert!(
            tree.num_leaves() <= 20,
            "noise tree kept {} leaves",
            tree.num_leaves()
        );
    }

    #[test]
    fn different_seeds_may_build_different_trees_but_both_work() {
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        for i in 0..90 {
            d.push(vec![i as f64], usize::from(i >= 45)).expect("row");
        }
        for seed in [1, 2, 3] {
            let mut tree = RepTree::with_seed(seed);
            tree.fit(&d).expect("fit");
            assert_eq!(tree.predict(&[80.0]), 1, "seed {seed}");
        }
    }

    #[test]
    fn structural_invariant_holds() {
        let mut d = Dataset::new(vec!["x".into(), "y".into()], vec!["a".into(), "b".into()])
            .expect("schema");
        for i in 0..100 {
            d.push(
                vec![(i % 10) as f64, (i / 10) as f64],
                usize::from((i % 10) >= 5),
            )
            .expect("row");
        }
        let mut tree = RepTree::new();
        tree.fit(&d).expect("fit");
        assert_eq!(tree.num_leaves(), tree.num_internal_nodes() + 1);
    }

    #[test]
    fn rejects_untrainable() {
        let d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        assert!(RepTree::new().fit(&d).is_err());
    }
}
