//! Property-based equivalence proofs for the compiled flat evaluators:
//! every compilable scheme fitted on an arbitrary dataset must agree
//! with its pointer-walking interpreter on arbitrary probe windows —
//! including NaN- and infinity-bearing ones — both per-window and
//! batched, and a detector restored from an `HBMDSNAP` or `HBMDFLTS`
//! image must recompile to an evaluator identical to the original's.

use std::sync::OnceLock;

use hbmd::core::snapshot::{decode, decode_fleet, encode, encode_fleet, MonitorSnapshot};
use hbmd::core::{ClassifierKind, DetectorBuilder, FeatureSet, OnlineDetector};
use hbmd::events::{FeatureVector, HpcEvent};
use hbmd::malware::{AppClass, SampleId};
use hbmd::ml::{Classifier, Dataset, RowsView};
use hbmd::perf::{DataRow, HpcDataset};
use proptest::prelude::*;

/// Feature width of the randomized training sets (kept narrow so tree
/// induction stays fast under proptest).
const WIDTH: usize = 4;

/// Every scheme the compilation pass covers.
const COMPILABLE: [ClassifierKind; 9] = [
    ClassifierKind::ZeroR,
    ClassifierKind::OneR,
    ClassifierKind::DecisionStump,
    ClassifierKind::JRip,
    ClassifierKind::J48,
    ClassifierKind::RepTree,
    ClassifierKind::AdaBoost,
    ClassifierKind::Bagging,
    ClassifierKind::RandomForest,
];

/// An arbitrary (but trainable) dataset: quantized feature values so
/// tree induction finds real split points, proptest-chosen labels with
/// the first rows pinned to distinct classes so no scheme sees a
/// single-class set.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    let row = (prop::collection::vec(0u8..=40, WIDTH), 0usize..3);
    prop::collection::vec(row, 16..48).prop_map(|rows| {
        let mut data = Dataset::new(
            (0..WIDTH).map(|f| format!("f{f}")).collect(),
            vec!["benign".into(), "malware".into(), "firmware".into()],
        )
        .expect("valid schema");
        for (i, (values, label)) in rows.into_iter().enumerate() {
            let label = if i < 2 { i } else { label };
            let values = values.into_iter().map(|v| f64::from(v) * 0.25).collect();
            data.push(values, label).expect("row width matches schema");
        }
        data
    })
}

/// An arbitrary probe window: mostly in-range values, salted with NaN
/// and both infinities so every comparison edge of the flat evaluators
/// is exercised against the interpreters.
fn window_strategy() -> impl Strategy<Value = Vec<f64>> {
    let value = (0u8..8, -2.0..12.0f64).prop_map(|(tag, v)| match tag {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => v,
    });
    prop::collection::vec(value, WIDTH)
}

fn features(level: f64) -> FeatureVector {
    FeatureVector::from_slice(&[level; HpcEvent::COUNT]).expect("full-width vector")
}

/// The separable full-width set the snapshot-roundtrip detectors train
/// on (same shape as the monitor-codec proptests).
fn synthetic_dataset() -> HpcDataset {
    let mut rows = Vec::new();
    for i in 0..40 {
        let class = AppClass::ALL[i % AppClass::COUNT];
        let level = if class == AppClass::Benign {
            1.0
        } else {
            100.0
        };
        rows.push(DataRow {
            sample: SampleId(i as u32),
            class,
            features: features(level),
        });
    }
    HpcDataset::from_rows(rows)
}

/// Trained monitors over compilable schemes, built once (training is
/// the expensive part) and shared across proptest cases.
fn monitors() -> &'static Vec<OnlineDetector> {
    static MONITORS: OnceLock<Vec<OnlineDetector>> = OnceLock::new();
    MONITORS.get_or_init(|| {
        let dataset = synthetic_dataset();
        let configs: &[(ClassifierKind, FeatureSet)] = &[
            (ClassifierKind::OneR, FeatureSet::Top(8)),
            (ClassifierKind::JRip, FeatureSet::Full16),
            (ClassifierKind::J48, FeatureSet::Top(8)),
            (ClassifierKind::RepTree, FeatureSet::Full16),
            (ClassifierKind::AdaBoost, FeatureSet::Top(8)),
            (ClassifierKind::RandomForest, FeatureSet::Full16),
        ];
        configs
            .iter()
            .map(|&(kind, features)| {
                let detector = DetectorBuilder::new()
                    .classifier(kind)
                    .feature_set(features)
                    .train_binary(&dataset)
                    .expect("train on separable data");
                OnlineDetector::builder(detector)
                    .window(4)
                    .threshold(3)
                    .hysteresis(2, 2)
                    .build()
                    .expect("valid monitor config")
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tentpole equivalence: for every compilable scheme fitted on an
    /// arbitrary dataset, the flat evaluator agrees with the
    /// pointer-walking interpreter on every probe window, and batched
    /// columnar prediction equals per-window prediction.
    #[test]
    fn compiled_matches_interpreter(
        data in dataset_strategy(),
        probes in prop::collection::vec(window_strategy(), 1..24),
    ) {
        let flat: Vec<f64> = probes.iter().flatten().copied().collect();
        let batch = RowsView::new(&flat, WIDTH);
        for kind in COMPILABLE {
            let mut model = kind.instantiate();
            if model.fit(&data).is_err() {
                // A degenerate draw (e.g. boosting stopping with no
                // members) has nothing to compile; skip the scheme.
                continue;
            }
            let compiled = model.compile().expect("fitted models compile");
            for probe in &probes {
                prop_assert_eq!(
                    compiled.predict(probe),
                    model.predict(probe),
                    "{} compiled/interpreted disagree on {:?}",
                    kind.name(),
                    probe
                );
            }
            let per_window: Vec<usize> = probes.iter().map(|p| model.predict(p)).collect();
            prop_assert_eq!(
                compiled.predict_batch(batch),
                per_window.clone(),
                "{} batch disagrees with per-window",
                kind.name()
            );
            // The suite dispatch path must route through the same
            // compiled evaluator.
            prop_assert_eq!(
                model.predict_batch(batch),
                per_window,
                "{} TrainedModel::predict_batch disagrees",
                kind.name()
            );
            // Fitted training rows must round-trip too.
            let on_train: Vec<usize> = data.rows().iter().map(|r| model.predict(r)).collect();
            prop_assert_eq!(compiled.predict_batch(data.rows()), on_train);
        }
    }

    /// `HBMDSNAP` roundtrip: a restored monitor's detector recompiles
    /// to an evaluator with identical footprint and identical verdicts,
    /// and re-encoding the restored monitor is byte-identical — the
    /// compiled cache never leaks into the image.
    #[test]
    fn snap_restore_recompiles_identically(
        index in 0usize..6,
        cursor in 0u64..100_000,
        digest in 0u64..u64::MAX,
        levels in prop::collection::vec(
            (0u8..5, 0.0..150.0f64)
                .prop_map(|(tag, v)| if tag == 0 { f64::NAN } else { v }),
            1..12,
        ),
    ) {
        let monitor = monitors()[index % monitors().len()].clone();
        let snapshot = MonitorSnapshot::new(monitor, cursor, digest);
        let bytes = encode(&snapshot);
        let restored = decode(&bytes, digest).expect("clean image decodes");
        prop_assert_eq!(encode(&restored), bytes);

        let before = snapshot.monitor.detector();
        let after = restored.monitor.detector();
        let compiled_before = before.compiled().expect("compilable scheme");
        let compiled_after = after.compiled().expect("recompiled on restore");
        prop_assert_eq!(compiled_before.node_count(), compiled_after.node_count());
        prop_assert_eq!(compiled_before.byte_size(), compiled_after.byte_size());
        for &level in &levels {
            let window = features(level);
            prop_assert_eq!(before.classify(&window), after.classify(&window));
            prop_assert_eq!(
                before.classify_sanitized(&window),
                after.classify_sanitized(&window)
            );
        }
    }

    /// `HBMDFLTS` roundtrip: the shared fleet detector recompiles
    /// identically after restore, and re-encoding is byte-identical.
    #[test]
    fn fleet_restore_recompiles_identically(
        index in 0usize..6,
        shards in 1u32..8,
        digest in 0u64..u64::MAX,
        level in 0.0..150.0f64,
    ) {
        let detector = monitors()[index % monitors().len()].detector();
        let bytes = encode_fleet(detector, shards, digest, &[]);
        let restored = decode_fleet(&bytes, digest).expect("clean image decodes");
        prop_assert_eq!(restored.lost_sections, 0);
        prop_assert_eq!(
            encode_fleet(&restored.detector, shards, digest, &[]),
            bytes
        );

        let compiled_before = detector.compiled().expect("compilable scheme");
        let compiled_after = restored.detector.compiled().expect("recompiled on restore");
        prop_assert_eq!(compiled_before.node_count(), compiled_after.node_count());
        prop_assert_eq!(compiled_before.byte_size(), compiled_after.byte_size());
        for &probe in &[level, f64::NAN] {
            let window = features(probe);
            prop_assert_eq!(
                detector.classify(&window),
                restored.detector.classify(&window)
            );
        }
    }
}
