use std::fmt;

use hbmd_fpga::DatapathError;
use hbmd_ml::MlError;
use hbmd_perf::PerfError;

/// Errors produced by the detection pipeline.
///
/// Marked `#[non_exhaustive]`: the pipeline will grow new failure
/// modes, and downstream `match`es must keep a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The machine-learning layer failed (training, schema, PCA).
    Ml(MlError),
    /// The collection layer failed (configuration, parsing, I/O).
    Perf(PerfError),
    /// Hardware synthesis failed (untrained model).
    Synthesis(DatapathError),
    /// A pipeline configuration value is unusable.
    Config(String),
    /// A monitor snapshot could not be written, or was refused at
    /// load time (corrupt, version-mismatched, config-mismatched).
    Snapshot(crate::snapshot::SnapshotError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Ml(e) => write!(f, "ml error: {e}"),
            CoreError::Perf(e) => write!(f, "collection error: {e}"),
            CoreError::Synthesis(e) => write!(f, "synthesis error: {e}"),
            CoreError::Config(message) => write!(f, "invalid configuration: {message}"),
            CoreError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ml(e) => Some(e),
            CoreError::Perf(e) => Some(e),
            CoreError::Synthesis(e) => Some(e),
            CoreError::Config(_) => None,
            CoreError::Snapshot(e) => Some(e),
        }
    }
}

impl From<crate::snapshot::SnapshotError> for CoreError {
    fn from(e: crate::snapshot::SnapshotError) -> CoreError {
        CoreError::Snapshot(e)
    }
}

impl From<MlError> for CoreError {
    fn from(e: MlError) -> CoreError {
        CoreError::Ml(e)
    }
}

impl From<PerfError> for CoreError {
    fn from(e: PerfError) -> CoreError {
        CoreError::Perf(e)
    }
}

impl From<DatapathError> for CoreError {
    fn from(e: DatapathError) -> CoreError {
        CoreError::Synthesis(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_chaining() {
        let e: CoreError = MlError::EmptyDataset.into();
        assert!(e.to_string().contains("ml error"));
        assert!(e.source().is_some());

        let e: CoreError = PerfError::Config("x".to_owned()).into();
        assert!(e.to_string().contains("collection"));

        let e = CoreError::Config("bad".to_owned());
        assert!(e.source().is_none());
    }
}
