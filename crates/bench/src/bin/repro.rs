//! `repro` — regenerate every table and figure of the reference
//! evaluation.
//!
//! ```text
//! repro [--scale F] [--paper] [--fast] [--threads N] [--bench-json PATH] <experiment>...
//!
//! experiments:
//!   table1 table2 fig6 fig8 fig9 fig10 fig11 fig12
//!   fig13 fig14 fig15 fig16 fig17 fig18 fig19
//!   ablate-ensemble ablate-mux ablate-noise ablate-features
//!   ablate-mlp ablate-prefetch
//!   roc detect-latency robustness adversarial emit-hdl
//!   all
//! ```
//!
//! `--scale F` shrinks the catalog to a fraction `F` (default 0.2);
//! `--paper` runs the full 3,070-sample catalog; `--fast` is shorthand
//! for `--scale 0.05` (CI smoke timing). `--threads N` sets both the
//! collector's and the experiment layer's worker count — results are
//! byte-identical at any value. All randomness is seeded, so repeated
//! runs at the same scale are identical.
//!
//! Each run also writes `BENCH_repro.json` (path override:
//! `--bench-json`): wall-clock per experiment, thread counts, and the
//! collection-cache hit/miss counters. Collection is memoized in a
//! run-local [`CollectCache`], so the `misses` counter equals the
//! number of *distinct* collector configurations the run touched.
//!
//! Observability (all off by default; stdout is byte-identical without
//! these flags):
//!
//! * `--trace-jsonl PATH` — stream every span (collection, training,
//!   per-experiment phases) as JSON lines to `PATH`;
//! * `--metrics-json PATH` — write the run's [`RunManifest`] plus the
//!   full metrics snapshot (counters, gauges, histograms) to `PATH`.
//!
//! Either flag also prints a metrics summary table to stderr at the
//! end of the run.
//!
//! Subcommands (dispatched on the first positional; the default
//! experiment mode and its byte-identical stdout are untouched):
//!
//! * `repro serve [--scale F|--fast|--paper] [--addr HOST:PORT]
//!   [--windows N] [--threads N] [--streams N] [--shards N]` — train
//!   one shared J48 detector, then monitor a fleet of independent
//!   synthetic streams (default 2,000) hash-sharded across supervised
//!   worker shards, exposing `/metrics` (Prometheus text format
//!   0.0.4), `/healthz`, per-shard `/readyz` and `/manifest` over HTTP
//!   until killed (or after `--windows N` per stream);
//! * `repro trace-report <trace.jsonl> [--collapsed PATH]` — span-tree
//!   analysis of a `--trace-jsonl` log: per-name aggregates ranked by
//!   self time, the critical path, and optional folded stacks for
//!   flamegraph renderers;
//! * `repro bench-diff --baseline PATH --current PATH
//!   [--max-regress-pct N]` — compare two `BENCH_repro.json` reports,
//!   exiting nonzero on wall-clock or cache regressions; reports from
//!   different versions, config digests, or phase sets are refused.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hbmd_bench::{
    config_at_scale, config_digest, diff, fleet, pct, resilience, BenchReport, PhaseTiming,
    TextTable,
};
use hbmd_core::experiments::{
    self, adversarial, binary, ensemble, hardware, latency, multiclass, pca, robustness, roc,
    ExperimentConfig,
};
use hbmd_core::snapshot::{self, SnapshotError};
use hbmd_core::{
    to_binary_dataset, ClassifierKind, CollectCache, DetectorBuilder, FeaturePlan, FeatureSet,
    OnlineDetector, StreamStanding, StreamState,
};
use hbmd_fpga::SynthConfig;
use hbmd_malware::AppClass;
use hbmd_ml::{Classifier, Evaluation};
use hbmd_obs::health::FleetHealth;
use hbmd_obs::manifest::RunManifest;
use hbmd_obs::recorder::{read_bundle, RecorderHub, Trigger};
use hbmd_obs::trace::Trace;
use hbmd_obs::{json, serve, JsonlSink, Obs};
use hbmd_perf::{PerfError, PmuConfig, SourceSelect};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Subcommands dispatch on the first positional before flag parsing,
    // so the default experiment mode — and its byte-identical stdout —
    // is untouched.
    match args.first().map(String::as_str) {
        Some("serve") => return serve_mode(&args[1..]),
        Some("chaos") => return chaos_mode(&args[1..]),
        Some("trace-report") => return trace_report(&args[1..]),
        Some("bench-diff") => return bench_diff(&args[1..]),
        Some("bundle-report") => return bundle_report(&args[1..]),
        _ => {}
    }
    let mut scale = 0.2f64;
    let mut threads: Option<usize> = None;
    let mut bench_json = "BENCH_repro.json".to_owned();
    let mut trace_jsonl: Option<String> = None;
    let mut metrics_json: Option<String> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => match iter.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(f) if f > 0.0 && f <= 1.0 => scale = f,
                _ => {
                    eprintln!("--scale needs a fraction in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            "--paper" => scale = 1.0,
            "--fast" => scale = 0.05,
            "--threads" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--bench-json" => match iter.next() {
                Some(path) => bench_json = path.clone(),
                None => {
                    eprintln!("--bench-json needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--trace-jsonl" => match iter.next() {
                Some(path) => trace_jsonl = Some(path.clone()),
                None => {
                    eprintln!("--trace-jsonl needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics-json" => match iter.next() {
                Some(path) => metrics_json = Some(path.clone()),
                None => {
                    eprintln!("--metrics-json needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => experiments.push(other.to_owned()),
        }
    }
    if experiments.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1",
            "fig6",
            "fig8",
            "table2",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "fig19",
            "ablate-ensemble",
            "ablate-mux",
            "ablate-noise",
            "ablate-features",
            "ablate-mlp",
            "ablate-prefetch",
            "roc",
            "detect-latency",
            "robustness",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    }

    let mut config = config_at_scale(scale);
    if let Some(n) = threads {
        config.threads = n;
        config.collector.threads = n;
    }
    println!(
        "# hbmd repro — catalog scale {scale} ({} samples), {} windows x {} instructions, {} threads\n",
        config.catalog().len(),
        config.collector.sampler.windows_per_sample,
        config.collector.sampler.instructions_per_window,
        config.threads,
    );

    // A fresh obs context scopes this run's metrics and spans away from
    // whatever the default registry accumulated. Installed only when an
    // observability flag asks for output, so the default run pays no
    // sink dispatch and prints byte-identical stdout.
    let observing = trace_jsonl.is_some() || metrics_json.is_some();
    let obs_guard = if observing {
        let mut obs = Obs::new();
        if let Some(path) = &trace_jsonl {
            match JsonlSink::create(path) {
                Ok(sink) => obs = obs.with_sink(Arc::new(sink)),
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        Some(hbmd_obs::install(obs))
    } else {
        None
    };

    // Run-local cache: its miss counter is exactly the number of
    // distinct collector configurations this invocation collected.
    let cache = CollectCache::new();
    let started = Instant::now();
    let mut report = BenchReport {
        version: env!("CARGO_PKG_VERSION").to_owned(),
        config_digest: config_digest(&config),
        scale,
        threads: config.threads,
        collector_threads: config.collector.threads,
        phases: Vec::with_capacity(experiments.len()),
        cache_hits: 0,
        cache_misses: 0,
        total_ms: 0,
    };
    for experiment in &experiments {
        let phase_started = Instant::now();
        let span = hbmd_obs::span!("experiment", name = experiment.as_str());
        let result = run(experiment, &config, &cache);
        drop(span);
        let windows_per_sec = match result {
            Ok(rate) => rate,
            Err(e) => {
                eprintln!("{experiment}: {e}");
                return ExitCode::FAILURE;
            }
        };
        report.phases.push(PhaseTiming {
            name: experiment.clone(),
            wall_ms: phase_started.elapsed().as_millis(),
            windows_per_sec,
        });
        println!();
    }
    report.total_ms = started.elapsed().as_millis();
    report.set_cache_stats(cache.stats());
    match std::fs::write(&bench_json, report.to_json()) {
        Ok(()) => eprintln!(
            "wrote {bench_json} ({} collections for {} lookups, {} ms total)",
            report.cache_misses,
            report.cache_hits + report.cache_misses,
            report.total_ms
        ),
        Err(e) => {
            eprintln!("cannot write {bench_json}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(guard) = obs_guard {
        let snapshot = guard.registry().snapshot();
        if let Some(path) = &metrics_json {
            let mut manifest = build_manifest(scale, &config, &experiments);
            manifest.wall.total_ms = started.elapsed().as_millis();

            let body = snapshot.to_json();
            let combined = format!(
                "{{\n  \"manifest\": {},\n{}",
                manifest.to_json(),
                body.strip_prefix("{\n").unwrap_or(&body)
            );
            if let Err(e) = std::fs::write(path, combined) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        if let Err(e) = guard.obs().flush() {
            let path = trace_jsonl.as_deref().unwrap_or("trace sink");
            eprintln!("cannot flush {path}: {e}");
            return ExitCode::FAILURE;
        }
        if trace_jsonl.is_some() {
            eprintln!("wrote {}", trace_jsonl.as_deref().unwrap_or_default());
        }
        eprint!("\n{}", snapshot.summary());
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    println!(
        "usage: repro [--scale F | --paper | --fast] [--threads N] [--bench-json PATH]\n\
         \x20      [--trace-jsonl PATH] [--metrics-json PATH] <experiment>...\n\
         \x20      repro serve [--scale F | --fast] [--addr HOST:PORT] [--windows N]\n\
         \x20                  [--streams N] [--shards N] [--panic-shard S]\n\
         \x20                  [--checkpoint PATH] [--checkpoint-every N]\n\
         \x20                  [--record-ring N] [--bundle-dir PATH]\n\
         \x20                  [--source sim|perf]\n\
         \x20      repro chaos [--scale F] [--windows N] [--checkpoint-every N] [--dir PATH]\n\
         \x20      repro trace-report <trace.jsonl> [--collapsed PATH]\n\
         \x20      repro bench-diff --baseline PATH --current PATH [--max-regress-pct N]\n\
         \x20      repro bundle-report <bundle-dir>\n\
         experiments: table1 table2 fig6 fig8 fig9 fig10 fig11 fig12 fig13 fig14\n\
         \x20            fig15 fig16 fig17 fig18 fig19 ablate-ensemble ablate-mux\n\
         \x20            ablate-noise ablate-features ablate-mlp ablate-prefetch\n\
         \x20            roc detect-latency robustness adversarial fleet predict emit-hdl all"
    );
}

/// The run's identity card, shared by `--metrics-json` and the
/// `/manifest` endpoint of `repro serve`.
fn build_manifest(scale: f64, config: &ExperimentConfig, experiments: &[String]) -> RunManifest {
    let mut manifest = RunManifest::new("repro", env!("CARGO_PKG_VERSION"));
    manifest.scale = scale;
    manifest.source = config.collector.source.name().to_owned();
    manifest.threads = config.threads;
    manifest.collector_threads = config.collector.threads;
    manifest.seeds = vec![
        ("catalog".to_owned(), config.catalog_seed),
        ("split".to_owned(), config.split_seed),
    ];
    // Same thread-normalized digest `BENCH_repro.json` is stamped with.
    manifest.config_digest =
        u64::from_str_radix(&config_digest(config), 16).expect("digest is 16 hex digits");
    // The workspace shares one version across the hbmd crates.
    manifest.crates = [
        "hbmd-events",
        "hbmd-uarch",
        "hbmd-malware",
        "hbmd-perf",
        "hbmd-ml",
        "hbmd-fpga",
        "hbmd-core",
        "hbmd-obs",
        "hbmd-bench",
    ]
    .iter()
    .map(|name| ((*name).to_owned(), env!("CARGO_PKG_VERSION").to_owned()))
    .collect();
    manifest.experiments = experiments.to_vec();
    manifest
}

/// Cooperative SIGINT flag: the handler only raises it; the pipeline
/// polls it, flushes a final checkpoint, and exits cleanly.
static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigint_handler() {
    extern "C" fn on_sigint(_: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    // SIGINT = 2 everywhere we build; no libc crate needed.
    unsafe {
        signal(2, on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

/// Train the serve/chaos detector: J48 on the top-8 features with the
/// 4-window vote the serve endpoint has always used.
fn train_monitor(
    config: &ExperimentConfig,
    label: &str,
) -> Result<OnlineDetector, Box<dyn std::error::Error>> {
    let cache = CollectCache::new();
    let collection = cache.collect(config)?;
    let detector = DetectorBuilder::new()
        .classifier(ClassifierKind::J48)
        .feature_set(FeatureSet::Top(8))
        .train_binary(&collection.dataset)?;
    eprintln!(
        "{label}: {:.1}% held-out accuracy; monitoring with a 4-window vote, threshold 3",
        detector.evaluation().accuracy() * 100.0
    );
    Ok(OnlineDetector::builder(detector)
        .window(4)
        .threshold(3)
        .build()?)
}

/// Everything `repro serve` parses from its command line.
struct ServeOptions {
    scale: f64,
    addr: String,
    /// Windows *per stream*; 0 = run until killed.
    windows_limit: u64,
    checkpoint: Option<PathBuf>,
    checkpoint_every: u64,
    /// Monitored endpoint streams in the fleet.
    streams: u64,
    /// Worker shards the streams are hashed across.
    shards: usize,
    /// Chaos: shards given a single injected worker panic.
    panic_shards: Vec<usize>,
    /// Flight-recorder ring capacity per shard; 0 = recorder off.
    record_ring: usize,
    /// Where anomaly-triggered diagnostic bundles land.
    bundle_dir: Option<PathBuf>,
}

/// `repro serve` — train one shared detector, then run a *fleet* of
/// independently-voting monitored streams (default 2,000), hash-sharded
/// across supervised worker shards, while exposing `/metrics`,
/// `/healthz`, per-shard `/readyz` and `/manifest` over HTTP. With
/// `--windows N` every stream stops after N windows (integration
/// tests, smoke runs); without it the fleet paces at the paper's 10 ms
/// window cadence and sheds load under backpressure until killed. With
/// `--checkpoint PATH` all stream cursors are checkpointed into one
/// multiplexed snapshot and a restart resumes from the last good
/// sections instead of retraining.
fn serve_mode(args: &[String]) -> ExitCode {
    let mut scale = 0.05f64;
    let mut addr = "127.0.0.1:9185".to_owned();
    let mut windows_limit = 0u64;
    let mut threads: Option<usize> = None;
    let mut checkpoint: Option<PathBuf> = None;
    let mut checkpoint_every = 64u64;
    let mut streams = 2_000u64;
    let mut shards = 8usize;
    let mut panic_shards: Vec<usize> = Vec::new();
    let mut record_ring = 0usize;
    let mut bundle_dir: Option<PathBuf> = None;
    let mut source = SourceSelect::Sim;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => match iter.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(f) if f > 0.0 && f <= 1.0 => scale = f,
                _ => {
                    eprintln!("--scale needs a fraction in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            "--fast" => scale = 0.05,
            "--paper" => scale = 1.0,
            "--addr" => match iter.next() {
                Some(a) => addr = a.clone(),
                None => {
                    eprintln!("--addr needs HOST:PORT (port 0 = ephemeral)");
                    return ExitCode::FAILURE;
                }
            },
            "--windows" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n >= 1 => windows_limit = n,
                _ => {
                    eprintln!("--windows needs a positive count");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint" => match iter.next() {
                Some(path) => checkpoint = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--checkpoint needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint-every" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n >= 1 => checkpoint_every = n,
                _ => {
                    eprintln!("--checkpoint-every needs a positive window count");
                    return ExitCode::FAILURE;
                }
            },
            "--streams" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n >= 1 => streams = n,
                _ => {
                    eprintln!("--streams needs a positive count");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => {
                    eprintln!("--shards needs a positive count");
                    return ExitCode::FAILURE;
                }
            },
            "--panic-shard" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(s) => panic_shards.push(s),
                _ => {
                    eprintln!("--panic-shard needs a shard index");
                    return ExitCode::FAILURE;
                }
            },
            "--record-ring" => match iter.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => record_ring = n,
                _ => {
                    eprintln!("--record-ring needs a positive slot count");
                    return ExitCode::FAILURE;
                }
            },
            "--bundle-dir" => match iter.next() {
                Some(path) => bundle_dir = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--bundle-dir needs a directory path");
                    return ExitCode::FAILURE;
                }
            },
            "--source" => match iter.next().map(|s| s.parse::<SourceSelect>()) {
                Some(Ok(s)) => source = s,
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--source needs `sim` or `perf`");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("serve: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    // Live counters are best-effort: an unprivileged or perf-less host
    // degrades gracefully to the simulator instead of refusing to
    // serve (the manifest records which source actually ran).
    if let Err(PerfError::BackendUnavailable { reason }) = source.probe() {
        eprintln!("serve: counter source `{source}` unavailable ({reason}); falling back to sim");
        source = SourceSelect::Sim;
    }
    let mut config = config_at_scale(scale);
    config.collector.source = source;
    if let Some(n) = threads {
        config.threads = n;
        config.collector.threads = n;
    }
    // A bundle directory implies recording: default the ring to 256
    // slots per shard so `--bundle-dir` alone produces useful bundles.
    if bundle_dir.is_some() && record_ring == 0 {
        record_ring = 256;
    }
    let options = ServeOptions {
        scale,
        addr,
        windows_limit,
        checkpoint,
        checkpoint_every,
        streams,
        shards,
        panic_shards,
        record_ring,
        bundle_dir,
    };
    match run_monitor(&config, &options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_monitor(
    config: &ExperimentConfig,
    options: &ServeOptions,
) -> Result<(), Box<dyn std::error::Error>> {
    // Fresh context so the endpoint exports only this fleet's counters;
    // the guard lives for the whole serve session.
    let guard = hbmd_obs::install(Obs::new());
    install_sigint_handler();
    let fleet_health = Arc::new(FleetHealth::new(options.shards));

    let config_digest_u64 =
        u64::from_str_radix(&config_digest(config), 16).expect("digest is 16 hex digits");
    // A good multiplexed checkpoint for this exact configuration
    // carries the trained detector, so a restart resumes the whole
    // fleet without retraining; anything refused falls back to a fresh
    // training run (and says why). Per-stream cursor restore happens
    // inside the fleet pipeline from the same file.
    let resumed = match &options.checkpoint {
        Some(path) if path.exists() => match snapshot::load_fleet(path, config_digest_u64) {
            Ok(restore) => {
                let high_water = restore.streams.iter().map(|s| s.cursor).max().unwrap_or(0);
                eprintln!(
                        "serve: resumed from {} at window {high_water} ({} stream sections, {} lost, training skipped)",
                        path.display(),
                        restore.streams.len(),
                        restore.lost_sections,
                    );
                Some(Arc::new(restore.detector))
            }
            Err(e) => {
                eprintln!("serve: checkpoint refused ({e}); retraining");
                None
            }
        },
        _ => None,
    };
    let (detector, template) = match resumed {
        Some(detector) => (detector, StreamState::new(4, 3, 1, 1)?),
        None => {
            eprintln!(
                "serve: training J48 detector at scale {} ({} samples)...",
                options.scale,
                config.catalog().len()
            );
            train_monitor(config, "serve")?.into_parts()
        }
    };

    let manifest = build_manifest(options.scale, config, &["serve".to_owned()]);
    // `hbmd_build_info`: the Prometheus idiom for joining run identity
    // onto any other series — a constant-1 gauge whose labels carry the
    // version, config digest, and counter source.
    let source_name = config.collector.source.to_string();
    guard
        .registry()
        .gauge_with(
            "build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("config_digest", &config_digest(config)),
                ("source", &source_name),
            ],
        )
        .set(1);

    // Flight recorder: per-shard rings shared between the fleet's hot
    // path (writer) and the debug endpoints (trigger/drain).
    let recorder = if options.record_ring > 0 {
        let mut hub = RecorderHub::new(options.shards, options.record_ring)
            .with_manifest_json(manifest.to_json())
            .with_families(AppClass::ALL.iter().map(|c| c.name().to_owned()).collect());
        if let Some(dir) = &options.bundle_dir {
            hub = hub.with_bundle_dir(dir);
        }
        Some(Arc::new(hub))
    } else {
        None
    };
    let debug: Option<serve::DebugHandler> = recorder.as_ref().map(|hub| {
        let hub = Arc::clone(hub);
        let handler = move |path: &str| match path {
            "/debug/recorder" => Some(serve::DebugReply {
                status: 200,
                body: hub.stats_json(),
            }),
            "/debug/bundle" => {
                let mut trigger = Trigger::new("http_request");
                trigger.details = "on-demand bundle via /debug/bundle".to_owned();
                Some(match hub.trigger(&trigger) {
                    Ok(Some(outcome)) => serve::DebugReply {
                        status: 200,
                        body: format!(
                            "{{\"bundle\": {}, \"events\": {}}}\n",
                            json::string(&outcome.path.display().to_string()),
                            outcome.events
                        ),
                    },
                    Ok(None) => serve::DebugReply {
                        status: 503,
                        body: "{\"error\": \"no bundle directory configured or bundle cap reached\"}\n"
                            .to_owned(),
                    },
                    Err(e) => serve::DebugReply {
                        status: 500,
                        body: format!("{{\"error\": {}}}\n", json::string(&e.to_string())),
                    },
                })
            }
            _ => None,
        };
        Arc::new(handler) as serve::DebugHandler
    });
    let server = serve::serve(
        &options.addr,
        serve::ServeContext {
            registry: Arc::clone(guard.registry()),
            manifest_json: manifest.to_json(),
            health: None,
            fleet: Some(Arc::clone(&fleet_health)),
            debug,
        },
    )?;
    eprintln!(
        "serve: http://{} — /metrics (Prometheus 0.0.4), /healthz, /readyz, /manifest",
        server.local_addr()
    );
    if let Some(hub) = &recorder {
        eprintln!(
            "serve: flight recorder on — {} slots x {} shards, bundles to {} (/debug/recorder, /debug/bundle)",
            options.record_ring,
            hub.shards(),
            options
                .bundle_dir
                .as_ref()
                .map_or("(disabled)".to_owned(), |d| d.display().to_string()),
        );
    }
    eprintln!(
        "serve: fleet of {} streams across {} shards",
        options.streams, options.shards
    );
    if let Some(path) = &options.checkpoint {
        eprintln!(
            "serve: checkpointing to {} every {} windows per shard",
            path.display(),
            options.checkpoint_every
        );
    }
    if !options.panic_shards.is_empty() {
        // Injected panics are expected: one stderr line each instead of
        // a full backtrace per restart.
        std::panic::set_hook(Box::new(|info| {
            eprintln!("serve: worker panic: {info}");
        }));
    }

    // Injected shard panics land a third of the way into bounded runs
    // (48 windows in for unbounded ones), leaving room to observe both
    // the fault and the recovery.
    let panic_cursor = if options.windows_limit > 0 {
        (options.windows_limit / 3).max(8)
    } else {
        48
    };
    let fleet_config = fleet::FleetConfig {
        checkpoint_every: if options.checkpoint.is_some() {
            options.checkpoint_every
        } else {
            0
        },
        checkpoint_path: options.checkpoint.clone(),
        config_digest: config_digest_u64,
        pristine_stream: template,
        // Pace at the paper's 10 ms sampling period when running as a
        // long-lived monitor; stream at full speed for bounded runs.
        pace: (options.windows_limit == 0).then(|| Duration::from_millis(10)),
        // A long-lived fleet sheds load under backpressure (hot streams
        // last); bounded smoke runs stay lossless so window counts are
        // exact.
        shed_when_full: options.windows_limit == 0,
        max_restarts: 16,
        backoff_ms: (100, 5_000),
        sleep_on_backoff: true,
        breaker: (16, 8, 64),
        panic_at: options
            .panic_shards
            .iter()
            .map(|&shard| (shard, panic_cursor))
            .collect(),
        stop: Some(Arc::new(AtomicBool::new(false))),
        fleet_health: Some(Arc::clone(&fleet_health)),
        capture_verdicts: false,
        verbose: true,
        recorder: recorder.clone(),
        ..fleet::FleetConfig::lossless(options.streams, options.shards, options.windows_limit)
    };
    // Bridge the process-wide SIGINT flag into the fleet's stop flag.
    let stop = fleet_config.stop.clone().expect("stop flag just set");
    let bridge = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if STOP.load(Ordering::SeqCst) {
                    stop.store(true, Ordering::SeqCst);
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    };

    let report = fleet::run_fleet(&detector, &config.collector.sampler, &fleet_config)?;
    stop.store(true, Ordering::SeqCst);
    let _ = bridge.join();

    if report.interrupted {
        eprintln!("serve: interrupted — final checkpoint flushed");
    }
    // Mirror the supervisor counters into the scrape registry so the
    // final snapshot (and any last /metrics pull) carries them.
    hbmd_obs::gauge_set("supervisor.restarts_total", report.restarts as i64);
    hbmd_obs::gauge_set("breaker.trips_total", report.trips as i64);
    for shard in &report.shards {
        eprintln!(
            "serve: shard {}: {} streams, {} windows, {} restarts, {} trips, {} quarantines{}",
            shard.shard,
            shard.streams,
            shard.processed,
            shard.restarts,
            shard.trips,
            shard.quarantines,
            if shard.gave_up { " — GAVE UP" } else { "" },
        );
    }
    eprintln!(
        "serve: {} windows observed across the fleet ({:.0} windows/sec); final scrape state:",
        report.processed, report.windows_per_sec
    );
    eprint!("{}", guard.registry().snapshot().summary());
    server.shutdown()?;
    Ok(())
}

/// `repro chaos` — drive the supervised serve pipeline through injected
/// worker panics, a NaN fault-plan burst, and a deliberately corrupted
/// checkpoint, then the sharded fleet through a shard kill, a corrupted
/// snapshot section, and a persistently faulty stream — asserting the
/// recovery and bulkhead invariants the resilience and fleet layers
/// promise. Exits 0 only when every drill passes.
fn chaos_mode(args: &[String]) -> ExitCode {
    let mut scale = 0.05f64;
    let mut windows = 320u64;
    let mut checkpoint_every = 32u64;
    let mut dir: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => match iter.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(f) if f > 0.0 && f <= 1.0 => scale = f,
                _ => {
                    eprintln!("--scale needs a fraction in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            "--windows" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n >= 64 => windows = n,
                _ => {
                    eprintln!("--windows needs a count of at least 64");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint-every" => match iter.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n >= 1 => checkpoint_every = n,
                _ => {
                    eprintln!("--checkpoint-every needs a positive window count");
                    return ExitCode::FAILURE;
                }
            },
            "--dir" => match iter.next() {
                Some(path) => dir = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--dir needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("chaos: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    match run_chaos(scale, windows, checkpoint_every, dir) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("chaos: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_chaos(
    scale: f64,
    windows: u64,
    checkpoint_every: u64,
    dir: Option<PathBuf>,
) -> Result<bool, Box<dyn std::error::Error>> {
    let guard = hbmd_obs::install(Obs::new());
    let dir = match dir {
        Some(d) => d,
        None => std::env::temp_dir().join(format!("hbmd-chaos-{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir)?;
    let checkpoint = dir.join("monitor.snap");
    let _ = std::fs::remove_file(&checkpoint);

    let config = config_at_scale(scale);
    eprintln!(
        "chaos: training J48 detector at scale {scale} ({} samples)...",
        config.catalog().len()
    );
    let monitor = train_monitor(&config, "chaos")?;
    let digest = u64::from_str_radix(&config_digest(&config), 16).expect("digest is 16 hex digits");
    let sampler = &config.collector.sampler;

    // Injected panics are expected: keep them to one stderr line
    // instead of a full backtrace per restart drill.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("chaos: worker panic: {info}");
    }));

    let mut passed = true;
    let mut check = |ok: bool, what: &str| {
        println!("chaos: {} — {what}", if ok { "ok  " } else { "FAIL" });
        passed &= ok;
    };

    // Drill 1: the unfaulted baseline verdict stream.
    let baseline = resilience::run_pipeline(
        &monitor,
        sampler,
        &resilience::PipelineConfig::lossless(windows),
    )?;
    check(
        baseline.verdicts.iter().all(Option::is_some) && baseline.restarts == 0,
        "baseline run classifies every window without restarts",
    );

    // Drill 2: injected worker panics. Recovery must replay from the
    // last checkpoint and converge on the exact baseline verdicts.
    let panic_at = vec![windows / 3, 2 * windows / 3];
    let faulted = resilience::run_pipeline(
        &monitor,
        sampler,
        &resilience::PipelineConfig {
            checkpoint_every,
            checkpoint_path: Some(checkpoint.clone()),
            config_digest: digest,
            panic_at: panic_at.clone(),
            ..resilience::PipelineConfig::lossless(windows)
        },
    )?;
    check(
        faulted.restarts == panic_at.len() as u64,
        "supervisor restarted the worker once per injected panic",
    );
    check(
        faulted.verdicts == baseline.verdicts,
        "post-restore verdicts are identical to the unfaulted run",
    );
    check(
        faulted.max_missed_gap <= checkpoint_every + 32,
        "missed-alarm window is bounded by checkpoint spacing + queue depth",
    );
    check(
        checkpoint.exists(),
        "final checkpoint flushed on clean shutdown",
    );

    // Drill 3: corrupt the checkpoint on disk. Loading must refuse it
    // with a typed error, and a pipeline restart must fall back to the
    // pristine monitor and still converge on the baseline.
    let mut bytes = std::fs::read(&checkpoint)?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&checkpoint, &bytes)?;
    let refusal = snapshot::load(&checkpoint, digest);
    check(
        matches!(refusal, Err(SnapshotError::ChecksumMismatch { .. })),
        "corrupted checkpoint refused with a typed checksum error",
    );
    if let Err(e) = &refusal {
        eprintln!("chaos: refusal was: {e}");
    }
    let recovered = resilience::run_pipeline(
        &monitor,
        sampler,
        &resilience::PipelineConfig {
            checkpoint_every,
            checkpoint_path: Some(checkpoint.clone()),
            config_digest: digest,
            ..resilience::PipelineConfig::lossless(windows)
        },
    )?;
    check(
        recovered.refusals >= 1 && recovered.verdicts == baseline.verdicts,
        "corrupt-checkpoint start falls back to retrain and matches the baseline",
    );

    // Drill 4: a hostile NaN burst. The sanitizer abstains, the breaker
    // trips into degraded operation, and classification resumes after
    // the burst passes.
    let burst = (windows / 4, windows / 4 + 64);
    let stormy = resilience::run_pipeline(
        &monitor,
        sampler,
        &resilience::PipelineConfig {
            nan_burst: Some(burst),
            ..resilience::PipelineConfig::lossless(windows)
        },
    )?;
    check(
        stormy.trips >= 1 && stormy.degraded > 0,
        "NaN burst trips the breaker into degraded operation",
    );
    check(
        stormy.verdicts.last().is_some_and(Option::is_some),
        "classification resumes after the burst clears",
    );

    // Drill 5: kill one shard of a fleet mid-run, twice. The bulkhead
    // contract: only the victim shard restarts and replays; every other
    // shard's streams never miss a window, and after recovery the whole
    // fleet's verdict streams are byte-identical to an unfaulted run.
    let fleet_checkpoint = dir.join("fleet.snap");
    let _ = std::fs::remove_file(&fleet_checkpoint);
    let detector = monitor.shared_detector();
    let template = StreamState::new(4, 3, 1, 1)?;
    let (streams, shards, fleet_windows) = (24u64, 4usize, 96u64);
    let base_cfg = fleet::FleetConfig {
        pristine_stream: template.clone(),
        ..fleet::FleetConfig::lossless(streams, shards, fleet_windows)
    };
    let fleet_baseline = fleet::run_fleet(&detector, sampler, &base_cfg)?;
    check(
        fleet_baseline.restarts == 0
            && fleet_baseline.verdicts.len() == streams as usize
            && fleet_baseline
                .verdicts
                .values()
                .all(|v| v.iter().all(Option::is_some)),
        "fleet baseline classifies every window of every stream without restarts",
    );

    // The shard that owns stream 0 is guaranteed non-empty.
    let victim = hbmd_core::shard_of(0, shards);
    let fleet_faulted = fleet::run_fleet(
        &detector,
        sampler,
        &fleet::FleetConfig {
            checkpoint_every,
            checkpoint_path: Some(fleet_checkpoint.clone()),
            config_digest: digest,
            panic_at: vec![(victim, fleet_windows / 3), (victim, 2 * fleet_windows / 3)],
            ..base_cfg.clone()
        },
    )?;
    check(
        fleet_faulted.restarts == 2 && fleet_faulted.shards[victim].restarts == 2,
        "only the victim shard's supervisor restarted, once per injected panic",
    );
    check(
        fleet_faulted
            .shards
            .iter()
            .filter(|s| s.shard != victim)
            .all(|s| s.restarts == 0 && s.max_missed_gap == 0),
        "bulkhead holds: no other shard restarted or missed a window",
    );
    check(
        fleet_faulted.verdicts == fleet_baseline.verdicts,
        "fleet verdict streams are byte-identical to the unfaulted run",
    );
    check(
        fleet_faulted.max_missed_gap <= checkpoint_every + 64,
        "victim shard's replay gap is bounded by checkpoint spacing + queue depth",
    );
    check(
        fleet_checkpoint.exists(),
        "multiplexed fleet checkpoint flushed on clean shutdown",
    );

    // Drill 6: corrupt exactly one stream section of the multiplexed
    // snapshot. The fleet-wide restore must still succeed — only the
    // corrupted stream falls back pristine and replays, reconverging on
    // the baseline while every other stream resumes untouched.
    let mut fleet_bytes = std::fs::read(&fleet_checkpoint)?;
    let spans = snapshot::fleet_stream_section_spans(&fleet_bytes)?;
    let span = spans[spans.len() / 2].clone();
    fleet_bytes[span.start] ^= 0x01;
    std::fs::write(&fleet_checkpoint, &fleet_bytes)?;
    let partial = snapshot::load_fleet(&fleet_checkpoint, digest)?;
    let lost: Vec<u64> = (0..streams)
        .filter(|s| partial.streams.iter().all(|sec| sec.stream != *s))
        .collect();
    check(
        partial.lost_sections == 1 && lost.len() == 1,
        "one corrupt stream section lost alone; every other stream restored",
    );
    let lost_stream = lost.first().copied().unwrap_or(0);
    let fleet_partial = fleet::run_fleet(
        &detector,
        sampler,
        &fleet::FleetConfig {
            checkpoint_every,
            checkpoint_path: Some(fleet_checkpoint.clone()),
            config_digest: digest,
            ..base_cfg.clone()
        },
    )?;
    check(
        fleet_partial.refusals == 0 && fleet_partial.lost_sections >= 1,
        "fleet-wide restore succeeded with per-stream fallback, no whole-file refusal",
    );
    check(
        fleet_partial.processed == fleet_windows
            && fleet_partial.verdicts.get(&lost_stream)
                == fleet_baseline.verdicts.get(&lost_stream),
        "only the corrupted stream replayed, reconverging on the baseline",
    );

    // Drill 7: a persistently faulty endpoint. Its stream health must
    // quarantine it (protecting the shard's breaker), then readmit it
    // through probation once the fault clears — while its healthy
    // neighbors' verdicts stay untouched.
    let (q_streams, q_windows) = (4u64, 256u64);
    let q_base = fleet::FleetConfig {
        pristine_stream: template,
        // A breaker that cannot trip on one stream's faults: the drill
        // isolates the quarantine mechanism.
        breaker: (16, 16, 64),
        ..fleet::FleetConfig::lossless(q_streams, 1, q_windows)
    };
    let quiet = fleet::run_fleet(&detector, sampler, &q_base)?;
    let faulty_stream = 2u64;
    let stormy_fleet = fleet::run_fleet(
        &detector,
        sampler,
        &fleet::FleetConfig {
            nan_streams: vec![(faulty_stream, 64, 128)],
            ..q_base.clone()
        },
    )?;
    let (standing, stream_quarantines, stream_readmissions) = stormy_fleet
        .stream_health
        .get(&faulty_stream)
        .copied()
        .unwrap_or((StreamStanding::Active, 0, 0));
    check(
        stream_quarantines >= 1 && stormy_fleet.quarantine_skipped >= 32,
        "persistently faulty stream was quarantined and its windows skipped",
    );
    check(
        stream_readmissions >= 1 && standing == StreamStanding::Active,
        "quarantined stream readmitted through probation once clean",
    );
    check(
        stormy_fleet.trips == 0,
        "quarantine absorbed the faulty stream before the shard breaker tripped",
    );
    check(
        stormy_fleet
            .verdicts
            .iter()
            .filter(|(s, _)| **s != faulty_stream)
            .all(|(s, v)| quiet.verdicts.get(s) == Some(v)),
        "healthy neighbors' verdicts are untouched by the quarantine",
    );

    // Drill 8: the flight recorder under fire. Re-run the NaN burst
    // with a recorder attached: the breaker trip must freeze the ring
    // into a checksummed bundle whose last recorded window is exactly
    // the window that tripped the breaker.
    let bundle_root = dir.join("bundles");
    let _ = std::fs::remove_dir_all(&bundle_root);
    let hub = Arc::new(
        RecorderHub::new(1, 512)
            .with_bundle_dir(&bundle_root)
            .with_deterministic(true)
            .with_families(AppClass::ALL.iter().map(|c| c.name().to_owned()).collect()),
    );
    let recorded = resilience::run_pipeline(
        &monitor,
        sampler,
        &resilience::PipelineConfig {
            nan_burst: Some(burst),
            recorder: Some(Arc::clone(&hub)),
            ..resilience::PipelineConfig::lossless(windows)
        },
    )?;
    check(
        recorded.trips >= 1 && hub.bundles_written() >= 1,
        "breaker trip froze the flight ring into a diagnostic bundle",
    );
    let bundle_path = bundle_root.join("bundle-000001-breaker_trip");
    match read_bundle(&bundle_path) {
        Ok(bundle) => {
            let trigger_meta = json::parse(bundle.text("trigger.json")?)?;
            let trip_cursor = trigger_meta.get("cursor").and_then(json::Value::as_u64);
            check(
                trigger_meta.get("reason").and_then(json::Value::as_str) == Some("breaker_trip")
                    && trip_cursor.is_some(),
                "bundle trigger metadata names the breaker trip and its window",
            );
            let mut last_window_cursor = None;
            for line in bundle.text("events.jsonl")?.lines() {
                let event = json::parse(line)?;
                if event.get("kind").and_then(json::Value::as_str) == Some("window") {
                    last_window_cursor = event.get("cursor").and_then(json::Value::as_u64);
                }
            }
            check(
                last_window_cursor.is_some() && last_window_cursor == trip_cursor,
                "bundle's last recorded window is the one that tripped the breaker",
            );
        }
        Err(e) => {
            eprintln!("chaos: bundle refused: {e}");
            check(
                false,
                "bundle trigger metadata names the breaker trip and its window",
            );
            check(
                false,
                "bundle's last recorded window is the one that tripped the breaker",
            );
        }
    }
    let _ = std::fs::remove_dir_all(&bundle_root);

    let _ = std::fs::remove_file(&checkpoint);
    let _ = std::fs::remove_file(&fleet_checkpoint);
    let _ = std::fs::remove_dir(&dir);
    let _ = guard;
    println!("supervisor.restarts_total {}", faulted.restarts);
    println!("chaos: {}", if passed { "PASS" } else { "FAIL" });
    Ok(passed)
}

/// `repro trace-report` — load a `--trace-jsonl` log and print where
/// the time went: per-name aggregates, the critical path, and
/// optionally a flamegraph collapsed-stack file.
fn trace_report(args: &[String]) -> ExitCode {
    let mut file: Option<String> = None;
    let mut collapsed_out: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--collapsed" => match iter.next() {
                Some(path) => collapsed_out = Some(path.clone()),
                None => {
                    eprintln!("--collapsed needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other if file.is_none() && !other.starts_with("--") => file = Some(other.to_owned()),
            other => {
                eprintln!("trace-report: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(file) = file else {
        eprintln!("usage: repro trace-report <trace.jsonl> [--collapsed PATH]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match Trace::parse_jsonl(&text) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ms = |ns: u64| format!("{:.1}", ns as f64 / 1e6);

    println!(
        "# trace report — {} spans in {} trees, {} ms covered\n",
        trace.len(),
        trace.roots.len(),
        ms(trace.total_ns())
    );
    let mut table = TextTable::new(vec!["span", "count", "total ms", "self ms", "max ms"]);
    for row in trace.aggregate() {
        table.row(vec![
            row.name,
            row.count.to_string(),
            ms(row.total_ns),
            ms(row.self_ns),
            ms(row.max_ns),
        ]);
    }
    print!("{}", table.render());

    println!("\ncritical path (heaviest child at each level):");
    for (depth, hop) in trace.critical_path().iter().enumerate() {
        println!(
            "{}{} — {} ms ({:.0}% of parent, {} ms self)",
            "  ".repeat(depth),
            hop.name,
            ms(hop.duration_ns),
            hop.share_of_parent * 100.0,
            ms(hop.self_ns),
        );
    }

    if let Some(path) = collapsed_out {
        if let Err(e) = std::fs::write(&path, trace.collapsed()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} (folded stacks; feed to a flamegraph renderer)");
    }
    ExitCode::SUCCESS
}

/// `repro bench-diff` — gate on timing regressions between two
/// `BENCH_repro.json` files. Exits nonzero when the reports are
/// incomparable or any phase (or the collection cache) regressed.
fn bench_diff(args: &[String]) -> ExitCode {
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut max_regress_pct = 25.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => baseline = iter.next().cloned(),
            "--current" => current = iter.next().cloned(),
            "--max-regress-pct" => match iter.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => max_regress_pct = pct,
                _ => {
                    eprintln!("--max-regress-pct needs a non-negative number");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("bench-diff: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline, current) else {
        eprintln!("usage: repro bench-diff --baseline PATH --current PATH [--max-regress-pct N]");
        return ExitCode::FAILURE;
    };
    let load = |path: &str| -> Result<diff::LoadedReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        diff::parse_report(&text).map_err(|e| format!("{path}: {e}"))
    };
    let reports = load(&baseline_path).and_then(|b| Ok((b, load(&current_path)?)));
    let (baseline_report, current_report) = match reports {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match diff::diff(&baseline_report, &current_report, max_regress_pct) {
        Ok(result) => {
            print!("{}", result.render());
            if result.regressed() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro bundle-report` — verify a diagnostic bundle's checksums,
/// then reconstruct the incident timeline on stdout: trigger metadata,
/// per-ring seqno ranges, event counts by kind, and the recorded tail
/// of window verdicts, faults, health transitions, and restart
/// markers. A corrupted bundle is refused with the typed error on
/// stderr and a nonzero exit.
fn bundle_report(args: &[String]) -> ExitCode {
    let [dir] = args else {
        eprintln!("usage: repro bundle-report <bundle-dir>");
        return ExitCode::FAILURE;
    };
    let dir = PathBuf::from(dir);
    let bundle = match read_bundle(&dir) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("bundle-report: {} refused: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    match render_bundle_report(&dir, &bundle) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bundle-report: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The verified-bundle timeline as one printable string. Errors only
/// on malformed JSON inside an already checksum-verified bundle.
fn render_bundle_report(
    dir: &std::path::Path,
    bundle: &hbmd_obs::recorder::Bundle,
) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# Diagnostic bundle {}", dir.display());
    let _ = writeln!(out, "\n## Verified files");
    for entry in &bundle.entries {
        let _ = writeln!(
            out,
            "  {:<14} {:>8} bytes  fnv1a64={:016x}",
            entry.name, entry.size, entry.digest
        );
    }

    let trigger = json::parse(bundle.text("trigger.json").map_err(|e| e.to_string())?)
        .map_err(|e| format!("trigger.json: {e}"))?;
    let opt = |value: Option<&json::Value>| -> String {
        value
            .and_then(json::Value::as_u64)
            .map_or("-".to_owned(), |v| v.to_string())
    };
    let _ = writeln!(out, "\n## Trigger");
    let _ = writeln!(
        out,
        "  reason={} shard={} stream={} cursor={}",
        trigger
            .get("reason")
            .and_then(json::Value::as_str)
            .unwrap_or("?"),
        opt(trigger.get("shard")),
        opt(trigger.get("stream")),
        opt(trigger.get("cursor")),
    );
    if let Some(details) = trigger.get("details").and_then(json::Value::as_str) {
        if !details.is_empty() {
            let _ = writeln!(out, "  details: {details}");
        }
    }
    if let Some(rings) = trigger.get("rings").and_then(json::Value::as_array) {
        for ring in rings {
            let _ = writeln!(
                out,
                "  ring shard={}: {} events, seq {}..{}, {} dropped",
                opt(ring.get("shard")),
                opt(ring.get("events")),
                opt(ring.get("first_seq")),
                opt(ring.get("last_seq")),
                opt(ring.get("dropped")),
            );
        }
    }

    if let Ok(manifest_text) = bundle.text("manifest.json") {
        if let Ok(manifest) = json::parse(manifest_text) {
            let digest = manifest
                .get("config_digest")
                .and_then(json::Value::as_u64)
                .map_or("?".to_owned(), |d| format!("{d:016x}"));
            let _ = writeln!(
                out,
                "\n## Run\n  version={} config_digest={}",
                manifest
                    .get("version")
                    .and_then(json::Value::as_str)
                    .unwrap_or("?"),
                digest,
            );
        }
    }

    let events_text = bundle.text("events.jsonl").map_err(|e| e.to_string())?;
    let mut events = Vec::new();
    for (lineno, line) in events_text.lines().enumerate() {
        events
            .push(json::parse(line).map_err(|e| format!("events.jsonl line {}: {e}", lineno + 1))?);
    }
    let mut counts: Vec<(String, usize)> = Vec::new();
    for event in &events {
        let kind = event
            .get("kind")
            .and_then(json::Value::as_str)
            .unwrap_or("?");
        match counts.iter_mut().find(|(k, _)| k == kind) {
            Some((_, n)) => *n += 1,
            None => counts.push((kind.to_owned(), 1)),
        }
    }
    let _ = writeln!(out, "\n## Events ({} recorded)", events.len());
    for (kind, n) in &counts {
        let _ = writeln!(out, "  {kind:<12} {n}");
    }

    // The incident tail: every non-window marker, then the last 16
    // recorded windows — enough to see what the verdict stream was
    // doing when the trigger fired.
    let _ = writeln!(out, "\n## Timeline tail");
    let describe = |event: &json::Value| -> String {
        let kind = event
            .get("kind")
            .and_then(json::Value::as_str)
            .unwrap_or("?");
        let head = format!(
            "  seq={:>6} shard={} {kind:<10}",
            opt(event.get("seq")),
            opt(event.get("shard")),
        );
        match kind {
            "window" => format!(
                "{head} stream={} cursor={} verdict={} family={} votes={}/{} abstained={}",
                opt(event.get("stream")),
                opt(event.get("cursor")),
                event
                    .get("verdict")
                    .and_then(json::Value::as_str)
                    .unwrap_or("?"),
                event
                    .get("family")
                    .and_then(json::Value::as_str)
                    .unwrap_or("-"),
                opt(event.get("votes")),
                opt(event.get("of")),
                event
                    .get("abstained")
                    .and_then(json::Value::as_bool)
                    .unwrap_or(false),
            ),
            "health" => format!(
                "{head} stream={} cursor={} {} -> {}",
                opt(event.get("stream")),
                opt(event.get("cursor")),
                event
                    .get("from")
                    .and_then(json::Value::as_str)
                    .unwrap_or("?"),
                event.get("to").and_then(json::Value::as_str).unwrap_or("?"),
            ),
            "fault" => format!(
                "{head} stream={} cursor={} fault={}",
                opt(event.get("stream")),
                opt(event.get("cursor")),
                event
                    .get("fault")
                    .and_then(json::Value::as_str)
                    .unwrap_or("?"),
            ),
            "breaker" => format!(
                "{head} stream={} cursor={} breaker opened",
                opt(event.get("stream")),
                opt(event.get("cursor")),
            ),
            "checkpoint" => format!("{head} cursor={}", opt(event.get("cursor"))),
            "restart" => format!("{head} attempt={}", opt(event.get("attempt"))),
            _ => head,
        }
    };
    let markers: Vec<&json::Value> = events
        .iter()
        .filter(|e| e.get("kind").and_then(json::Value::as_str) != Some("window"))
        .collect();
    for marker in &markers {
        let _ = writeln!(out, "{}", describe(marker));
    }
    let windows: Vec<&json::Value> = events
        .iter()
        .filter(|e| e.get("kind").and_then(json::Value::as_str) == Some("window"))
        .collect();
    let tail = windows.len().saturating_sub(16);
    if tail > 0 {
        let _ = writeln!(out, "  ... {tail} earlier window events elided ...");
    }
    for window in &windows[tail..] {
        let _ = writeln!(out, "{}", describe(window));
    }
    if let (Some(cursor), Some(last)) = (
        trigger.get("cursor").and_then(json::Value::as_u64),
        windows.last(),
    ) {
        if last.get("cursor").and_then(json::Value::as_u64) == Some(cursor) {
            let _ = writeln!(
                out,
                "\ntriggering window: cursor={cursor} is the last recorded window"
            );
        }
    }
    Ok(out)
}

fn run(
    experiment: &str,
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<Option<f64>, Box<dyn std::error::Error>> {
    match experiment {
        "fleet" => return Ok(Some(fleet_phase(config, cache)?)),
        "predict" => return Ok(Some(predict_phase(config, cache)?)),
        "adversarial" => return Ok(Some(adversarial_phase(config, cache)?)),
        "table1" => table1(config, cache),
        "fig6" => fig6(config, cache),
        "table2" => table2(config, cache)?,
        "fig8" => fig8(config, cache)?,
        "fig9" => scatter(config, cache, AppClass::Rootkit, "Figure 9")?,
        "fig10" => scatter(config, cache, AppClass::Trojan, "Figure 10")?,
        "fig11" => scatter(config, cache, AppClass::Virus, "Figure 11")?,
        "fig12" => scatter(config, cache, AppClass::Worm, "Figure 12")?,
        "fig13" => fig13(config, cache)?,
        "fig14" | "fig15" | "fig16" => hardware_figures(config, cache, experiment)?,
        "fig17" | "fig18" => multiclass_figures(config, cache, experiment)?,
        "fig19" => fig19(config, cache)?,
        "ablate-ensemble" => ablate_ensemble(config, cache)?,
        "roc" => roc_analysis(config, cache)?,
        "detect-latency" => detect_latency(config, cache)?,
        "robustness" => robustness_sweep(config, cache)?,
        "emit-hdl" => emit_hdl(config, cache)?,
        "ablate-prefetch" => ablate_prefetch(config, cache)?,
        "ablate-mux" => ablate_mux(config, cache)?,
        "ablate-noise" => ablate_noise(config, cache)?,
        "ablate-features" => ablate_features(config, cache)?,
        "ablate-mlp" => ablate_mlp(config, cache)?,
        other => return Err(format!("unknown experiment `{other}`").into()),
    }
    Ok(None)
}

/// The `fleet` bench phase: run a small sharded fleet at full speed and
/// report its aggregate throughput. The deterministic facts (stream
/// placement, counters) go to stdout; the machine-dependent rate goes
/// to stderr and into `BENCH_repro.json` as `windows_per_sec`, where
/// `repro bench-diff` gates the phase's wall-clock.
fn fleet_phase(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<f64, Box<dyn std::error::Error>> {
    println!("## Fleet: sharded online monitoring throughput");
    let collection = cache.collect(config)?;
    let detector = DetectorBuilder::new()
        .classifier(ClassifierKind::J48)
        .feature_set(FeatureSet::Top(8))
        .train_binary(&collection.dataset)?;
    let monitor = OnlineDetector::builder(detector)
        .window(4)
        .threshold(3)
        .build()?;
    let (detector, template) = monitor.into_parts();

    let (streams, shards, windows) = (64u64, 8usize, 64u64);
    let fleet_config = fleet::FleetConfig {
        pristine_stream: template,
        capture_verdicts: false,
        ..fleet::FleetConfig::lossless(streams, shards, windows)
    };
    let report = fleet::run_fleet(&detector, &config.collector.sampler, &fleet_config)?;

    let mut table = TextTable::new(vec!["streams", "shards", "windows/stream", "windows"]);
    table.row(vec![
        streams.to_string(),
        shards.to_string(),
        windows.to_string(),
        report.processed.to_string(),
    ]);
    print!("{}", table.render());
    println!(
        "restarts {}  trips {}  quarantines {}  shed {}",
        report.restarts,
        report.trips,
        report.quarantines,
        report.shed_low + report.shed_high
    );
    eprintln!(
        "fleet: {:.0} windows/sec aggregate over {} shards ({} ms wall)",
        report.windows_per_sec, shards, report.wall_ms
    );
    Ok(report.windows_per_sec)
}

/// The `predict` bench phase: fit every compilable scheme, lower it
/// through the compilation pass, and report the compiled evaluator's
/// footprint (deterministic: stdout) plus its batched columnar
/// throughput (machine-dependent: stderr and `BENCH_repro.json`). The
/// returned rate is the fastest per-scheme batch throughput, so `repro
/// bench-diff` gates compiled prediction speed alongside wall-clock.
fn predict_phase(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<f64, Box<dyn std::error::Error>> {
    println!("## Predict: compiled evaluator footprint and batched throughput");
    let collection = cache.collect(config)?;
    let data = to_binary_dataset(&collection.dataset);
    let (train, test) = data.split(0.7, config.split_seed);
    if test.is_empty() {
        return Err("predict phase needs a non-empty test split".into());
    }

    let kinds = [
        ClassifierKind::OneR,
        ClassifierKind::JRip,
        ClassifierKind::J48,
        ClassifierKind::RepTree,
        ClassifierKind::AdaBoost,
        ClassifierKind::Bagging,
        ClassifierKind::RandomForest,
    ];
    let mut table = TextTable::new(vec!["scheme", "accuracy %", "nodes", "bytes"]);
    let mut best = 0.0f64;
    for kind in kinds {
        let mut model = kind.instantiate();
        model.fit(&train)?;
        let accuracy = Evaluation::of(&model, &test).accuracy();
        let compiled = model
            .compile()
            .ok_or_else(|| format!("{kind} did not compile"))?;
        table.row(vec![
            kind.name().to_owned(),
            format!("{:.2}", accuracy * 100.0),
            compiled.node_count().to_string(),
            compiled.byte_size().to_string(),
        ]);

        // A fixed window budget (not a fixed duration) so the
        // wall-clock gate sees comparable work at any machine speed.
        let rows = test.rows();
        let target = 200_000usize;
        let mut predicted = 0usize;
        let started = Instant::now();
        while predicted < target {
            predicted += compiled.predict_batch(rows).len();
        }
        let rate = predicted as f64 / started.elapsed().as_secs_f64();
        eprintln!(
            "predict: {} {:.3e} windows/sec compiled batch ({predicted} windows)",
            kind.name(),
            rate,
        );
        best = best.max(rate);
    }
    print!("{}", table.render());
    Ok(best)
}

/// The `adversarial` bench phase: craft plausibility-constrained
/// evasion attacks against each trained detector, score the same
/// crafted windows under every defense (clean / retrained /
/// ensemble-disagreement), and measure end-to-end detection against
/// behaviour-level camouflage catalogs. All tables and the per-scheme
/// summary lines are deterministic (stdout); the attack throughput
/// goes to stderr and into `BENCH_repro.json` as `windows_per_sec`,
/// where `repro bench-diff` gates the phase's wall-clock.
fn adversarial_phase(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<f64, Box<dyn std::error::Error>> {
    println!("## Adversarial: accuracy under attack, clean vs defended");
    println!("(gradient-free evasion inside a benign plausibility envelope; arXiv:2005.03644 threat model)");
    let schemes = [ClassifierKind::J48, ClassifierKind::RandomForest];
    let budgets = [0.05, 0.1, 0.2, 0.4];
    let started = Instant::now();
    let rows = adversarial::accuracy_under_attack_with(cache, config, &schemes, &budgets)?;
    let elapsed = started.elapsed().as_secs_f64();

    let mut table = TextTable::new(vec![
        "budget",
        "classifier",
        "defense",
        "baseline",
        "detection",
        "evasion",
        "mean L1",
        "iters",
        "windows",
        "susp trips",
    ]);
    for row in &rows {
        table.row(vec![
            pct(row.budget),
            row.scheme.to_string(),
            row.defense.to_string(),
            pct(row.baseline_detection),
            pct(row.detection_rate),
            pct(row.evasion_rate),
            format!("{:.1}", row.mean_l1),
            format!("{:.1}", row.mean_iterations),
            row.windows.to_string(),
            row.suspicion_trips.to_string(),
        ]);
    }
    print!("{}", table.render());

    // One machine-parseable verdict line per scheme at the heaviest
    // budget — the CI smoke gate asserts on these.
    let top_budget = budgets[budgets.len() - 1];
    for scheme in schemes {
        let at_top: Vec<&adversarial::AdversarialRow> = rows
            .iter()
            .filter(|r| r.scheme == scheme && r.budget == top_budget)
            .collect();
        let clean = at_top
            .iter()
            .find(|r| r.defense == adversarial::DefenseKind::Clean)
            .ok_or("missing clean defense row")?;
        let defended = at_top
            .iter()
            .filter(|r| r.defense != adversarial::DefenseKind::Clean)
            .map(|r| r.evasion_rate)
            .fold(f64::INFINITY, f64::min);
        println!(
            "adversarial: scheme={scheme} budget={top_budget} clean_evasion={:.4} defended_evasion={defended:.4}",
            clean.evasion_rate,
        );
    }

    println!();
    println!("### Behaviour-level camouflage (evasive catalog variants)");
    let tactic_rows = adversarial::camouflage_sweep_with(cache, config, &schemes)?;
    let mut camo = TextTable::new(vec!["tactic", "classifier", "detection", "windows"]);
    for row in &tactic_rows {
        camo.row(vec![
            row.tactic.clone(),
            row.scheme.to_string(),
            pct(row.detection_rate),
            row.windows.to_string(),
        ]);
    }
    print!("{}", camo.render());

    let attacked: usize = rows
        .iter()
        .filter(|r| r.defense == adversarial::DefenseKind::Clean)
        .map(|r| r.windows)
        .sum();
    let rate = attacked as f64 / elapsed.max(1e-9);
    eprintln!(
        "adversarial: {rate:.0} attacked windows/sec over {} sweep cells ({attacked} windows)",
        rows.len() / adversarial::DefenseKind::ALL.len(),
    );
    Ok(rate)
}

fn table1(config: &ExperimentConfig, cache: &CollectCache) {
    println!("## Table 1: samples per application class");
    println!("paper: backdoor 452, rootkit 324, trojan 1169, virus 650, worm 149, benign 326 (3,070 total)");
    let rows = experiments::census_with(cache, config);
    let mut table = TextTable::new(vec!["class", "samples", "share", "dataset rows"]);
    let mut total = 0usize;
    for row in &rows {
        total += row.samples;
        table.row(vec![
            row.class.to_string(),
            row.samples.to_string(),
            pct(row.share),
            row.dataset_rows.to_string(),
        ]);
    }
    table.row(vec![
        "total".to_owned(),
        total.to_string(),
        String::new(),
        String::new(),
    ]);
    print!("{}", table.render());
}

fn fig6(config: &ExperimentConfig, cache: &CollectCache) {
    println!("## Figure 6: class distribution of the database");
    println!("paper: trojan-dominated, mirroring the in-the-wild distribution (Figure 3)");
    let rows = experiments::census_with(cache, config);
    let mut table = TextTable::new(vec!["class", "share", "bar"]);
    for row in &rows {
        let bar = "#".repeat((row.share * 60.0).round() as usize);
        table.row(vec![row.class.to_string(), pct(row.share), bar]);
    }
    print!("{}", table.render());
}

fn table2(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Table 2: PCA-reduced features per class");
    println!("paper: 4 common features + custom 8 per malware class");
    let result = pca::table2_with(cache, config)?;
    println!("common features: {}", result.common.join(", "));
    let mut table = TextTable::new(vec!["class", "custom top-8 features"]);
    for (class, features) in &result.per_class {
        table.row(vec![class.to_string(), features.join(", ")]);
    }
    print!("{}", table.render());
    Ok(())
}

fn fig8(config: &ExperimentConfig, cache: &CollectCache) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Figure 8: PCA eigen summary (WEKA PrincipalComponents -R 0.95)");
    let summary = pca::eigen_summary_with(cache, config)?;
    println!(
        "components for 95% variance: {} of 16",
        summary.components_for_95
    );
    let mut table = TextTable::new(vec![
        "rank",
        "attribute",
        "score",
        "eigenvalue",
        "explained",
    ]);
    for (i, (name, score)) in summary.ranking.iter().enumerate() {
        table.row(vec![
            (i + 1).to_string(),
            name.clone(),
            format!("{score:.4}"),
            format!("{:.4}", summary.eigenvalues[i]),
            pct(summary.explained[i]),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn scatter(
    config: &ExperimentConfig,
    cache: &CollectCache,
    class: AppClass,
    figure: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## {figure}: PCA plot for {class} (top-2 components, class vs benign)");
    let points = pca::scatter_with(cache, config, class)?;
    // Render as a coarse ASCII density plot: 'b' benign, 'm' malware,
    // '*' both.
    let (width, height) = (64usize, 20usize);
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in &points {
        min_x = min_x.min(p.pc1);
        max_x = max_x.max(p.pc1);
        min_y = min_y.min(p.pc2);
        max_y = max_y.max(p.pc2);
    }
    let mut grid = vec![vec![' '; width]; height];
    for p in &points {
        let x = ((p.pc1 - min_x) / (max_x - min_x).max(1e-12) * (width - 1) as f64) as usize;
        let y = ((p.pc2 - min_y) / (max_y - min_y).max(1e-12) * (height - 1) as f64) as usize;
        let cell = &mut grid[height - 1 - y][x];
        let mark = if p.malware { 'm' } else { 'b' };
        *cell = match (*cell, mark) {
            (' ', m) => m,
            (existing, m) if existing == m => m,
            _ => '*',
        };
    }
    let malware_mean: f64 = points
        .iter()
        .filter(|p| p.malware)
        .map(|p| p.pc1)
        .sum::<f64>()
        / points.iter().filter(|p| p.malware).count().max(1) as f64;
    let benign_mean: f64 = points
        .iter()
        .filter(|p| !p.malware)
        .map(|p| p.pc1)
        .sum::<f64>()
        / points.iter().filter(|p| !p.malware).count().max(1) as f64;
    for line in grid {
        println!("|{}|", line.into_iter().collect::<String>());
    }
    println!(
        "PC1 centroid separation: {:.2} ({} points; b=benign, m={}, *=overlap)",
        (malware_mean - benign_mean).abs(),
        points.len(),
        class
    );
    Ok(())
}

fn fig13(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Figure 13: binary accuracy, 16 vs PCA top-8 vs top-4 features");
    println!("paper: most classifiers dip slightly at 4 features; J48/OneR barely move");
    let rows = binary::accuracy_comparison_with(cache, config)?;
    let mut table = TextTable::new(vec![
        "classifier",
        "16 features",
        "8 features",
        "4 features",
        "8->4 cost",
    ]);
    for row in &rows {
        table.row(vec![
            row.scheme.to_string(),
            pct(row.accuracy_full),
            pct(row.accuracy_top8),
            pct(row.accuracy_top4),
            format!("{:+.1}pp", row.reduction_cost() * 100.0),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn hardware_figures(
    config: &ExperimentConfig,
    cache: &CollectCache,
    which: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let rows = hardware::comparison_with(cache, config, &SynthConfig::default())?;
    match which {
        "fig14" => {
            println!("## Figure 14: FPGA area comparison (8 vs 4 features)");
            println!("paper: OneR/JRip tiny; MLP an order of magnitude larger");
            let mut table = TextTable::new(vec![
                "classifier",
                "area (8f)",
                "area (4f)",
                "LUT/FF/DSP/BRAM (8f)",
            ]);
            for row in &rows {
                let r = &row.top8.report.resources;
                table.row(vec![
                    row.scheme.to_string(),
                    format!("{:.0}", row.top8.report.area_units()),
                    format!("{:.0}", row.top4.report.area_units()),
                    format!("{}/{}/{}/{}", r.luts, r.ffs, r.dsps, r.brams),
                ]);
            }
            print!("{}", table.render());
        }
        "fig15" => {
            println!("## Figure 15: FPGA latency comparison (8 vs 4 features)");
            println!("paper: rule learners in a couple of cycles; networks slower");
            let mut table = TextTable::new(vec![
                "classifier",
                "cycles (8f)",
                "latency ns (8f)",
                "cycles (4f)",
                "power mW (8f)",
            ]);
            for row in &rows {
                table.row(vec![
                    row.scheme.to_string(),
                    row.top8.report.latency_cycles.to_string(),
                    format!("{:.0}", row.top8.report.latency_ns()),
                    row.top4.report.latency_cycles.to_string(),
                    format!("{:.1}", row.top8.report.power_mw),
                ]);
            }
            print!("{}", table.render());
        }
        _ => {
            println!("## Figure 16: accuracy/area comparison (8 vs 4 features)");
            println!("paper: JRip and OneR dominate the figure of merit");
            let mut table = TextTable::new(vec![
                "classifier",
                "acc (8f)",
                "acc/area (8f)",
                "acc (4f)",
                "acc/area (4f)",
            ]);
            for row in &rows {
                table.row(vec![
                    row.scheme.to_string(),
                    pct(row.top8.accuracy),
                    format!("{:.3}", row.top8.accuracy_per_area()),
                    pct(row.top4.accuracy),
                    format!("{:.3}", row.top4.accuracy_per_area()),
                ]);
            }
            print!("{}", table.render());
        }
    }
    Ok(())
}

fn multiclass_figures(
    config: &ExperimentConfig,
    cache: &CollectCache,
    which: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let rows = multiclass::accuracy_comparison_with(cache, config)?;
    if which == "fig17" {
        println!("## Figure 17: average multiclass accuracy (MLR / MLP / SVM)");
        println!("paper: the neural network (MLP) leads the multiclass comparison");
        let mut table = TextTable::new(vec!["classifier", "average accuracy"]);
        for row in &rows {
            table.row(vec![row.scheme.to_string(), pct(row.average_accuracy)]);
        }
        print!("{}", table.render());
    } else {
        println!("## Figure 18: per-class accuracy for the multiclass classifiers");
        let mut headers = vec!["class"];
        let names: Vec<String> = rows.iter().map(|r| r.scheme.to_string()).collect();
        headers.extend(names.iter().map(String::as_str));
        let mut table = TextTable::new(headers);
        for class in AppClass::ALL {
            let mut cells = vec![class.to_string()];
            for row in &rows {
                cells.push(pct(row.per_class[class.index()]));
            }
            table.row(cells);
        }
        print!("{}", table.render());
    }
    Ok(())
}

fn fig19(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Figure 19: PCA-assisted MLR vs normal MLR");
    println!("paper: custom per-class 8-feature sets gain ~7pp over non-custom features");
    let result = multiclass::pca_assisted_comparison_with(cache, config)?;
    let mut table = TextTable::new(vec!["variant", "accuracy"]);
    table.row(vec![
        "MLR, all 16 features (context)".to_owned(),
        pct(result.plain_full_accuracy),
    ]);
    table.row(vec![
        "normal MLR, generic top-8".to_owned(),
        pct(result.plain_accuracy),
    ]);
    table.row(vec![
        "PCA-assisted MLR, custom-8 per class".to_owned(),
        pct(result.assisted_accuracy),
    ]);
    print!("{}", table.render());
    println!(
        "improvement over non-custom reduction: {:+.1}pp overall, {:+.1}pp mean per-class",
        result.improvement() * 100.0,
        result.macro_improvement() * 100.0
    );
    let mut per_class = TextTable::new(vec!["class", "normal recall", "assisted recall"]);
    for class in AppClass::ALL {
        per_class.row(vec![
            class.to_string(),
            pct(result.plain_per_class[class.index()]),
            pct(result.assisted_per_class[class.index()]),
        ]);
    }
    print!("{}", per_class.render());
    Ok(())
}

fn detect_latency(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Extension: run-time detection latency (windows to alarm)");
    println!("(J48 detector, 4-window vote, 3-vote threshold, unseen specimens)");
    let rows = latency::windows_to_alarm_with(cache, config, 8, 32)?;
    let mut table = TextTable::new(vec![
        "family",
        "detected",
        "mean windows",
        "mean ms (10ms/window)",
    ]);
    for row in &rows {
        table.row(vec![
            row.class.to_string(),
            format!("{}/{}", row.detected, row.observed),
            if row.detected > 0 {
                format!("{:.1}", row.mean_windows_to_alarm)
            } else {
                "-".to_owned()
            },
            if row.detected > 0 {
                format!("{:.0}", row.mean_ms_to_alarm())
            } else {
                "-".to_owned()
            },
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn robustness_sweep(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Extension: graceful degradation under collection faults");
    println!("(detectors trained clean, evaluated through a fault-injected pipeline)");
    let schemes = [
        ClassifierKind::J48,
        ClassifierKind::JRip,
        ClassifierKind::Logistic,
        ClassifierKind::NaiveBayes,
    ];
    let rates = [0.0, 0.02, 0.05, 0.1, 0.2];
    let rows = robustness::degradation_sweep_with(cache, config, &schemes, &rates)?;
    let mut table = TextTable::new(vec![
        "fault rate",
        "classifier",
        "accuracy (decided)",
        "abstained",
        "windows",
        "quarantined",
        "retries",
    ]);
    for row in &rows {
        table.row(vec![
            pct(row.fault_rate),
            row.scheme.to_string(),
            if row.accuracy.is_nan() {
                "-".to_owned()
            } else {
                pct(row.accuracy)
            },
            pct(row.abstain_rate),
            row.windows.to_string(),
            row.quarantined.to_string(),
            row.retries.to_string(),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn roc_analysis(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Extension: ROC analysis of the score-producing detectors");
    println!("(a deployed monitor is tuned to a false-positive budget, not peak accuracy)");
    let rows = roc::comparison_with(cache, config)?;
    let mut table = TextTable::new(vec!["scheme", "AUC", "TPR @ 1% FPR", "TPR @ 5% FPR"]);
    for row in &rows {
        table.row(vec![
            row.scheme.clone(),
            format!("{:.4}", row.auc),
            pct(row.at_1pct_fpr.tpr),
            pct(row.at_5pct_fpr.tpr),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn emit_hdl(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## SystemVerilog skeletons for the trained rule learners");
    let collection = cache.collect(config)?;
    let (train_hpc, _) = collection.dataset.split(0.7, config.split_seed);
    let plan = FeaturePlan::fit(&train_hpc)?;
    let indices = plan.resolve(FeatureSet::Top(8))?;
    let train = to_binary_dataset(&train_hpc).select_features(&indices)?;
    for kind in [ClassifierKind::OneR, ClassifierKind::JRip] {
        let mut model = kind.instantiate();
        hbmd_ml::fit_timed(&mut model, &train)?;
        let rtl = hbmd_fpga::emit_system_verilog(&model.datapath()?, &SynthConfig::default());
        println!("{rtl}");
    }
    Ok(())
}

fn ablate_ensemble(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Extension: ensemble learning (RAID'15 / DAC'18 follow-ups)");
    println!("(single learners vs boosting, bagging and random forests, top-8 features)");
    let rows = ensemble::comparison_with(cache, config)?;
    let mut table = TextTable::new(vec![
        "scheme",
        "accuracy",
        "area",
        "latency cyc",
        "acc/area",
    ]);
    for row in &rows {
        table.row(vec![
            row.scheme.to_string(),
            pct(row.accuracy),
            format!("{:.0}", row.area_units),
            row.latency_cycles.to_string(),
            format!("{:.3}", row.accuracy_per_area()),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn ablate_prefetch(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Ablation: L1D next-line prefetcher vs counter signal");
    println!("(prefetching shifts traffic from demand misses to prefetch references)");
    let mut table = TextTable::new(vec!["cpu model", "J48 accuracy", "Logistic accuracy"]);
    for (label, cpu) in [
        (
            "no prefetcher (paper model)",
            hbmd_uarch::CpuConfig::haswell(),
        ),
        (
            "next-line L1D prefetcher",
            hbmd_uarch::CpuConfig::haswell_prefetch(),
        ),
    ] {
        let mut variant = config.clone();
        variant.collector.sampler.cpu = cpu;
        let collection = cache.collect(&variant)?;
        let (train_hpc, test_hpc) = collection.dataset.split(0.7, variant.split_seed);
        let train = to_binary_dataset(&train_hpc);
        let test = to_binary_dataset(&test_hpc);
        let mut accs = Vec::new();
        for kind in [ClassifierKind::J48, ClassifierKind::Logistic] {
            let mut model = kind.instantiate();
            hbmd_ml::fit_timed(&mut model, &train)?;
            accs.push(Evaluation::of(&model, &test).accuracy());
        }
        table.row(vec![label.to_owned(), pct(accs[0]), pct(accs[1])]);
    }
    print!("{}", table.render());
    Ok(())
}

fn ablate_mux(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Ablation: PMU multiplexing pressure vs detection accuracy");
    println!("(design note: counter scaling noise is part of the measured signal)");
    let variants: [(&str, Option<PmuConfig>); 3] = [
        ("exact counting (no PMU sharing)", None),
        (
            "16 events on 8 counters (paper)",
            Some(PmuConfig::haswell_collected()),
        ),
        (
            "52 events on 8 counters (full catalog)",
            Some(PmuConfig::haswell_full()),
        ),
    ];
    let mut table = TextTable::new(vec!["pmu mode", "J48 accuracy", "Logistic accuracy"]);
    for (label, pmu) in variants {
        let mut variant = config.clone();
        variant.collector.sampler.pmu = pmu;
        let collection = cache.collect(&variant)?;
        let (train_hpc, test_hpc) = collection.dataset.split(0.7, variant.split_seed);
        let train = to_binary_dataset(&train_hpc);
        let test = to_binary_dataset(&test_hpc);
        let mut accs = Vec::new();
        for kind in [ClassifierKind::J48, ClassifierKind::Logistic] {
            let mut model = kind.instantiate();
            hbmd_ml::fit_timed(&mut model, &train)?;
            accs.push(Evaluation::of(&model, &test).accuracy());
        }
        table.row(vec![label.to_owned(), pct(accs[0]), pct(accs[1])]);
    }
    print!("{}", table.render());
    Ok(())
}

fn ablate_noise(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Ablation: container isolation vs shared-host noise");
    println!("(the LXC containers' purpose: keep host activity out of the counters)");
    let mut table = TextTable::new(vec!["host noise ratio", "J48 accuracy"]);
    for noise in [0.0, 0.5, 1.0, 2.0] {
        let mut variant = config.clone();
        variant.collector.sampler.host_noise = noise;
        let collection = cache.collect(&variant)?;
        let (train_hpc, test_hpc) = collection.dataset.split(0.7, variant.split_seed);
        let train = to_binary_dataset(&train_hpc);
        let test = to_binary_dataset(&test_hpc);
        let mut model = ClassifierKind::J48.instantiate();
        hbmd_ml::fit_timed(&mut model, &train)?;
        table.row(vec![
            format!("{noise:.1}"),
            pct(Evaluation::of(&model, &test).accuracy()),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn ablate_features(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Ablation: feature-count sweep (beyond the paper's 8 and 4)");
    let collection = cache.collect(config)?;
    let (train_hpc, test_hpc) = collection.dataset.split(0.7, config.split_seed);
    let plan = FeaturePlan::fit(&train_hpc)?;
    let train_full = to_binary_dataset(&train_hpc);
    let test_full = to_binary_dataset(&test_hpc);
    let mut table = TextTable::new(vec![
        "features",
        "J48 accuracy",
        "Logistic accuracy",
        "Logistic area",
    ]);
    for k in [2usize, 4, 8, 12, 16] {
        let indices = plan.resolve(FeatureSet::Top(k))?;
        let train = train_full.select_features(&indices)?;
        let test = test_full.select_features(&indices)?;
        let mut j48 = ClassifierKind::J48.instantiate();
        hbmd_ml::fit_timed(&mut j48, &train)?;
        let mut logistic = ClassifierKind::Logistic.instantiate();
        hbmd_ml::fit_timed(&mut logistic, &train)?;
        let area =
            hbmd_fpga::synthesize(&logistic.datapath()?, &SynthConfig::default()).area_units();
        table.row(vec![
            k.to_string(),
            pct(Evaluation::of(&j48, &test).accuracy()),
            pct(Evaluation::of(&logistic, &test).accuracy()),
            format!("{area:.0}"),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn ablate_mlp(
    config: &ExperimentConfig,
    cache: &CollectCache,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("## Ablation: MLP hidden width vs accuracy and area");
    let collection = cache.collect(config)?;
    let (train_hpc, test_hpc) = collection.dataset.split(0.7, config.split_seed);
    let train = to_binary_dataset(&train_hpc);
    let test = to_binary_dataset(&test_hpc);
    let mut table = TextTable::new(vec!["hidden units", "accuracy", "area", "latency cycles"]);
    for hidden in [2usize, 4, 9, 16, 32] {
        let mut mlp = hbmd_ml::Mlp::with_hidden(hidden);
        hbmd_ml::fit_timed(&mut mlp, &train)?;
        let evaluation = Evaluation::of(&mlp, &test);
        let report = hbmd_fpga::synthesize(
            &hbmd_fpga::ToDatapath::datapath(&mlp)?,
            &SynthConfig::default(),
        );
        table.row(vec![
            hidden.to_string(),
            pct(evaluation.accuracy()),
            format!("{:.0}", report.area_units()),
            report.latency_cycles.to_string(),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}
