use crate::classifier::Classifier;
use crate::data::{Dataset, MlError};

/// WEKA `NaiveBayes` with Gaussian likelihoods on numeric attributes.
///
/// Per class, each feature gets an independent normal model; prediction
/// maximises `log P(class) + Σ log N(x_j; μ_cj, σ_cj)`. Variances are
/// floored to keep degenerate (constant) features finite.
///
/// # Examples
///
/// ```
/// use hbmd_ml::{Classifier, Dataset, NaiveBayes};
///
/// let mut data = Dataset::new(vec!["x".into()], vec!["lo".into(), "hi".into()])?;
/// for i in 0..20 {
///     let x = if i < 10 { i as f64 } else { 100.0 + i as f64 };
///     data.push(vec![x], usize::from(i >= 10))?;
/// }
/// let mut nb = NaiveBayes::new();
/// nb.fit(&data)?;
/// assert_eq!(nb.predict(&[3.0]), 0);
/// assert_eq!(nb.predict(&[110.0]), 1);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct NaiveBayes {
    model: Option<NbModel>,
}

#[derive(Debug, Clone)]
struct NbModel {
    /// `log P(class)`, `-inf` for absent classes.
    log_priors: Vec<f64>,
    /// `[class][feature] -> (mean, variance)`.
    gaussians: Vec<Vec<(f64, f64)>>,
}

/// Variance floor preventing zero-width Gaussians.
const VAR_FLOOR: f64 = 1e-9;

impl NaiveBayes {
    /// A new, untrained model.
    pub fn new() -> NaiveBayes {
        NaiveBayes::default()
    }

    /// `(num_features, num_classes)` of the fitted model.
    pub fn dims(&self) -> Option<(usize, usize)> {
        self.model
            .as_ref()
            .map(|m| (m.gaussians[0].len(), m.log_priors.len()))
    }
}

impl Classifier for NaiveBayes {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        data.check_trainable()?;
        let classes = data.num_classes();
        let features = data.num_features();
        let counts = data.class_counts();
        let n = data.len() as f64;

        let log_priors: Vec<f64> = counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    f64::NEG_INFINITY
                } else {
                    (c as f64 / n).ln()
                }
            })
            .collect();

        let mut gaussians = vec![vec![(0.0, VAR_FLOOR); features]; classes];
        for class in 0..classes {
            if counts[class] == 0 {
                continue;
            }
            let nc = counts[class] as f64;
            for j in 0..features {
                let mean: f64 = data
                    .iter()
                    .filter(|&(_, l)| l == class)
                    .map(|(r, _)| r[j])
                    .sum::<f64>()
                    / nc;
                let var: f64 = data
                    .iter()
                    .filter(|&(_, l)| l == class)
                    .map(|(r, _)| (r[j] - mean).powi(2))
                    .sum::<f64>()
                    / nc;
                gaussians[class][j] = (mean, var.max(VAR_FLOOR));
            }
        }
        self.model = Some(NbModel {
            log_priors,
            gaussians,
        });
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> usize {
        let m = self
            .model
            .as_ref()
            .expect("NaiveBayes::predict called before fit");
        let mut best = (0usize, f64::NEG_INFINITY);
        for (class, &log_prior) in m.log_priors.iter().enumerate() {
            if log_prior == f64::NEG_INFINITY {
                continue;
            }
            let mut score = log_prior;
            for (j, &x) in features.iter().enumerate() {
                let (mean, var) = m.gaussians[class][j];
                score += -0.5 * ((x - mean).powi(2) / var + var.ln() + std::f64::consts::TAU.ln());
            }
            if score > best.1 {
                best = (class, score);
            }
        }
        best.0
    }

    fn name(&self) -> &str {
        "NaiveBayes"
    }
}

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for NaiveBayes {
    fn snap(&self, w: &mut SnapWriter) {
        self.model.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NaiveBayes {
            model: Snap::unsnap(r)?,
        })
    }
}

impl Snap for NbModel {
    fn snap(&self, w: &mut SnapWriter) {
        self.log_priors.snap(w);
        self.gaussians.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(NbModel {
            log_priors: Snap::unsnap(r)?,
            gaussians: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_shifted_gaussians() {
        let mut d = Dataset::new(vec!["x".into(), "y".into()], vec!["a".into(), "b".into()])
            .expect("schema");
        for i in 0..50 {
            let wiggle = (i % 5) as f64 * 0.3;
            d.push(vec![wiggle, 1.0 + wiggle], 0).expect("row");
            d.push(vec![10.0 + wiggle, 12.0 + wiggle], 1).expect("row");
        }
        let mut nb = NaiveBayes::new();
        nb.fit(&d).expect("fit");
        assert_eq!(nb.predict(&[0.5, 1.5]), 0);
        assert_eq!(nb.predict(&[10.5, 12.5]), 1);
        assert_eq!(nb.dims(), Some((2, 2)));
    }

    #[test]
    fn priors_break_ties() {
        // Identical feature distributions, skewed priors: predict the
        // frequent class.
        let mut d =
            Dataset::new(vec!["x".into()], vec!["rare".into(), "common".into()]).expect("schema");
        for i in 0..4 {
            d.push(vec![(i % 3) as f64], 0).expect("row");
        }
        for i in 0..40 {
            d.push(vec![(i % 3) as f64], 1).expect("row");
        }
        let mut nb = NaiveBayes::new();
        nb.fit(&d).expect("fit");
        assert_eq!(nb.predict(&[1.0]), 1);
    }

    #[test]
    fn constant_features_do_not_blow_up() {
        let mut d = Dataset::new(
            vec!["flat".into(), "signal".into()],
            vec!["a".into(), "b".into()],
        )
        .expect("schema");
        for i in 0..20 {
            d.push(vec![7.0, i as f64], usize::from(i >= 10))
                .expect("row");
        }
        let mut nb = NaiveBayes::new();
        nb.fit(&d).expect("fit");
        assert_eq!(nb.predict(&[7.0, 2.0]), 0);
        assert_eq!(nb.predict(&[7.0, 18.0]), 1);
    }

    #[test]
    fn absent_classes_are_never_predicted() {
        let mut d = Dataset::new(
            vec!["x".into()],
            vec!["a".into(), "b".into(), "ghost".into()],
        )
        .expect("schema");
        for i in 0..20 {
            d.push(vec![i as f64], usize::from(i >= 10)).expect("row");
        }
        let mut nb = NaiveBayes::new();
        nb.fit(&d).expect("fit");
        for x in 0..20 {
            assert_ne!(nb.predict(&[x as f64]), 2);
        }
    }

    #[test]
    fn rejects_untrainable() {
        let d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        assert!(NaiveBayes::new().fit(&d).is_err());
    }
}
