//! Prometheus text exposition format (version 0.0.4) over a
//! [`MetricsSnapshot`] — zero dependencies, suitable for a `/metrics`
//! endpoint scraped by any Prometheus-compatible collector.
//!
//! Mapping rules:
//!
//! * every metric is prefixed `hbmd_`; **wall-clock histograms** keep
//!   the suite's determinism segregation visible as a `hbmd_wall_`
//!   prefix instead, so dashboards can tell exact workload counts from
//!   machine-dependent latencies at a glance,
//! * counters gain the conventional `_total` suffix,
//! * metric and label names are sanitised to the Prometheus charset
//!   (`[a-zA-Z0-9_]`, no leading digit after the prefix); label
//!   *values* are escaped per the format spec (`\\`, `\"`, `\n`),
//! * histograms render cumulative `_bucket{le="..."}` series over the
//!   registry's power-of-two buckets (upper bound `2^k - 1` for bit
//!   length `k`), then `_sum` and `_count`; empty trailing buckets are
//!   elided, `le="+Inf"` always closes the series; each histogram also
//!   exports a sibling `_quantile{quantile="..."}` gauge family with
//!   the exact rank-statistic p50/p95/p99/p999 (observed values, not
//!   bucket-boundary estimates).
//!
//! The output is a pure function of the snapshot: stable ordering
//! (the registry's `BTreeMap` key order), no timestamps.

use std::collections::BTreeSet;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Content-Type value a `/metrics` response should carry.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Render a snapshot in Prometheus text format (0.0.4).
///
/// Counters come first, then gauges, then histograms, each group in
/// the snapshot's stable order. Every family gets one `# HELP` and
/// `# TYPE` header; the text always ends with a newline.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    let mut headed: BTreeSet<String> = BTreeSet::new();

    for counter in &snapshot.counters {
        let family = format!("hbmd_{}_total", sanitize_name(&counter.name));
        head(&mut out, &mut headed, &family, &counter.name, "counter");
        out.push_str(&family);
        out.push_str(&render_labels(&counter.labels, None));
        out.push_str(&format!(" {}\n", counter.value));
    }

    for gauge in &snapshot.gauges {
        let family = format!("hbmd_{}", sanitize_name(&gauge.name));
        head(&mut out, &mut headed, &family, &gauge.name, "gauge");
        out.push_str(&family);
        out.push_str(&render_labels(&gauge.labels, None));
        out.push_str(&format!(" {}\n", gauge.value));
    }

    for histogram in &snapshot.histograms {
        render_histogram(&mut out, &mut headed, histogram);
    }
    out
}

fn render_histogram(out: &mut String, headed: &mut BTreeSet<String>, h: &HistogramSnapshot) {
    let prefix = if h.wall_clock { "hbmd_wall_" } else { "hbmd_" };
    let family = format!("{prefix}{}", sanitize_name(&h.name));
    head(out, headed, &family, &h.name, "histogram");
    // Cumulative buckets up to the last non-empty one; `+Inf` closes.
    let last = h.buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
    let mut cumulative = 0u64;
    for (bits, &n) in h.buckets.iter().take(last).enumerate() {
        cumulative += n;
        out.push_str(&family);
        out.push_str("_bucket");
        out.push_str(&render_labels(&h.labels, Some(("le", &le_bound(bits)))));
        out.push_str(&format!(" {cumulative}\n"));
    }
    out.push_str(&family);
    out.push_str("_bucket");
    out.push_str(&render_labels(&h.labels, Some(("le", "+Inf"))));
    out.push_str(&format!(" {}\n", h.count));
    out.push_str(&format!(
        "{family}_sum{} {}\n",
        render_labels(&h.labels, None),
        h.sum
    ));
    out.push_str(&format!(
        "{family}_count{} {}\n",
        render_labels(&h.labels, None),
        h.count
    ));
    // Exact rank-statistic quantiles as a sibling gauge family — the
    // histogram TYPE cannot carry `quantile` labels, and these values
    // were actually observed, not estimated from bucket boundaries.
    let quantiles = format!("{family}_quantile");
    head(out, headed, &quantiles, &h.name, "gauge");
    for (q, value) in [
        ("0.5", h.p50),
        ("0.95", h.p95),
        ("0.99", h.p99),
        ("0.999", h.p999),
    ] {
        out.push_str(&quantiles);
        out.push_str(&render_labels(&h.labels, Some(("quantile", q))));
        out.push_str(&format!(" {value}\n"));
    }
}

/// Upper bound of the bit-length bucket `bits`, as a decimal string.
fn le_bound(bits: usize) -> String {
    match bits {
        0 => "0".to_owned(),
        64 => u64::MAX.to_string(),
        b => ((1u64 << b) - 1).to_string(),
    }
}

fn head(out: &mut String, headed: &mut BTreeSet<String>, family: &str, raw: &str, kind: &str) {
    if headed.insert(family.to_owned()) {
        out.push_str(&format!(
            "# HELP {family} hbmd metric `{}`\n# TYPE {family} {kind}\n",
            escape_help(raw)
        ));
    }
}

/// Render a label set, optionally with a trailing synthetic label
/// (`le` for buckets, `quantile` for the rank-statistic series).
/// Empty sets with no extra label render as nothing (bare name).
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_label_name(k), escape_label_value(v)))
        .collect();
    if let Some((name, value)) = extra {
        parts.push(format!("{name}=\"{value}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Map a raw metric name onto the Prometheus charset; anything outside
/// `[a-zA-Z0-9_]` (dots, dashes, spaces, unicode) becomes `_`.
fn sanitize_name(raw: &str) -> String {
    let mut out: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() {
        out.push_str("unnamed");
    }
    out
}

/// Label names additionally must not start with a digit.
fn sanitize_label_name(raw: &str) -> String {
    let out = sanitize_name(raw);
    if out.starts_with(|c: char| c.is_ascii_digit()) {
        format!("_{out}")
    } else {
        out
    }
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and line feed.
fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a HELP line payload: backslash and line feed.
fn escape_help(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn counters_render_with_prefix_total_and_type_line() {
        let registry = Registry::new();
        registry.counter("collect.samples").add(42);
        registry
            .counter_with("verdict", &[("verdict", "malware")])
            .add(7);
        let text = render(&registry.snapshot());
        assert!(text.contains("# TYPE hbmd_collect_samples_total counter\n"));
        assert!(text.contains("hbmd_collect_samples_total 42\n"));
        assert!(text.contains("hbmd_verdict_total{verdict=\"malware\"} 7\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn one_type_line_per_family_across_label_sets() {
        let registry = Registry::new();
        registry
            .counter_with("verdict", &[("verdict", "benign")])
            .add(1);
        registry
            .counter_with("verdict", &[("verdict", "malware")])
            .add(2);
        let text = render(&registry.snapshot());
        assert_eq!(text.matches("# TYPE hbmd_verdict_total counter").count(), 1);
    }

    #[test]
    fn gauges_keep_sign_and_plain_prefix() {
        let registry = Registry::new();
        registry.gauge("threads").set(-3);
        let text = render(&registry.snapshot());
        assert!(text.contains("# TYPE hbmd_threads gauge\n"));
        assert!(text.contains("hbmd_threads -3\n"));
    }

    #[test]
    fn histograms_render_cumulative_buckets_sum_count() {
        let registry = Registry::new();
        let h = registry.histogram("window.bytes");
        h.record(0); // bucket 0, le="0"
        h.record(1); // bucket 1, le="1"
        h.record(5); // bucket 3, le="7"
        h.record(5);
        let text = render(&registry.snapshot());
        assert!(text.contains("# TYPE hbmd_window_bytes histogram\n"));
        assert!(text.contains("hbmd_window_bytes_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("hbmd_window_bytes_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("hbmd_window_bytes_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("hbmd_window_bytes_bucket{le=\"7\"} 4\n"));
        assert!(text.contains("hbmd_window_bytes_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("hbmd_window_bytes_sum 11\n"));
        assert!(text.contains("hbmd_window_bytes_count 4\n"));
        // Buckets past the largest observation are elided.
        assert!(!text.contains("le=\"15\""));
    }

    #[test]
    fn histograms_export_exact_rank_quantiles_as_a_gauge_family() {
        let registry = Registry::new();
        let h = registry.histogram("latency");
        for v in 1..=100u64 {
            h.record(v);
        }
        let text = render(&registry.snapshot());
        assert!(text.contains("# TYPE hbmd_latency_quantile gauge\n"));
        assert!(text.contains("hbmd_latency_quantile{quantile=\"0.5\"} 50\n"));
        assert!(text.contains("hbmd_latency_quantile{quantile=\"0.95\"} 95\n"));
        assert!(text.contains("hbmd_latency_quantile{quantile=\"0.99\"} 99\n"));
        assert!(text.contains("hbmd_latency_quantile{quantile=\"0.999\"} 100\n"));
    }

    #[test]
    fn build_info_gauge_renders_with_manifest_labels() {
        let registry = Registry::new();
        registry
            .gauge_with(
                "build_info",
                &[
                    ("version", "0.1.0"),
                    ("config_digest", "00c0ffee00c0ffee"),
                    ("source", "sim"),
                ],
            )
            .set(1);
        let text = render(&registry.snapshot());
        assert!(text.contains("# TYPE hbmd_build_info gauge\n"));
        assert!(text.contains(
            "hbmd_build_info{version=\"0.1.0\",\
             config_digest=\"00c0ffee00c0ffee\",source=\"sim\"} 1\n"
        ));
    }

    #[test]
    fn wall_clock_histograms_carry_the_wall_prefix() {
        let registry = Registry::new();
        registry.timing("classify_ns").record(1000);
        registry.histogram("votes").record(3);
        let text = render(&registry.snapshot());
        assert!(text.contains("# TYPE hbmd_wall_classify_ns histogram\n"));
        assert!(text.contains("hbmd_wall_classify_ns_count 1\n"));
        assert!(text.contains("# TYPE hbmd_votes histogram\n"));
        assert!(!text.contains("hbmd_wall_votes"));
    }

    #[test]
    fn hostile_names_and_label_values_are_sanitised() {
        let registry = Registry::new();
        registry
            .counter_with("weird metric-name.x", &[("1bad key", "a\"b\\c\nd")])
            .add(1);
        let text = render(&registry.snapshot());
        assert!(text.contains("hbmd_weird_metric_name_x_total"));
        assert!(text.contains("_1bad_key=\"a\\\"b\\\\c\\nd\""));
        // Every rendered line is a comment or `name{...} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_whitespace()
                        .nth(1)
                        .is_some_and(|v| v.parse::<f64>().is_ok()),
                "unparseable line: {line}"
            );
        }
    }

    #[test]
    fn empty_histogram_renders_inf_bucket_only() {
        let registry = Registry::new();
        let _ = registry.histogram("empty");
        let text = render(&registry.snapshot());
        assert!(text.contains("hbmd_empty_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("hbmd_empty_sum 0\n"));
        assert!(!text.contains("le=\"0\""));
    }
}
