//! Microbenchmark: per-window inference latency of every trained
//! classifier — the software analogue of the Figure 15 hardware latency
//! comparison (the ordering should rhyme: rules fast, kNN slow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbmd_bench::config_at_scale;
use hbmd_core::{to_binary_dataset, ClassifierKind, TrainedModel};
use hbmd_ml::{Classifier, Dataset};

fn training_data() -> Dataset {
    let mut config = config_at_scale(0.05);
    config.collector.sampler.windows_per_sample = 4;
    let dataset = config.collect();
    to_binary_dataset(&dataset)
}

fn bench_prediction(c: &mut Criterion) {
    let data = training_data();
    let probe: Vec<f64> = data.rows()[0].to_vec();

    let mut suite: Vec<TrainedModel> = Vec::new();
    for kind in ClassifierKind::binary_suite() {
        let mut model = kind.instantiate();
        model.fit(&data).expect("fit");
        suite.push(model);
    }
    // IBk separately: its per-query cost is the point of the paper's
    // instance-based criticism.
    let mut knn = ClassifierKind::Ibk.instantiate();
    knn.fit(&data).expect("fit");
    suite.push(knn);

    let mut group = c.benchmark_group("predict");
    for model in &suite {
        group.bench_with_input(
            BenchmarkId::new("window", model.name()),
            model,
            |b, model| {
                b.iter(|| model.predict(&probe));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
