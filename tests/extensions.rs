//! Integration coverage for the suite's extension features: voting
//! committees, ROC analysis, detection latency, HDL emission, and
//! folded synthesis — all through the public facade.

use hbmd::core::experiments::{latency, roc, ExperimentConfig};
use hbmd::core::{ClassifierKind, FeatureSet, VotingDetector};
use hbmd::fpga::{emit_system_verilog, synthesize, SynthConfig};
use hbmd::malware::SampleCatalog;
use hbmd::ml::{Classifier, RocCurve};
use hbmd::perf::{Collector, CollectorConfig, HpcDataset};

fn collected() -> HpcDataset {
    let catalog = SampleCatalog::scaled(0.03, 71);
    Collector::new(CollectorConfig::fast())
        .expect("config")
        .collect(&catalog)
        .expect("collect")
        .dataset
}

#[test]
fn voting_committee_detects_on_real_data() {
    let dataset = collected();
    let committee = VotingDetector::train_binary(
        &[
            ClassifierKind::OneR,
            ClassifierKind::JRip,
            ClassifierKind::J48,
        ],
        FeatureSet::Top(8),
        &dataset,
    )
    .expect("train");
    assert!(committee.evaluation().accuracy() > 0.75);
    // The committee verdict agrees with its members most of the time.
    let mut agreements = 0usize;
    for row in dataset.rows().iter().take(100) {
        let committee_says = committee.classify(&row.features).is_malware();
        let member_majority = committee
            .members()
            .iter()
            .filter(|m| m.classify(&row.features).is_malware())
            .count()
            * 2
            >= committee.members().len();
        if committee_says == member_majority {
            agreements += 1;
        }
    }
    assert_eq!(agreements, 100, "vote must equal the member majority");
}

#[test]
fn roc_of_a_real_detector_beats_chance_strongly() {
    let rows = roc::comparison(&ExperimentConfig::fast()).expect("roc");
    let logistic = rows.iter().find(|r| r.scheme == "Logistic").expect("row");
    assert!(logistic.auc > 0.7, "auc {}", logistic.auc);
    // Relaxing the FPR budget never loses recall.
    assert!(logistic.at_5pct_fpr.tpr >= logistic.at_1pct_fpr.tpr);
}

#[test]
fn roc_curve_matches_manual_counts() {
    // Cross-check the curve against a hand-counted threshold.
    let scores = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4];
    let labels = [true, true, false, true, false, false];
    let curve = RocCurve::from_scores(&scores, &labels).expect("roc");
    // At threshold 0.6: flagged = {0.9, 0.8, 0.7, 0.6} -> TP 3, FP 1.
    let point = curve
        .points()
        .iter()
        .find(|p| (p.threshold - 0.6).abs() < 1e-12)
        .expect("threshold present");
    assert!((point.tpr - 1.0).abs() < 1e-12);
    assert!((point.fpr - 1.0 / 3.0).abs() < 1e-12);
}

#[test]
fn detection_latency_has_warmup_floor() {
    let rows = latency::windows_to_alarm(&ExperimentConfig::fast(), 3, 12).expect("latency");
    for row in &rows {
        if row.detected > 0 {
            // A 4-window/3-vote monitor cannot alarm before window 3.
            assert!(
                row.mean_windows_to_alarm >= 3.0,
                "{}: {}",
                row.class,
                row.mean_windows_to_alarm
            );
        }
        assert!(row.detection_rate() <= 1.0);
    }
}

#[test]
fn hdl_emission_for_every_binary_suite_member() {
    let dataset = collected();
    let (train_hpc, _) = dataset.split(0.7, 42);
    let train = hbmd::core::to_binary_dataset(&train_hpc);
    for kind in ClassifierKind::binary_suite() {
        let mut model = kind.instantiate();
        model.fit(&train).expect("fit");
        let rtl = emit_system_verilog(
            &model.datapath().expect("datapath"),
            &SynthConfig::default(),
        );
        assert!(rtl.contains("module hbmd_"), "{kind}: missing module");
        assert!(rtl.contains("endmodule"), "{kind}: missing endmodule");
        assert!(rtl.contains("out_valid"), "{kind}: missing interface");
    }
}

#[test]
fn folding_sweep_is_monotone_on_a_real_model() {
    let dataset = collected();
    let (train_hpc, _) = dataset.split(0.7, 42);
    let train = hbmd::core::to_binary_dataset(&train_hpc);
    let mut mlp = ClassifierKind::Mlp.instantiate();
    mlp.fit(&train).expect("fit");
    let spec = mlp.datapath().expect("datapath");

    let mut last_area = f64::INFINITY;
    let mut last_latency = 0u64;
    for fold in [1u64, 2, 4, 8] {
        let report = synthesize(&spec, &SynthConfig::folded(fold));
        assert!(report.area_units() <= last_area, "fold {fold} grew area");
        assert!(
            report.latency_cycles >= last_latency,
            "fold {fold} shrank latency"
        );
        last_area = report.area_units();
        last_latency = report.latency_cycles;
    }
}
