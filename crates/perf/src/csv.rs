//! Dataset CSV interchange.
//!
//! The reference pipeline combined all per-sample trace files into one
//! CSV with **17 columns: the 16 performance counters plus a class
//! column**. This module writes and parses that exact layout, with an
//! optional leading `sample` column so the sample-granularity train/test
//! split can survive a round trip.

use std::io::{BufRead, Write};

use hbmd_events::{FeatureVector, HpcEvent};
use hbmd_malware::{AppClass, SampleId};

use crate::dataset::{DataRow, HpcDataset};
use crate::error::PerfError;

/// Write `dataset` as CSV. When `with_sample_ids` is set, a leading
/// `sample` column records row provenance; otherwise the file has the
/// paper's 17 columns.
///
/// A `&mut` writer can be passed.
///
/// # Errors
///
/// Propagates any I/O error from `out`.
pub fn write_csv<W: Write>(
    mut out: W,
    dataset: &HpcDataset,
    with_sample_ids: bool,
) -> Result<(), PerfError> {
    let mut header = String::new();
    if with_sample_ids {
        header.push_str("sample,");
    }
    for event in HpcEvent::ALL {
        header.push_str(event.name());
        header.push(',');
    }
    header.push_str("class");
    writeln!(out, "{header}")?;

    for row in dataset.rows() {
        let mut line = String::new();
        if with_sample_ids {
            line.push_str(&row.sample.0.to_string());
            line.push(',');
        }
        for value in row.features.as_slice() {
            line.push_str(&format!("{value:.4},"));
        }
        line.push_str(row.class.name());
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Parse a CSV previously produced by [`write_csv`] (either layout; the
/// header decides). Without a `sample` column, each row is assigned a
/// fresh sequential [`SampleId`].
///
/// A `&mut` reader can be passed.
///
/// # Errors
///
/// Returns [`PerfError::ParseCsv`] for a missing/wrong header, a row
/// with the wrong column count, a non-numeric feature, or an unknown
/// class name.
pub fn read_csv<R: BufRead>(reader: R) -> Result<HpcDataset, PerfError> {
    let mut lines = reader.lines().enumerate();
    let (_, header) = match lines.next() {
        Some((i, line)) => (i, line?),
        None => return Err(csv_err(1, "empty file")),
    };
    let columns: Vec<&str> = header.trim().split(',').collect();
    let with_ids = columns.first() == Some(&"sample");
    let feature_offset = usize::from(with_ids);
    let expected = feature_offset + HpcEvent::COUNT + 1;
    if columns.len() != expected {
        return Err(csv_err(
            1,
            &format!("expected {expected} columns, found {}", columns.len()),
        ));
    }
    for (i, event) in HpcEvent::ALL.iter().enumerate() {
        if columns[feature_offset + i] != event.name() {
            return Err(csv_err(
                1,
                &format!(
                    "column {} should be `{}`, found `{}`",
                    feature_offset + i,
                    event.name(),
                    columns[feature_offset + i]
                ),
            ));
        }
    }

    let mut dataset = HpcDataset::new();
    let mut next_id = 0u32;
    for (index, line) in lines {
        let line_no = index + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != expected {
            return Err(csv_err(
                line_no,
                &format!("expected {expected} columns, found {}", fields.len()),
            ));
        }
        let sample = if with_ids {
            SampleId(
                fields[0]
                    .parse()
                    .map_err(|_| csv_err(line_no, "bad sample id"))?,
            )
        } else {
            let id = SampleId(next_id);
            next_id += 1;
            id
        };
        let mut values = Vec::with_capacity(HpcEvent::COUNT);
        for field in &fields[feature_offset..feature_offset + HpcEvent::COUNT] {
            values.push(
                field
                    .parse::<f64>()
                    .map_err(|_| csv_err(line_no, &format!("bad feature value `{field}`")))?,
            );
        }
        let class: AppClass = fields[expected - 1].parse().map_err(|_| {
            csv_err(
                line_no,
                &format!("unknown class `{}`", fields[expected - 1]),
            )
        })?;
        dataset.push(DataRow {
            sample,
            class,
            features: FeatureVector::from_slice(&values).expect("16 values"),
        });
    }
    Ok(dataset)
}

fn csv_err(line: usize, message: &str) -> PerfError {
    PerfError::ParseCsv {
        line,
        message: message.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn toy() -> HpcDataset {
        let mut dataset = HpcDataset::new();
        for (i, class) in [AppClass::Benign, AppClass::Worm, AppClass::Trojan]
            .iter()
            .enumerate()
        {
            let values: Vec<f64> = (0..HpcEvent::COUNT).map(|j| (i * 20 + j) as f64).collect();
            dataset.push(DataRow {
                sample: SampleId(i as u32 + 100),
                class: *class,
                features: FeatureVector::from_slice(&values).expect("16"),
            });
        }
        dataset
    }

    #[test]
    fn round_trip_with_ids() {
        let original = toy();
        let mut buffer = Vec::new();
        write_csv(&mut buffer, &original, true).expect("write");
        let parsed = read_csv(BufReader::new(buffer.as_slice())).expect("parse");
        assert_eq!(parsed, original);
    }

    #[test]
    fn round_trip_paper_layout() {
        let original = toy();
        let mut buffer = Vec::new();
        write_csv(&mut buffer, &original, false).expect("write");
        let text = String::from_utf8(buffer.clone()).expect("utf8");
        assert_eq!(
            text.lines().next().unwrap().split(',').count(),
            17,
            "paper layout is 16 features + class"
        );
        let parsed = read_csv(BufReader::new(buffer.as_slice())).expect("parse");
        assert_eq!(parsed.len(), original.len());
        // Sample ids are synthesised sequentially.
        assert_eq!(parsed.rows()[0].sample, SampleId(0));
        assert_eq!(parsed.rows()[0].class, AppClass::Benign);
    }

    #[test]
    fn wrong_column_count_is_an_error() {
        let text = "branch-instructions,class\n1.0,benign\n";
        let err = read_csv(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("columns"));
    }

    #[test]
    fn wrong_header_name_is_an_error() {
        let mut buffer = Vec::new();
        write_csv(&mut buffer, &toy(), false).expect("write");
        let text = String::from_utf8(buffer).expect("utf8").replacen(
            "branch-instructions",
            "branch-intructions",
            1,
        );
        let err = read_csv(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("branch-intructions"));
    }

    #[test]
    fn bad_value_and_bad_class_are_errors() {
        let mut buffer = Vec::new();
        write_csv(&mut buffer, &toy(), false).expect("write");
        let good = String::from_utf8(buffer).expect("utf8");

        let bad_value = good.replacen("0.0000", "zero", 1);
        assert!(read_csv(BufReader::new(bad_value.as_bytes())).is_err());

        let bad_class = good.replacen("benign", "ransomware", 1);
        assert!(read_csv(BufReader::new(bad_class.as_bytes())).is_err());
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(read_csv(BufReader::new("".as_bytes())).is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut buffer = Vec::new();
        write_csv(&mut buffer, &toy(), true).expect("write");
        let mut text = String::from_utf8(buffer).expect("utf8");
        text.push('\n');
        let parsed = read_csv(BufReader::new(text.as_bytes())).expect("parse");
        assert_eq!(parsed.len(), 3);
    }
}
