//! Machine-readable timing report for the `repro` harness.
//!
//! `repro` writes a `BENCH_repro.json` next to its text output so CI
//! can track wall-clock per experiment, the thread count, and the
//! collection-cache hit/miss counters (the acceptance check that each
//! distinct collector configuration was collected exactly once). The
//! workspace vendors no JSON serializer, so the report renders itself.

use hbmd_core::CacheStats;

/// Wall-clock for one experiment phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Experiment name as passed on the command line.
    pub name: String,
    /// Wall-clock milliseconds.
    pub wall_ms: u128,
    /// Aggregate throughput for phases that measure one (the `fleet`
    /// phase's windows per second); omitted from the JSON otherwise.
    pub windows_per_sec: Option<f64>,
}

/// The full `BENCH_repro.json` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// `hbmd-bench` crate version that produced the report; `repro
    /// bench-diff` refuses to compare across versions.
    pub version: String,
    /// Thread-normalized FNV-1a digest of the run configuration, as a
    /// hex string (u64 digests do not round-trip through f64 JSON
    /// numbers). `repro bench-diff` refuses to compare reports whose
    /// digests differ — a changed scale or experiment set is a
    /// different workload, not a regression.
    pub config_digest: String,
    /// Catalog scale the run used.
    pub scale: f64,
    /// Experiment-layer worker threads.
    pub threads: usize,
    /// Collector worker threads.
    pub collector_threads: usize,
    /// Per-experiment wall-clock, in run order.
    pub phases: Vec<PhaseTiming>,
    /// Collection-cache counters for the whole run.
    pub cache_hits: usize,
    /// See `cache_hits`.
    pub cache_misses: usize,
    /// End-to-end wall-clock milliseconds.
    pub total_ms: u128,
}

impl BenchReport {
    /// Record the cache counters.
    pub fn set_cache_stats(&mut self, stats: CacheStats) {
        self.cache_hits = stats.hits;
        self.cache_misses = stats.misses;
    }

    /// Render the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.phases.len() * 48);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", json_string(&self.version)));
        out.push_str(&format!(
            "  \"config_digest\": {},\n",
            json_string(&self.config_digest)
        ));
        out.push_str(&format!("  \"scale\": {},\n", json_f64(self.scale)));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"collector_threads\": {},\n",
            self.collector_threads
        ));
        out.push_str("  \"phases\": [\n");
        for (i, phase) in self.phases.iter().enumerate() {
            let rate = phase
                .windows_per_sec
                .map(|w| format!(", \"windows_per_sec\": {}", json_f64(w)))
                .unwrap_or_default();
            out.push_str(&format!(
                "    {{\"name\": {}, \"wall_ms\": {}{}}}{}\n",
                json_string(&phase.name),
                phase.wall_ms,
                rate,
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"cache\": {{\"hits\": {}, \"misses\": {}}},\n",
            self.cache_hits, self.cache_misses
        ));
        out.push_str(&format!("  \"total_ms\": {}\n", self.total_ms));
        out.push_str("}\n");
        out
    }
}

/// A JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number for a finite `f64` (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            version: "0.1.0".to_owned(),
            config_digest: "00deadbeef00cafe".to_owned(),
            scale: 0.05,
            threads: 4,
            collector_threads: 8,
            phases: vec![
                PhaseTiming {
                    name: "fig13".to_owned(),
                    wall_ms: 1200,
                    windows_per_sec: None,
                },
                PhaseTiming {
                    name: "roc \"quoted\"".to_owned(),
                    wall_ms: 34,
                    windows_per_sec: Some(1234.5),
                },
            ],
            cache_hits: 12,
            cache_misses: 1,
            total_ms: 1234,
        }
    }

    #[test]
    fn renders_well_formed_json() {
        let json = sample().to_json();
        assert!(json.contains("\"version\": \"0.1.0\""));
        assert!(json.contains("\"config_digest\": \"00deadbeef00cafe\""));
        assert!(json.contains("\"scale\": 0.05"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("{\"name\": \"fig13\", \"wall_ms\": 1200},"));
        assert!(json.contains("\"roc \\\"quoted\\\"\""));
        assert!(json.contains("\"windows_per_sec\": 1234.5"));
        assert!(json.contains("\"cache\": {\"hits\": 12, \"misses\": 1}"));
        assert!(json.contains("\"total_ms\": 1234"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escapes_control_characters_and_non_finite_numbers() {
        assert_eq!(json_string("a\nb\t\u{1}"), "\"a\\nb\\t\\u0001\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.2), "0.2");
    }

    #[test]
    fn cache_stats_transfer() {
        let mut report = sample();
        report.set_cache_stats(CacheStats { hits: 3, misses: 2 });
        assert_eq!(report.cache_hits, 3);
        assert_eq!(report.cache_misses, 2);
    }
}
