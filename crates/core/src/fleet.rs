//! Fleet-scale primitives: stream→shard placement and per-stream
//! health scoring.
//!
//! A fleet monitor watches thousands of independent endpoint streams
//! with one shared trained model. Two deterministic policies live
//! here, mirroring the [`supervisor`](crate::supervisor) design (tick
//! counted, wall-clock free, exactly replayable):
//!
//! * [`shard_of`] — stable hash placement of a stream onto one of N
//!   shards. Every window of a stream lands on the same shard, so
//!   per-stream window order (and therefore the verdict stream) is
//!   independent of the shard count.
//! * [`StreamHealth`] — a leaky-bucket fault score with a
//!   quarantine/probation/readmission state machine. A persistently
//!   faulty stream (e.g. a NaN-bursting collector) is quarantined —
//!   its windows are skipped instead of burning classifier time and
//!   polluting breaker statistics — then readmitted through a
//!   probation period once it behaves again.
//!
//! # Examples
//!
//! ```
//! use hbmd_core::fleet::{shard_of, StreamHealth, StreamHealthConfig, StreamStanding};
//!
//! // Placement is stable: the same stream always maps to the same shard.
//! assert_eq!(shard_of(7, 4), shard_of(7, 4));
//!
//! let mut health = StreamHealth::new(StreamHealthConfig {
//!     fault_threshold: 4,
//!     quarantine_ticks: 3,
//!     probation_clean: 2,
//! });
//! for _ in 0..2 {
//!     health.record(true); // each fault scores 2
//! }
//! assert_eq!(health.standing(), StreamStanding::Quarantined);
//! ```

use hbmd_ml::snap::{Snap, SnapError, SnapReader, SnapWriter};
use hbmd_obs::manifest::fnv1a_64;

/// The shard a stream belongs to: FNV-1a of the stream id, mod the
/// shard count. Stable across runs and machines, and uniform enough
/// that a fleet spreads evenly without a placement table.
pub fn shard_of(stream: u64, shards: usize) -> usize {
    let shards = shards.max(1);
    (fnv1a_64(&stream.to_le_bytes()) % shards as u64) as usize
}

/// Where a stream currently stands with its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamStanding {
    /// Healthy: windows are classified normally.
    Active,
    /// Quarantined: windows are skipped (each skip burns one cooldown
    /// tick) until the quarantine elapses.
    Quarantined,
    /// Cooldown elapsed: windows are classified again, but one fault
    /// re-quarantines immediately and only a clean streak readmits.
    Probation,
}

impl StreamStanding {
    /// Lower-case name, as exposed on `/readyz` and in chaos output.
    pub fn as_str(self) -> &'static str {
        match self {
            StreamStanding::Active => "active",
            StreamStanding::Quarantined => "quarantined",
            StreamStanding::Probation => "probation",
        }
    }
}

impl std::fmt::Display for StreamStanding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Shape of the [`StreamHealth`] policy. All counts are in observed
/// windows (ticks), never wall-clock, so the state machine replays
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHealthConfig {
    /// Fault score that triggers quarantine. Each faulted window adds
    /// 2, each clean window drains 1 (leaky bucket) — so score
    /// `2·faults − cleans` reaching this threshold means faults are
    /// persistent, not sporadic. Zero is promoted to 1.
    pub fault_threshold: u32,
    /// Windows skipped while quarantined before probation begins.
    pub quarantine_ticks: u64,
    /// Consecutive clean windows on probation required to readmit.
    /// Zero is promoted to 1.
    pub probation_clean: u32,
}

impl Default for StreamHealthConfig {
    /// The serve defaults: quarantine after a sustained burst
    /// (score 16 ≈ 8 net faults), sit out 64 windows, readmit after 16
    /// clean probation windows.
    fn default() -> StreamHealthConfig {
        StreamHealthConfig {
            fault_threshold: 16,
            quarantine_ticks: 64,
            probation_clean: 16,
        }
    }
}

/// Per-stream health: a leaky-bucket fault score driving the
/// quarantine/probation/readmission state machine described on the
/// [module page](self).
///
/// Call [`record`](StreamHealth::record) once per window of the
/// stream, whether the window was classified (pass the fault flag) or
/// skipped in quarantine (the flag is ignored; the tick burns
/// cooldown). The return value is the standing to apply to the *next*
/// window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamHealth {
    config: StreamHealthConfig,
    standing: StreamStanding,
    fault_score: u32,
    cooldown_left: u64,
    clean_streak: u32,
    quarantines: u64,
    readmissions: u64,
}

impl StreamHealth {
    /// A healthy stream under `config` (zeroed counters, standing
    /// [`StreamStanding::Active`]).
    pub fn new(config: StreamHealthConfig) -> StreamHealth {
        StreamHealth {
            config: StreamHealthConfig {
                fault_threshold: config.fault_threshold.max(1),
                quarantine_ticks: config.quarantine_ticks,
                probation_clean: config.probation_clean.max(1),
            },
            standing: StreamStanding::Active,
            fault_score: 0,
            cooldown_left: 0,
            clean_streak: 0,
            quarantines: 0,
            readmissions: 0,
        }
    }

    /// Current standing.
    pub fn standing(&self) -> StreamStanding {
        self.standing
    }

    /// `true` while the stream's windows must be skipped.
    pub fn is_quarantined(&self) -> bool {
        self.standing == StreamStanding::Quarantined
    }

    /// Times the stream was quarantined.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Times the stream finished probation and was readmitted.
    pub fn readmissions(&self) -> u64 {
        self.readmissions
    }

    /// Record one window of this stream and return the standing to
    /// apply to the next one. `faulted` is meaningful while
    /// [`Active`](StreamStanding::Active) or
    /// [`Probation`](StreamStanding::Probation); a quarantined tick
    /// ignores it and burns cooldown instead.
    pub fn record(&mut self, faulted: bool) -> StreamStanding {
        match self.standing {
            StreamStanding::Active => {
                if faulted {
                    self.fault_score = self.fault_score.saturating_add(2);
                    if self.fault_score >= self.config.fault_threshold {
                        self.quarantine();
                    }
                } else {
                    self.fault_score = self.fault_score.saturating_sub(1);
                }
            }
            StreamStanding::Quarantined => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.standing = StreamStanding::Probation;
                    self.clean_streak = 0;
                }
            }
            StreamStanding::Probation => {
                if faulted {
                    self.quarantine();
                } else {
                    self.clean_streak += 1;
                    if self.clean_streak >= self.config.probation_clean {
                        self.standing = StreamStanding::Active;
                        self.fault_score = 0;
                        self.readmissions += 1;
                    }
                }
            }
        }
        self.standing
    }

    fn quarantine(&mut self) {
        self.standing = StreamStanding::Quarantined;
        self.quarantines += 1;
        self.fault_score = 0;
        self.cooldown_left = self.config.quarantine_ticks.max(1);
    }
}

const STANDING_TAGS: [StreamStanding; 3] = [
    StreamStanding::Active,
    StreamStanding::Quarantined,
    StreamStanding::Probation,
];

impl Snap for StreamHealth {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.config.fault_threshold);
        w.put_u64(self.config.quarantine_ticks);
        w.put_u32(self.config.probation_clean);
        let tag = STANDING_TAGS
            .iter()
            .position(|&s| s == self.standing)
            .expect("standing is one of the three tags") as u8;
        w.put_u8(tag);
        w.put_u32(self.fault_score);
        w.put_u64(self.cooldown_left);
        w.put_u32(self.clean_streak);
        w.put_u64(self.quarantines);
        w.put_u64(self.readmissions);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let fault_threshold = r.get_u32()?;
        let quarantine_ticks = r.get_u64()?;
        let probation_clean = r.get_u32()?;
        if fault_threshold == 0 || probation_clean == 0 {
            return Err(SnapError::Invalid(
                "stream health thresholds must be non-zero".to_owned(),
            ));
        }
        let tag = usize::from(r.get_u8()?);
        let standing = *STANDING_TAGS
            .get(tag)
            .ok_or_else(|| SnapError::Invalid(format!("standing tag {tag}")))?;
        Ok(StreamHealth {
            config: StreamHealthConfig {
                fault_threshold,
                quarantine_ticks,
                probation_clean,
            },
            standing,
            fault_score: r.get_u32()?,
            cooldown_left: r.get_u64()?,
            clean_streak: r.get_u32()?,
            quarantines: r.get_u64()?,
            readmissions: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> StreamHealth {
        StreamHealth::new(StreamHealthConfig {
            fault_threshold: 4,
            quarantine_ticks: 3,
            probation_clean: 2,
        })
    }

    #[test]
    fn placement_is_stable_and_covers_all_shards() {
        for stream in 0..64u64 {
            assert_eq!(shard_of(stream, 8), shard_of(stream, 8));
            assert!(shard_of(stream, 8) < 8);
        }
        // 64 streams over 8 shards: hashing must hit every shard.
        let hit: std::collections::BTreeSet<usize> = (0..64u64).map(|s| shard_of(s, 8)).collect();
        assert_eq!(hit.len(), 8, "placement left shards empty: {hit:?}");
        // Degenerate shard counts stay in range.
        assert_eq!(shard_of(5, 0), 0);
        assert_eq!(shard_of(5, 1), 0);
    }

    #[test]
    fn persistent_faults_quarantine_then_probation_readmits() {
        let mut health = tight();
        // Two faults score 4 = threshold → quarantined.
        assert_eq!(health.record(true), StreamStanding::Active);
        assert_eq!(health.record(true), StreamStanding::Quarantined);
        assert_eq!(health.quarantines(), 1);
        // Three quarantine ticks burn down into probation.
        assert_eq!(health.record(false), StreamStanding::Quarantined);
        assert_eq!(health.record(false), StreamStanding::Quarantined);
        assert_eq!(health.record(false), StreamStanding::Probation);
        // Two clean probation windows readmit.
        assert_eq!(health.record(false), StreamStanding::Probation);
        assert_eq!(health.record(false), StreamStanding::Active);
        assert_eq!(health.readmissions(), 1);
    }

    #[test]
    fn probation_fault_requarantines() {
        let mut health = tight();
        health.record(true);
        health.record(true);
        for _ in 0..3 {
            health.record(false);
        }
        assert_eq!(health.standing(), StreamStanding::Probation);
        assert_eq!(health.record(true), StreamStanding::Quarantined);
        assert_eq!(health.quarantines(), 2);
    }

    #[test]
    fn sporadic_faults_drain_without_quarantine() {
        let mut health = tight();
        // fault (+2) followed by two cleans (−2) never accumulates.
        for _ in 0..32 {
            health.record(true);
            health.record(false);
            health.record(false);
        }
        assert_eq!(health.standing(), StreamStanding::Active);
        assert_eq!(health.quarantines(), 0);
    }

    #[test]
    fn snap_roundtrip_preserves_mid_quarantine_state() {
        let mut health = tight();
        health.record(true);
        health.record(true);
        health.record(false); // one cooldown tick burned
        let mut w = SnapWriter::new();
        health.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut back = StreamHealth::unsnap(&mut r).expect("decode own encoding");
        assert!(r.is_done());
        assert_eq!(back, health);
        // The restored machine continues exactly where the original
        // would: two more ticks reach probation.
        back.record(false);
        assert_eq!(back.record(false), StreamStanding::Probation);
    }
}
