//! A self-contained, offline re-implementation of the subset of the
//! [`rand`](https://crates.io/crates/rand) 0.8 API the hbmd workspace
//! uses. The build environment has no network access to crates.io, so
//! the workspace vendors this shim instead of the real crate.
//!
//! The algorithms mirror rand 0.8 closely so seeded streams keep the
//! statistical properties the suite's fixtures were tuned against:
//!
//! * [`rngs::SmallRng`] is xoshiro256++ seeded through SplitMix64
//!   (identical to rand 0.8's 64-bit `SmallRng`),
//! * integer ranges use Lemire's widening-multiply rejection method,
//! * float ranges use the 52-bit mantissa-in-`[1, 2)` construction,
//! * [`Rng::gen_bool`] is the `p · 2⁶⁴` integer-threshold Bernoulli,
//! * [`seq::SliceRandom::shuffle`] is the reverse Fisher–Yates walk.
//!
//! Only the APIs the workspace calls are provided: `Rng`,
//! `SeedableRng`, `SmallRng`, `SliceRandom::shuffle`, and
//! `distributions::{Distribution, Standard, WeightedIndex}`.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core generator interface: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p >= 1.0 {
            // Consume one word anyway so the stream advances like the
            // always-true Bernoulli would not; match rand's sentinel
            // behaviour of returning true without sampling.
            return true;
        }
        // p · 2⁶⁴ as an integer threshold.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 — the exact
    /// expansion rand 0.8 uses, so seeds produce familiar streams.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
