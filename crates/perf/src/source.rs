//! The pluggable collection backend: a [`CounterSource`] is anything
//! that can program the paper's 16 hardware events and read back one
//! sampling window of scaled estimates.
//!
//! Two implementations exist:
//!
//! * [`SimSource`] — the deterministic `hbmd-uarch` simulator (the
//!   default; CI-safe, byte-identical output per seed), and
//! * `PerfSource` (behind the `perf-backend` feature) — a real Linux
//!   `perf_event_open(2)` group, raw-syscall FFI with no external
//!   dependencies, in [`crate::sys`].
//!
//! Both speak the same contract: [`CounterSource::program`] takes the
//! full collected event set (see [`EventSel::paper_set`]),
//! [`CounterSource::read_window`] executes one fixed-budget sampling
//! window of the sample's workload and returns a [`CounterWindow`] —
//! scaled estimates plus the `time_enabled`/`time_running` telemetry
//! that `perf stat` would print. Fault injection, sanitisation and the
//! quarantine machinery all sit *above* the source, so they compose
//! over either backend unchanged.

use hbmd_events::{FeatureVector, HpcEvent};
use hbmd_malware::Sample;
use hbmd_uarch::Cpu;
use serde::{Deserialize, Serialize};

use crate::container::ContainedStream;
use crate::error::PerfError;
use crate::pmu::Pmu;
use crate::sampler::SamplerConfig;

/// Which counter backend a [`Collector`](crate::Collector) reads from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SourceSelect {
    /// The deterministic `hbmd-uarch` PMU model (default, CI-safe).
    #[default]
    Sim,
    /// Live Linux hardware counters via `perf_event_open(2)`. Requires
    /// the `perf-backend` feature and a host whose
    /// `kernel.perf_event_paranoid` admits self-profiling.
    Perf,
}

impl SourceSelect {
    /// Stable lowercase name (CLI values, metric labels, manifests).
    pub fn name(self) -> &'static str {
        match self {
            SourceSelect::Sim => "sim",
            SourceSelect::Perf => "perf",
        }
    }

    /// Check this backend can run here, without collecting anything.
    ///
    /// The simulator is always available. The perf backend probes at
    /// runtime: it opens (and immediately closes) a trivial hardware
    /// counter on the current thread, so a missing PMU, a restrictive
    /// `perf_event_paranoid`, or a kernel without `perf_event_open`
    /// all surface here instead of mid-collection.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::BackendUnavailable`] with the probe's
    /// findings (including the paranoid level when readable), or when
    /// the crate was built without the `perf-backend` feature.
    pub fn probe(self) -> Result<(), PerfError> {
        match self {
            SourceSelect::Sim => Ok(()),
            #[cfg(feature = "perf-backend")]
            SourceSelect::Perf => crate::sys::probe(),
            #[cfg(not(feature = "perf-backend"))]
            SourceSelect::Perf => Err(PerfError::BackendUnavailable {
                reason: "built without the `perf-backend` feature".to_owned(),
            }),
        }
    }
}

impl std::fmt::Display for SourceSelect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SourceSelect {
    type Err = PerfError;

    fn from_str(s: &str) -> Result<SourceSelect, PerfError> {
        match s {
            "sim" => Ok(SourceSelect::Sim),
            "perf" => Ok(SourceSelect::Perf),
            other => Err(PerfError::Config(format!(
                "unknown counter source `{other}` (expected `sim` or `perf`)"
            ))),
        }
    }
}

/// One event-programming request: a collected event plus the
/// `perf_event_attr` encoding a real PMU needs for it.
///
/// The encoding follows `include/uapi/linux/perf_event.h`: plain
/// hardware events use `PERF_TYPE_HARDWARE` ids, cache-hierarchy
/// events use `PERF_TYPE_HW_CACHE` with `id | (op << 8) |
/// (result << 16)`. The mapping is plain data — it is not
/// feature-gated, so the simulator, tests and docs can all reason
/// about what the live backend would program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSel {
    /// The collected event this selection counts.
    pub event: HpcEvent,
    /// `perf_event_attr.type`.
    pub perf_type: u32,
    /// `perf_event_attr.config`.
    pub perf_config: u64,
}

/// `perf_event_attr.type` values (uapi `perf_type_id`).
pub const PERF_TYPE_HARDWARE: u32 = 0;
/// Cache-hierarchy event type (uapi `perf_type_id`).
pub const PERF_TYPE_HW_CACHE: u32 = 3;

// uapi `perf_hw_id`.
const HW_CACHE_REFERENCES: u64 = 2;
const HW_CACHE_MISSES: u64 = 3;
const HW_BRANCH_INSTRUCTIONS: u64 = 4;
const HW_BRANCH_MISSES: u64 = 5;

// uapi `perf_hw_cache_id`.
const CACHE_L1D: u64 = 0;
const CACHE_L1I: u64 = 1;
const CACHE_LL: u64 = 2;
const CACHE_DTLB: u64 = 3;
const CACHE_ITLB: u64 = 4;
const CACHE_BPU: u64 = 5;
const CACHE_NODE: u64 = 6;

// uapi `perf_hw_cache_op_id` / `perf_hw_cache_op_result_id`.
const OP_READ: u64 = 0;
const OP_WRITE: u64 = 1;
const RESULT_ACCESS: u64 = 0;
const RESULT_MISS: u64 = 1;

const fn cache(id: u64, op: u64, result: u64) -> u64 {
    id | (op << 8) | (result << 16)
}

impl EventSel {
    /// The selection for one collected event.
    pub fn for_event(event: HpcEvent) -> EventSel {
        let (perf_type, perf_config) = match event {
            HpcEvent::BranchInstructions => (PERF_TYPE_HARDWARE, HW_BRANCH_INSTRUCTIONS),
            HpcEvent::BranchMisses => (PERF_TYPE_HARDWARE, HW_BRANCH_MISSES),
            HpcEvent::CacheReferences => (PERF_TYPE_HARDWARE, HW_CACHE_REFERENCES),
            HpcEvent::CacheMisses => (PERF_TYPE_HARDWARE, HW_CACHE_MISSES),
            HpcEvent::BranchLoads => (PERF_TYPE_HW_CACHE, cache(CACHE_BPU, OP_READ, RESULT_ACCESS)),
            HpcEvent::BranchLoadMisses => {
                (PERF_TYPE_HW_CACHE, cache(CACHE_BPU, OP_READ, RESULT_MISS))
            }
            HpcEvent::LlcLoads => (PERF_TYPE_HW_CACHE, cache(CACHE_LL, OP_READ, RESULT_ACCESS)),
            HpcEvent::LlcLoadMisses => (PERF_TYPE_HW_CACHE, cache(CACHE_LL, OP_READ, RESULT_MISS)),
            HpcEvent::L1DcacheLoads => {
                (PERF_TYPE_HW_CACHE, cache(CACHE_L1D, OP_READ, RESULT_ACCESS))
            }
            HpcEvent::L1DcacheLoadMisses => {
                (PERF_TYPE_HW_CACHE, cache(CACHE_L1D, OP_READ, RESULT_MISS))
            }
            HpcEvent::L1DcacheStores => (
                PERF_TYPE_HW_CACHE,
                cache(CACHE_L1D, OP_WRITE, RESULT_ACCESS),
            ),
            HpcEvent::L1IcacheLoadMisses => {
                (PERF_TYPE_HW_CACHE, cache(CACHE_L1I, OP_READ, RESULT_MISS))
            }
            HpcEvent::ItlbLoadMisses => {
                (PERF_TYPE_HW_CACHE, cache(CACHE_ITLB, OP_READ, RESULT_MISS))
            }
            HpcEvent::DtlbLoadMisses => {
                (PERF_TYPE_HW_CACHE, cache(CACHE_DTLB, OP_READ, RESULT_MISS))
            }
            HpcEvent::NodeLoads => (
                PERF_TYPE_HW_CACHE,
                cache(CACHE_NODE, OP_READ, RESULT_ACCESS),
            ),
            HpcEvent::NodeStores => (
                PERF_TYPE_HW_CACHE,
                cache(CACHE_NODE, OP_WRITE, RESULT_ACCESS),
            ),
        };
        EventSel {
            event,
            perf_type,
            perf_config,
        }
    }

    /// The paper's full 16-event selection, in feature-column order —
    /// the only selection both backends accept.
    pub fn paper_set() -> [EventSel; HpcEvent::COUNT] {
        let mut sels = [EventSel::for_event(HpcEvent::BranchInstructions); HpcEvent::COUNT];
        for (slot, event) in sels.iter_mut().zip(HpcEvent::ALL) {
            *slot = EventSel::for_event(event);
        }
        sels
    }

    /// `true` when `events` is exactly [`paper_set`](EventSel::paper_set).
    pub fn is_paper_set(events: &[EventSel]) -> bool {
        events.len() == HpcEvent::COUNT
            && events
                .iter()
                .zip(HpcEvent::ALL)
                .all(|(sel, event)| sel.event == event)
    }
}

/// One sampling window as read from a [`CounterSource`]: the scaled
/// estimates plus the multiplexing telemetry behind them.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterWindow {
    /// Scaled per-event estimates (the dataset-row payload). Events the
    /// source could not schedule at all are `NaN` — the sanitiser's
    /// imputation/abstention path owns those downstream.
    pub features: FeatureVector,
    /// How long the window's events were enabled, in backend-native
    /// units (PMU time slices for the simulator, nanoseconds for the
    /// perf backend).
    pub time_enabled: u64,
    /// The *least*-scheduled event's running time, same units — the
    /// window's worst-case multiplexing duty cycle.
    pub time_running: u64,
    /// Events that were never scheduled this window (their features
    /// are `NaN`).
    pub starved_events: usize,
}

impl CounterWindow {
    /// The worst-case `enabled / running` multiplexing correction of
    /// this window (1.0 when nothing was multiplexed out).
    pub fn scaling(&self) -> f64 {
        if self.time_running == 0 {
            f64::INFINITY
        } else {
            self.time_enabled as f64 / self.time_running as f64
        }
    }

    /// `true` when every programmed event got counter time.
    pub fn fully_scheduled(&self) -> bool {
        self.starved_events == 0 && self.time_running > 0
    }
}

/// Static facts a backend reports about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceCaps {
    /// Stable backend name (matches [`SourceSelect::name`]).
    pub backend: &'static str,
    /// `true` when the counts come from real hardware.
    pub live: bool,
    /// Programmable counter registers available per scheduling group.
    pub counters: usize,
    /// `true` when the event set exceeds the registers and estimates
    /// carry a `time_enabled / time_running` correction.
    pub multiplexed: bool,
}

/// The event-programming / window-sampling contract every collection
/// backend implements.
///
/// A source is minted per sample (fresh microarchitectural state — the
/// container hygiene of the reference setup), programmed once, then
/// read once per sampling window. Reading before programming is a
/// [`PerfError::Config`] error on every backend.
pub trait CounterSource {
    /// Program the counter registers. Both shipped backends accept
    /// exactly [`EventSel::paper_set`] — the dataset schema is fixed at
    /// 16 columns, so partial selections are a configuration error.
    ///
    /// # Errors
    ///
    /// [`PerfError::Config`] for a non-paper selection;
    /// [`PerfError::BackendUnavailable`] when the backend lost access
    /// to its counters.
    fn program(&mut self, events: &[EventSel]) -> Result<(), PerfError>;

    /// Execute one fixed-budget sampling window of the sample's
    /// workload and return the scaled estimates.
    ///
    /// # Errors
    ///
    /// [`PerfError::Config`] when called before
    /// [`program`](CounterSource::program); backend-specific errors
    /// (e.g. [`PerfError::Backend`]) when a live read fails.
    fn read_window(&mut self) -> Result<CounterWindow, PerfError>;

    /// Static capability report for this backend.
    fn caps(&self) -> SourceCaps;
}

/// Mint the selected backend's source for one sample.
///
/// # Errors
///
/// Propagates backend construction failures; selecting
/// [`SourceSelect::Perf`] without the `perf-backend` feature (or on a
/// host that fails the probe) returns
/// [`PerfError::BackendUnavailable`].
pub fn open_source(
    select: SourceSelect,
    config: &SamplerConfig,
    sample: &Sample,
) -> Result<Box<dyn CounterSource>, PerfError> {
    match select {
        SourceSelect::Sim => Ok(Box::new(SimSource::new(config, sample)?)),
        #[cfg(feature = "perf-backend")]
        SourceSelect::Perf => Ok(Box::new(crate::sys::PerfSource::open(config, sample)?)),
        #[cfg(not(feature = "perf-backend"))]
        SourceSelect::Perf => Err(PerfError::BackendUnavailable {
            reason: "built without the `perf-backend` feature".to_owned(),
        }),
    }
}

/// The deterministic simulator backend: the sample's instruction
/// stream executed on the `hbmd-uarch` core model, counted by the
/// time-sliced [`Pmu`] multiplexing model (or exactly, when the
/// sampler disables multiplexing).
///
/// This is the seed pipeline's behaviour factored behind the trait —
/// its output is byte-identical to the pre-trait collector.
pub struct SimSource {
    cpu: Cpu,
    stream: ContainedStream,
    pmu: Option<Pmu>,
    budget: u64,
    programmed: bool,
}

impl SimSource {
    /// Launch `sample` in a fresh simulated container.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::Config`] when the sampler's PMU model is
    /// invalid.
    pub fn new(config: &SamplerConfig, sample: &Sample) -> Result<SimSource, PerfError> {
        Ok(SimSource {
            cpu: Cpu::new(config.cpu.clone()),
            stream: ContainedStream::new(sample, config.host_noise),
            pmu: config
                .pmu
                .as_ref()
                .map(|c| Pmu::new(c.clone()))
                .transpose()?,
            budget: config.instructions_per_window,
            programmed: false,
        })
    }
}

impl CounterSource for SimSource {
    fn program(&mut self, events: &[EventSel]) -> Result<(), PerfError> {
        if !EventSel::is_paper_set(events) {
            return Err(PerfError::Config(
                "the simulator source counts exactly the 16 collected events \
                 in column order"
                    .to_owned(),
            ));
        }
        self.programmed = true;
        Ok(())
    }

    fn read_window(&mut self) -> Result<CounterWindow, PerfError> {
        if !self.programmed {
            return Err(PerfError::Config(
                "read_window before program on the simulator source".to_owned(),
            ));
        }
        let (features, time_enabled, time_running) = match &mut self.pmu {
            Some(pmu) => {
                let features = pmu.measure_window(&mut self.cpu, &mut self.stream, self.budget);
                let slices = pmu.config().slices_per_window as u64;
                let groups = pmu.config().groups() as u64;
                // Every event is live for at least ⌊slices/groups⌋ of
                // the window's slices — the model's worst duty cycle.
                (features, slices, slices / groups)
            }
            None => {
                let features =
                    Pmu::measure_window_exact(&mut self.cpu, &mut self.stream, self.budget);
                (features, 1, 1)
            }
        };
        Ok(CounterWindow {
            features,
            time_enabled,
            time_running,
            starved_events: 0,
        })
    }

    fn caps(&self) -> SourceCaps {
        SourceCaps {
            backend: SourceSelect::Sim.name(),
            live: false,
            counters: self
                .pmu
                .as_ref()
                .map_or(HpcEvent::COUNT, |p| p.config().counters),
            multiplexed: self.pmu.is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbmd_malware::{AppClass, SampleId};

    fn sample() -> Sample {
        Sample::generate(SampleId(7), AppClass::Worm, 5)
    }

    #[test]
    fn paper_set_covers_all_events_in_column_order() {
        let set = EventSel::paper_set();
        assert_eq!(set.len(), HpcEvent::COUNT);
        for (i, sel) in set.iter().enumerate() {
            assert_eq!(sel.event.index(), i);
        }
        assert!(EventSel::is_paper_set(&set));
        assert!(!EventSel::is_paper_set(&set[..8]));
    }

    #[test]
    fn perf_encodings_are_unique_and_well_typed() {
        use std::collections::BTreeSet;
        let set = EventSel::paper_set();
        let encodings: BTreeSet<(u32, u64)> =
            set.iter().map(|s| (s.perf_type, s.perf_config)).collect();
        assert_eq!(encodings.len(), HpcEvent::COUNT, "duplicate encodings");
        for sel in &set {
            assert!(
                sel.perf_type == PERF_TYPE_HARDWARE || sel.perf_type == PERF_TYPE_HW_CACHE,
                "{:?}",
                sel
            );
        }
        // Spot-check the uapi encodings against known values.
        let branches = EventSel::for_event(HpcEvent::BranchInstructions);
        assert_eq!((branches.perf_type, branches.perf_config), (0, 4));
        let l1d_misses = EventSel::for_event(HpcEvent::L1DcacheLoadMisses);
        assert_eq!((l1d_misses.perf_type, l1d_misses.perf_config), (3, 1 << 16));
    }

    #[test]
    fn sim_source_requires_program_before_read() {
        let mut source = SimSource::new(&SamplerConfig::fast(), &sample()).expect("valid");
        assert!(matches!(source.read_window(), Err(PerfError::Config(_))));
        source.program(&EventSel::paper_set()).expect("paper set");
        assert!(source.read_window().is_ok());
    }

    #[test]
    fn sim_source_rejects_partial_selections() {
        let mut source = SimSource::new(&SamplerConfig::fast(), &sample()).expect("valid");
        let set = EventSel::paper_set();
        assert!(source.program(&set[..4]).is_err());
        assert!(source.program(&[]).is_err());
    }

    #[test]
    fn sim_windows_match_the_legacy_sampler_path() {
        let config = SamplerConfig::fast();
        let s = sample();
        let mut source = SimSource::new(&config, &s).expect("valid");
        source.program(&EventSel::paper_set()).expect("paper set");
        let via_source: Vec<FeatureVector> = (0..config.windows_per_sample)
            .map(|_| source.read_window().expect("sim never fails").features)
            .collect();
        let via_sampler = crate::Sampler::new(config)
            .expect("valid")
            .collect_sample(&s);
        assert_eq!(via_source, via_sampler);
    }

    #[test]
    fn sim_caps_and_scheduling_telemetry() {
        let mut source = SimSource::new(&SamplerConfig::fast(), &sample()).expect("valid");
        let caps = source.caps();
        assert_eq!(caps.backend, "sim");
        assert!(!caps.live);
        assert!(caps.multiplexed);
        source.program(&EventSel::paper_set()).expect("paper set");
        let window = source.read_window().expect("sim never fails");
        assert!(window.fully_scheduled());
        // 16 events on 8 registers: every event lives half the window.
        assert!((window.scaling() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn source_select_parses_and_probes() {
        assert_eq!("sim".parse::<SourceSelect>().unwrap(), SourceSelect::Sim);
        assert_eq!("perf".parse::<SourceSelect>().unwrap(), SourceSelect::Perf);
        assert!("qemu".parse::<SourceSelect>().is_err());
        assert!(SourceSelect::Sim.probe().is_ok());
        assert_eq!(SourceSelect::default(), SourceSelect::Sim);
    }
}
