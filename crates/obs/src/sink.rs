//! Span sinks: where closed spans go.
//!
//! The default [`Obs`](crate::Obs) context has no sinks — spans cost a
//! thread-local push/pop and nothing else. Harnesses attach:
//!
//! * [`MemorySink`] — buffers records in memory for test assertions,
//! * [`JsonlSink`] — appends one JSON object per span to a file, the
//!   `repro --trace-jsonl` event log.
//!
//! Sinks receive records from every thread; implementations must be
//! `Send + Sync` and do their own locking.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, PoisonError};

use crate::span::SpanRecord;

/// A consumer of closed spans.
pub trait SpanSink: Send + Sync {
    /// Deliver one closed span.
    fn record(&self, span: &SpanRecord);

    /// Write buffered data through.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, if any.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// A sink that drops everything — useful to measure sink overhead or
/// as an explicit "no tracing" marker.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl SpanSink for NoopSink {
    fn record(&self, _span: &SpanRecord) {}
}

/// An in-memory sink for tests: buffers every record, in close order.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<SpanRecord>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of everything recorded so far, in close order (inner
    /// spans close before their parents).
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Records with the given span name.
    pub fn named(&self, name: &str) -> Vec<SpanRecord> {
        self.records()
            .into_iter()
            .filter(|r| r.name == name)
            .collect()
    }

    /// Number of records buffered.
    pub fn len(&self) -> usize {
        self.records
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all buffered records.
    pub fn clear(&self) {
        self.records
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

impl SpanSink for MemorySink {
    fn record(&self, span: &SpanRecord) {
        self.records
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(span.clone());
    }
}

/// A sink that appends one JSON object per closed span to a file —
/// the format behind `repro --trace-jsonl`.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncate) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl SpanSink for JsonlSink {
    fn record(&self, span: &SpanRecord) {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // A full event log on a dying disk must not take the
        // experiment down with it; errors surface at flush.
        let _ = writeln!(writer, "{}", span.to_json_line());
    }

    fn flush(&self) -> io::Result<()> {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::FieldValue;

    fn record(name: &str) -> SpanRecord {
        SpanRecord {
            id: 1,
            parent: None,
            depth: 0,
            name: name.to_owned(),
            fields: vec![("k".to_owned(), FieldValue::Uint(9))],
            start_ns: 0,
            duration_ns: 5,
        }
    }

    #[test]
    fn memory_sink_buffers_and_filters() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&record("a"));
        sink.record(&record("b"));
        sink.record(&record("a"));
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.named("a").len(), 2);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_span() {
        let dir = std::env::temp_dir().join("hbmd_obs_sink_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.jsonl");
        let sink = JsonlSink::create(&path).expect("create");
        sink.record(&record("x"));
        sink.record(&record("y"));
        sink.flush().expect("flush");
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\": \"x\""));
        assert!(lines[1].contains("\"k\": 9"));
        std::fs::remove_file(&path).ok();
    }
}
