//! WEKA-protocol integration: cross-validation, filters, ensembles and
//! label noise on real collected data.

use hbmd::core::{to_binary_dataset, to_multiclass_dataset};
use hbmd::malware::{MultiEngineLabeler, SampleCatalog};
use hbmd::ml::{
    cross_validate, AdaBoostM1, Bagging, Classifier, DecisionStump, Evaluation, MinMaxNormalize,
    OneR, RandomForest, Standardize, J48,
};
use hbmd::perf::{Collector, CollectorConfig, HpcDataset};

fn collected() -> HpcDataset {
    let catalog = SampleCatalog::scaled(0.03, 41);
    Collector::new(CollectorConfig::fast())
        .expect("config")
        .collect(&catalog)
        .expect("collect")
        .dataset
}

#[test]
fn ten_fold_cross_validation_on_real_data() {
    let data = to_binary_dataset(&collected());
    let evals = cross_validate(J48::new, &data, 10, 7).expect("cv");
    assert_eq!(evals.len(), 10);
    let mean: f64 = evals.iter().map(|e| e.accuracy()).sum::<f64>() / 10.0;
    assert!(mean > 0.7, "10-fold mean accuracy {mean}");
    let covered: usize = evals.iter().map(|e| e.confusion().total()).sum();
    assert_eq!(covered, data.len(), "folds cover every instance once");
}

#[test]
fn filters_do_not_change_threshold_learners() {
    // Standardisation is monotonic per feature, so threshold learners
    // reach the same decisions on transformed data.
    let data = to_binary_dataset(&collected());
    let (train, test) = data.split(0.7, 3);

    let mut raw = OneR::new();
    raw.fit(&train).expect("fit");
    let raw_accuracy = Evaluation::of(&raw, &test).accuracy();

    let filter = Standardize::fit(&train);
    let mut filtered = OneR::new();
    filtered.fit(&filter.transform(&train)).expect("fit");
    let filtered_accuracy = Evaluation::of(&filtered, &filter.transform(&test)).accuracy();
    assert!((raw_accuracy - filtered_accuracy).abs() < 1e-9);

    let minmax = MinMaxNormalize::fit(&train);
    let mut normalized = OneR::new();
    normalized.fit(&minmax.transform(&train)).expect("fit");
    // Min-max clamps test outliers, so allow a small delta.
    let normalized_accuracy = Evaluation::of(&normalized, &minmax.transform(&test)).accuracy();
    assert!((raw_accuracy - normalized_accuracy).abs() < 0.05);
}

#[test]
fn ensembles_work_on_real_multiclass_data() {
    let data = to_multiclass_dataset(&collected());
    let (train, test) = data.split(0.7, 11);

    let mut forest = RandomForest::new(15);
    forest.fit(&train).expect("fit");
    let forest_eval = Evaluation::of(&forest, &test);
    assert!(
        forest_eval.accuracy() > 0.5,
        "forest multiclass accuracy {}",
        forest_eval.accuracy()
    );

    let mut bagger = Bagging::new(J48::new(), 8);
    bagger.fit(&train).expect("fit");
    assert!(Evaluation::of(&bagger, &test).accuracy() > 0.5);

    let mut booster = AdaBoostM1::new(DecisionStump::new(), 15);
    booster.fit(&train).expect("fit");
    // Boosted stumps on 6 classes are weak but must beat uniform.
    assert!(Evaluation::of(&booster, &test).accuracy() > 1.0 / 6.0);
}

#[test]
fn label_noise_degrades_but_does_not_destroy_detection() {
    let catalog = SampleCatalog::scaled(0.03, 43);
    let clean = Collector::new(CollectorConfig::fast())
        .expect("config")
        .collect(&catalog)
        .expect("collect")
        .dataset;
    let noisy = Collector::new(CollectorConfig {
        labeler: Some(MultiEngineLabeler::new(20, 0.6, 0.05, 9)),
        ..CollectorConfig::fast()
    })
    .expect("config")
    .collect(&catalog)
    .expect("collect")
    .dataset;

    let accuracy_of = |dataset: &HpcDataset| {
        let data = to_binary_dataset(dataset);
        let (train, test) = data.split(0.7, 5);
        let mut tree = J48::new();
        tree.fit(&train).expect("fit");
        Evaluation::of(&tree, &test).accuracy()
    };
    let clean_accuracy = accuracy_of(&clean);
    let noisy_accuracy = accuracy_of(&noisy);
    assert!(clean_accuracy > 0.7);
    assert!(
        noisy_accuracy > 0.55,
        "noisy labels should degrade gracefully: {noisy_accuracy}"
    );
}

#[test]
fn kappa_tracks_accuracy_above_chance() {
    let data = to_binary_dataset(&collected());
    let (train, test) = data.split(0.7, 19);
    let mut tree = J48::new();
    tree.fit(&train).expect("fit");
    let evaluation = Evaluation::of(&tree, &test);
    // With ~90% malware base rate, raw accuracy flatters; kappa must
    // still show genuine skill.
    assert!(evaluation.kappa() > 0.3, "kappa {}", evaluation.kappa());
}
