use hbmd_malware::Sample;
use hbmd_uarch::{Cpu, CpuConfig, Instruction, InstructionSource, StreamParams, SyntheticStream};

/// Execution environment for one sample — the LXC-container substitute.
///
/// The reference setup ran each malware specimen in its own Linux
/// container so that (a) the malware could not infect the host and
/// (b) host activity did not bias the measured counters. In simulation,
/// safety is free; what the container model preserves is the *counter
/// hygiene*: [`Container::isolated`] gives every sample a cold, private
/// core, while [`Container::shared_host`] deliberately interleaves a
/// benign host workload on the same core to quantify how much signal
/// containerisation saves (an ablation the paper's design implies).
///
/// # Examples
///
/// ```
/// use hbmd_malware::{AppClass, Sample, SampleId};
/// use hbmd_perf::Container;
/// use hbmd_uarch::CpuConfig;
///
/// let sample = Sample::generate(SampleId(0), AppClass::Virus, 1);
/// let mut container = Container::isolated(CpuConfig::tiny());
/// let (cpu, mut stream) = container.launch(&sample);
/// cpu.run(&mut stream, 1_000);
/// assert_eq!(cpu.stats().instructions, 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Container {
    cpu_config: CpuConfig,
    /// Host instructions interleaved per workload instruction
    /// (0 = isolated).
    host_noise: f64,
    cpu: Option<Cpu>,
}

impl Container {
    /// A fully isolated container: fresh microarchitectural state per
    /// sample, no host interference.
    pub fn isolated(cpu_config: CpuConfig) -> Container {
        Container {
            cpu_config,
            host_noise: 0.0,
            cpu: None,
        }
    }

    /// A shared-host environment: for every workload instruction,
    /// `noise_ratio` host instructions (a benign background mix) execute
    /// on the same core, polluting caches, TLBs and predictor state.
    ///
    /// # Panics
    ///
    /// Panics when `noise_ratio` is negative or not finite.
    pub fn shared_host(cpu_config: CpuConfig, noise_ratio: f64) -> Container {
        assert!(
            noise_ratio.is_finite() && noise_ratio >= 0.0,
            "noise_ratio must be finite and non-negative"
        );
        Container {
            cpu_config,
            host_noise: noise_ratio,
            cpu: None,
        }
    }

    /// Ratio of interleaved host instructions (0 for isolation).
    pub fn host_noise(&self) -> f64 {
        self.host_noise
    }

    /// Launch `sample`: returns the (fresh or host-warmed) core and the
    /// instruction stream to execute on it.
    ///
    /// Isolated containers hand out a cold core each launch. Shared-host
    /// containers keep one core across launches (the host never reboots
    /// between samples) and wrap the sample stream so host work is
    /// interleaved.
    pub fn launch(&mut self, sample: &Sample) -> (&mut Cpu, ContainedStream) {
        if self.host_noise == 0.0 || self.cpu.is_none() {
            self.cpu = Some(Cpu::new(self.cpu_config.clone()));
        }
        let stream = ContainedStream::new(sample, self.host_noise);
        (self.cpu.as_mut().expect("just installed"), stream)
    }
}

/// The instruction stream a [`Container`] hands out: the sample's own
/// stream, optionally interleaved with benign host work.
#[derive(Debug, Clone)]
pub struct ContainedStream {
    workload: hbmd_malware::SampleStream,
    host: Option<SyntheticStream>,
    /// Fractional accumulator of pending host instructions.
    noise_ratio: f64,
    noise_debt: f64,
}

impl ContainedStream {
    pub(crate) fn new(sample: &Sample, noise_ratio: f64) -> ContainedStream {
        let host = if noise_ratio > 0.0 {
            Some(SyntheticStream::new(
                StreamParams::balanced(),
                sample.seed() ^ 0xF00D,
            ))
        } else {
            None
        };
        ContainedStream {
            workload: sample.stream(),
            host,
            noise_ratio,
            noise_debt: 0.0,
        }
    }
}

impl InstructionSource for ContainedStream {
    fn next_instruction(&mut self) -> Instruction {
        if let Some(host) = &mut self.host {
            if self.noise_debt >= 1.0 {
                self.noise_debt -= 1.0;
                return host.next_instruction();
            }
            self.noise_debt += self.noise_ratio;
        }
        self.workload.next_instruction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbmd_events::HpcEvent;
    use hbmd_malware::{AppClass, SampleId};

    fn sample(class: AppClass) -> Sample {
        Sample::generate(SampleId(0), class, 3)
    }

    #[test]
    fn isolated_container_gives_cold_state_each_launch() {
        let mut container = Container::isolated(CpuConfig::tiny());
        let s = sample(AppClass::Trojan);
        let first = {
            let (cpu, mut stream) = container.launch(&s);
            cpu.run(&mut stream, 5_000);
            *cpu.counters()
        };
        let second = {
            let (cpu, mut stream) = container.launch(&s);
            cpu.run(&mut stream, 5_000);
            *cpu.counters()
        };
        assert_eq!(first, second, "cold launches are identical");
    }

    #[test]
    fn shared_host_keeps_warm_state() {
        // On the Haswell-sized LLC the trojan's working set fits, so a
        // second launch on the never-rebooted host core sees far fewer
        // cold LLC misses than the first.
        let mut container = Container::shared_host(CpuConfig::haswell(), 0.5);
        let s = sample(AppClass::Trojan);
        let first = {
            let (cpu, mut stream) = container.launch(&s);
            cpu.run(&mut stream, 20_000);
            cpu.counters()[HpcEvent::LlcLoadMisses]
        };
        let second = {
            let (cpu, mut stream) = container.launch(&s);
            let before = cpu.counters()[HpcEvent::LlcLoadMisses];
            cpu.run(&mut stream, 20_000);
            cpu.counters()[HpcEvent::LlcLoadMisses] - before
        };
        assert!(
            second < first,
            "warm caches reduce cold misses ({second} vs {first})"
        );
    }

    #[test]
    fn host_noise_inflates_counters() {
        let s = sample(AppClass::Backdoor); // quiet workload
        let run = |mut container: Container| {
            let (cpu, mut stream) = container.launch(&s);
            cpu.run(&mut stream, 20_000);
            cpu.counters()[HpcEvent::L1DcacheLoads]
        };
        let clean = run(Container::isolated(CpuConfig::tiny()));
        let noisy = run(Container::shared_host(CpuConfig::tiny(), 1.0));
        assert!(
            noisy > clean,
            "host interleaving adds loads ({noisy} vs {clean})"
        );
    }

    #[test]
    fn noise_ratio_is_respected() {
        let s = sample(AppClass::Virus);
        let mut stream = ContainedStream::new(&s, 1.0);
        // With ratio 1.0, half of a long run should be host work; we
        // can't see provenance directly, but the accumulator alternates,
        // so consecutive instructions must come from two streams —
        // verify determinism at least.
        let mut stream2 = ContainedStream::new(&s, 1.0);
        for _ in 0..1_000 {
            assert_eq!(stream.next_instruction(), stream2.next_instruction());
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_noise_panics() {
        let _ = Container::shared_host(CpuConfig::tiny(), -0.5);
    }
}
