//! The fleet monitor behind `repro serve`: N independent monitored
//! endpoint streams hash-sharded across supervised worker threads,
//! every stream voting against one shared trained model.
//!
//! The robustness design is **bulkhead isolation**:
//!
//! * Streams are placed with [`shard_of`] — every window of a stream
//!   lands on the same shard, in cursor order, so each stream's
//!   verdict sequence is a pure function of its own windows and is
//!   byte-identical at any shard count.
//! * Each shard runs under its *own* supervisor (`catch_unwind`,
//!   [`Backoff::with_jitter`] seeded by the shard id so co-faulting
//!   shards restart out of lockstep) with its own abstention-driven
//!   [`CircuitBreaker`]. A panicking or NaN-bursting shard degrades
//!   alone; the rest of the fleet keeps serving.
//! * Each stream carries a [`StreamHealth`] score: persistently faulty
//!   streams are quarantined (skipped, not classified), then readmitted
//!   through probation once clean — one hostile endpoint cannot poison
//!   its shard's breaker forever.
//! * Each shard's ingest queue is bounded. Under overload the producer
//!   sheds windows with counted priority: streams that are alarmed or
//!   on probation ("hot") are retried before being dropped, cold
//!   benign streams are shed first.
//!
//! Checkpointing is multiplexed: all stream cursors and states go into
//! one crash-safe [`snapshot::save_fleet`] file with per-section
//! checksums. A corrupt stream section falls back to a pristine start
//! for that stream only; every other stream resumes exactly.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hbmd_core::fleet::{shard_of, StreamHealth, StreamHealthConfig, StreamStanding};
use hbmd_core::snapshot::{self, StreamSection};
use hbmd_core::supervisor::{Backoff, BreakerState, CircuitBreaker};
use hbmd_core::{CoreError, Detector, OnlineVerdict, StreamState};
use hbmd_events::{FeatureVector, HpcEvent};
use hbmd_malware::{Sample, SampleId};
use hbmd_obs::health::{FleetHealth, ServiceState};
use hbmd_obs::recorder::{
    Event as RecorderEvent, FaultKind, FeatureFrame, RecorderHub, StandingKind, Trigger,
    VerdictKind, NO_FAMILY,
};
use hbmd_perf::{PerfError, Sampler, SamplerConfig};

use crate::resilience::{PHASES, WINDOWS_PER_SAMPLE};

/// The deterministic per-stream synthetic workload: window `k` of
/// stream `s` is a pure function of `(s, k)` — each stream follows the
/// [`PHASES`] schedule at its own phase offset, with sample content
/// seeded from the stream id and sample index. Any window can be
/// regenerated at any time, on any shard layout, which is what makes
/// both checkpoint replay and the shard-count determinism proof exact.
pub struct FleetTimeline {
    sampler: Sampler,
    /// stream → (sample index, its 16 windows); one live sample per
    /// stream keeps sequential sweeps cheap.
    cache: BTreeMap<u64, (u64, Vec<FeatureVector>)>,
}

impl FleetTimeline {
    /// A timeline over the collector's sampler settings (forced to
    /// [`WINDOWS_PER_SAMPLE`] windows per sample).
    ///
    /// # Errors
    ///
    /// Propagates sampler-configuration errors.
    pub fn new(sampler_config: &SamplerConfig) -> Result<FleetTimeline, PerfError> {
        let sampler = Sampler::new(SamplerConfig {
            windows_per_sample: WINDOWS_PER_SAMPLE as usize,
            ..sampler_config.clone()
        })?;
        Ok(FleetTimeline {
            sampler,
            cache: BTreeMap::new(),
        })
    }

    /// The ground-truth class of stream `stream` at window `cursor`.
    pub fn class_at(stream: u64, cursor: u64) -> hbmd_malware::AppClass {
        let sample_index = cursor / WINDOWS_PER_SAMPLE;
        PHASES[((sample_index + stream) % PHASES.len() as u64) as usize]
    }

    /// Regenerate window `cursor` of stream `stream`.
    pub fn window(&mut self, stream: u64, cursor: u64) -> FeatureVector {
        let sample_index = cursor / WINDOWS_PER_SAMPLE;
        let offset = (cursor % WINDOWS_PER_SAMPLE) as usize;
        let fresh = self.cache.get(&stream).map(|(i, _)| *i) != Some(sample_index);
        if fresh {
            let class = FleetTimeline::class_at(stream, cursor);
            let mut keyed = [0u8; 16];
            keyed[..8].copy_from_slice(&stream.to_le_bytes());
            keyed[8..].copy_from_slice(&sample_index.to_le_bytes());
            let seed = hbmd_obs::manifest::fnv1a_64(&keyed);
            let id = SampleId(30_000u32.wrapping_add(seed as u32));
            let sample = Sample::generate(id, class, seed);
            self.cache
                .insert(stream, (sample_index, self.sampler.collect_sample(&sample)));
        }
        self.cache.get(&stream).expect("cache just filled").1[offset].clone()
    }
}

/// How [`run_fleet`] should behave — shared by the live fleet monitor
/// (paced, shedding) and the chaos/determinism harness (unpaced,
/// lossless, with injected faults).
#[derive(Clone)]
pub struct FleetConfig {
    /// Monitored endpoint streams (ids `0..streams`).
    pub streams: u64,
    /// Worker shards the streams are hashed across.
    pub shards: usize,
    /// Stop after this many windows *per stream*; 0 = run until `stop`.
    pub windows_limit: u64,
    /// The pristine per-stream vote/hysteresis state, cloned for every
    /// stream that starts (or falls back) fresh.
    pub pristine_stream: StreamState,
    /// Per-stream health policy (quarantine/probation shape).
    pub health_policy: StreamHealthConfig,
    /// Checkpoint when a shard has processed this many windows since
    /// its last commit; 0 disables checkpointing.
    pub checkpoint_every: u64,
    /// Where the multiplexed snapshot lives; `None` disables it.
    pub checkpoint_path: Option<PathBuf>,
    /// Run-config digest stamped into (and demanded from) snapshots.
    pub config_digest: u64,
    /// Bounded producer→worker queue depth per shard.
    pub queue_capacity: usize,
    /// Producer pacing per timeline sweep (one window of every stream
    /// in the shard), or `None` to stream at full speed.
    pub pace: Option<Duration>,
    /// `true`: a full queue sheds windows with counted priority (live
    /// mode). `false`: the producer blocks — lossless, required for
    /// replay/determinism.
    pub shed_when_full: bool,
    /// Give up on a shard after this many worker restarts.
    pub max_restarts: u32,
    /// Exponential backoff (base ms, max ms) between restarts; jittered
    /// deterministically per shard.
    pub backoff_ms: (u64, u64),
    /// `true`: really sleep the backoff delay (live mode). `false`:
    /// account for it without sleeping (chaos replay).
    pub sleep_on_backoff: bool,
    /// Per-shard circuit breaker (window, trip threshold, cooldown).
    pub breaker: (usize, usize, u64),
    /// Chaos: panic shard `.0`'s worker when it reaches a window with
    /// cursor `.1`. Single-shot per entry.
    pub panic_at: Vec<(usize, u64)>,
    /// Chaos: replace stream `.0`'s windows in `[.1, .2)` with all-NaN
    /// vectors (a persistently faulty endpoint).
    pub nan_streams: Vec<(u64, u64, u64)>,
    /// Cooperative shutdown flag (SIGINT).
    pub stop: Option<Arc<AtomicBool>>,
    /// Shared per-shard health mirrored to `/readyz`.
    pub fleet_health: Option<Arc<FleetHealth>>,
    /// Record every stream's per-cursor verdict sequence in the report
    /// (determinism/chaos invariants). Requires a finite limit; keep
    /// `streams × windows_limit` small.
    pub capture_verdicts: bool,
    /// Print alarm lines for stream 0 to stderr (live mode).
    pub verbose: bool,
    /// Per-shard flight recorders plus the bundle-emission policy;
    /// `None` (the default) records nothing and triggers nothing, so
    /// the hot path stays byte-identical to the pre-recorder fleet.
    pub recorder: Option<Arc<RecorderHub>>,
}

impl FleetConfig {
    /// Lossless, unpaced defaults suitable for tests and chaos runs.
    pub fn lossless(streams: u64, shards: usize, windows_limit: u64) -> FleetConfig {
        FleetConfig {
            streams: streams.max(1),
            shards: shards.max(1),
            windows_limit,
            pristine_stream: StreamState::new(4, 3, 1, 1).expect("static default shape"),
            health_policy: StreamHealthConfig::default(),
            checkpoint_every: 0,
            checkpoint_path: None,
            config_digest: 0,
            queue_capacity: 64,
            pace: None,
            shed_when_full: false,
            max_restarts: 8,
            backoff_ms: (50, 800),
            sleep_on_backoff: false,
            breaker: (16, 8, 32),
            panic_at: Vec::new(),
            nan_streams: Vec::new(),
            stop: None,
            fleet_health: None,
            capture_verdicts: true,
            verbose: false,
            recorder: None,
        }
    }
}

/// What one shard did — the bulkhead-local counters the chaos harness
/// asserts isolation on.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Streams placed on this shard.
    pub streams: u64,
    /// Windows fed to this shard's worker, including replay.
    pub processed: u64,
    /// Worker restarts performed by this shard's supervisor.
    pub restarts: u64,
    /// Circuit-breaker trips on this shard.
    pub trips: u64,
    /// Windows skipped while this shard's breaker was open.
    pub degraded: u64,
    /// Cold (benign, inactive) windows shed under overload.
    pub shed_low: u64,
    /// Hot (alarmed/probation) windows shed after retry exhaustion.
    pub shed_high: u64,
    /// Stream quarantine entries on this shard.
    pub quarantines: u64,
    /// Stream readmissions after probation on this shard.
    pub readmissions: u64,
    /// Windows skipped because their stream was quarantined.
    pub quarantine_skipped: u64,
    /// Checkpoint refusals (whole-file) during this shard's recoveries.
    pub refusals: u64,
    /// Stream sections individually lost to corruption during this
    /// shard's restores (those streams fell back pristine).
    pub lost_sections: u64,
    /// Largest replay gap (windows between a restored cursor and the
    /// crash point) across this shard's restarts.
    pub max_missed_gap: u64,
    /// `true` when the supervisor exhausted `max_restarts` and parked
    /// the shard — its streams stop, the rest of the fleet continues.
    pub gave_up: bool,
    /// `true` when this shard ended on the `stop` flag.
    pub interrupted: bool,
}

/// What a fleet run did: per-shard bulkhead reports plus fleet-wide
/// aggregates and (in capture mode) every stream's verdict sequence.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One report per shard, in shard order.
    pub shards: Vec<ShardReport>,
    /// Total windows processed across the fleet.
    pub processed: u64,
    /// Total worker restarts.
    pub restarts: u64,
    /// Total breaker trips.
    pub trips: u64,
    /// Total breaker-degraded windows.
    pub degraded: u64,
    /// Total cold windows shed.
    pub shed_low: u64,
    /// Total hot windows shed.
    pub shed_high: u64,
    /// Total quarantine entries.
    pub quarantines: u64,
    /// Total readmissions.
    pub readmissions: u64,
    /// Total quarantine-skipped windows.
    pub quarantine_skipped: u64,
    /// Total checkpoint refusals.
    pub refusals: u64,
    /// Total stream sections lost to per-section corruption.
    pub lost_sections: u64,
    /// Shards that exhausted their restart budget.
    pub gave_up: u64,
    /// Largest replay gap across all shards.
    pub max_missed_gap: u64,
    /// `true` when the run ended on the `stop` flag.
    pub interrupted: bool,
    /// Wall time of the run in milliseconds.
    pub wall_ms: u64,
    /// Aggregate throughput: processed windows per wall second.
    pub windows_per_sec: f64,
    /// Per-stream verdict sequences when `capture_verdicts` was set
    /// (index = cursor; `None` = never classified: shed, degraded, or
    /// quarantined).
    pub verdicts: BTreeMap<u64, Vec<Option<OnlineVerdict>>>,
    /// Final standing and (quarantines, readmissions) per stream.
    pub stream_health: BTreeMap<u64, (StreamStanding, u64, u64)>,
}

/// One stream's live state inside a shard worker.
#[derive(Clone)]
struct StreamCell {
    stream: u64,
    state: StreamState,
    health: StreamHealth,
    /// Next window index this stream expects (replayed windows below
    /// it are skipped).
    cursor: u64,
}

/// The shared multiplexed checkpoint: every shard commits its own
/// sections; the file is always rewritten whole (atomic rename) with
/// the latest committed view of every stream.
struct Checkpointer {
    path: PathBuf,
    config_digest: u64,
    shards: u32,
    detector: Arc<Detector>,
    sections: Mutex<BTreeMap<u64, StreamSection>>,
}

impl Checkpointer {
    fn commit(&self, updates: Vec<StreamSection>) {
        let mut sections = self
            .sections
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for section in updates {
            sections.insert(section.stream, section);
        }
        let all: Vec<StreamSection> = sections.values().cloned().collect();
        drop(sections);
        match snapshot::save_fleet(
            &self.detector,
            self.shards,
            self.config_digest,
            &all,
            &self.path,
        ) {
            Ok(()) => hbmd_obs::incr("snapshot.saved"),
            Err(e) => {
                // A failed checkpoint degrades recovery, not liveness.
                hbmd_obs::incr("snapshot.save_failed");
                eprintln!("fleet: checkpoint write failed: {e}");
            }
        }
    }
}

/// Mutable state a shard worker shares with its supervisor across the
/// `catch_unwind` boundary (survives worker panics).
struct ShardShared {
    breaker: CircuitBreaker,
    panic_at: std::collections::BTreeSet<u64>,
    /// slot → per-cursor verdicts (capture mode).
    verdicts: Vec<Vec<Option<OnlineVerdict>>>,
    /// slot → highest cursor processed + 1 (crash-gap bookkeeping).
    cursors: Vec<u64>,
    processed: u64,
    degraded: u64,
    quarantines: u64,
    readmissions: u64,
    quarantine_skipped: u64,
    since_checkpoint: u64,
}

struct ShardCtx {
    shard: usize,
    cfg: FleetConfig,
    detector: Arc<Detector>,
    sampler_config: SamplerConfig,
    /// (slot → stream id); slot order is the producer's sweep order.
    streams: Vec<u64>,
    checkpointer: Option<Arc<Checkpointer>>,
    /// slot → "hot" flag (alarmed/probation) for shedding priority.
    hot: Vec<Arc<AtomicBool>>,
    shed_low: Arc<AtomicU64>,
    shed_high: Arc<AtomicU64>,
    /// Fleet-wide processed counter feeding the throughput gauge.
    fleet_processed: Arc<AtomicU64>,
    started: Instant,
}

struct WorkerExit {
    cells: Vec<StreamCell>,
    interrupted: bool,
}

/// Run the fleet to completion (or interruption).
///
/// `detector` is the one shared trained model; every stream votes
/// against it through its own [`StreamState`].
///
/// # Errors
///
/// Returns an error when the timeline cannot be built. A shard
/// exhausting its restart budget does *not* fail the fleet — that is
/// the bulkhead contract — it is reported via
/// [`ShardReport::gave_up`].
pub fn run_fleet(
    detector: &Arc<Detector>,
    sampler_config: &SamplerConfig,
    cfg: &FleetConfig,
) -> Result<FleetReport, CoreError> {
    let started = Instant::now();
    let shards = cfg.shards.max(1);
    let streams: Vec<u64> = (0..cfg.streams.max(1)).collect();

    // Placement: stream → shard, stable under any shard count.
    let mut shard_streams: Vec<Vec<u64>> = vec![Vec::new(); shards];
    for &stream in &streams {
        shard_streams[shard_of(stream, shards)].push(stream);
    }

    // Initial restore: one multiplexed load for the whole fleet.
    let mut restored: BTreeMap<u64, StreamSection> = BTreeMap::new();
    let mut initial_refusals = 0u64;
    let mut initial_lost = 0u64;
    if let Some(path) = &cfg.checkpoint_path {
        if path.exists() {
            match snapshot::load_fleet(path, cfg.config_digest) {
                Ok(fleet) => {
                    initial_lost = fleet.lost_sections as u64;
                    for section in fleet.streams {
                        restored.insert(section.stream, section);
                    }
                }
                Err(refusal) => {
                    eprintln!("fleet: existing checkpoint refused ({refusal}); starting pristine");
                    hbmd_obs::incr("snapshot.refused");
                    initial_refusals += 1;
                    if let Some(hub) = &cfg.recorder {
                        hub.record(
                            0,
                            &RecorderEvent::Fault {
                                stream: 0,
                                cursor: 0,
                                kind: FaultKind::Refusal,
                            },
                        );
                        let mut trigger = Trigger::new("snapshot_refusal");
                        trigger.details = format!("{refusal}");
                        let _ = hub.trigger(&trigger);
                    }
                }
            }
        }
    }

    let cell_for = |stream: u64| -> StreamCell {
        match restored.get(&stream) {
            Some(section) => StreamCell {
                stream,
                state: section.state.clone(),
                health: section.health.clone(),
                cursor: section.cursor,
            },
            None => StreamCell {
                stream,
                state: cfg.pristine_stream.clone(),
                health: StreamHealth::new(cfg.health_policy),
                cursor: 0,
            },
        }
    };

    let checkpointer = cfg.checkpoint_path.as_ref().map(|path| {
        let sections: BTreeMap<u64, StreamSection> = streams
            .iter()
            .map(|&stream| {
                let cell = cell_for(stream);
                (
                    stream,
                    StreamSection {
                        stream,
                        cursor: cell.cursor,
                        state: cell.state,
                        health: cell.health,
                    },
                )
            })
            .collect();
        Arc::new(Checkpointer {
            path: path.clone(),
            config_digest: cfg.config_digest,
            shards: shards as u32,
            detector: Arc::clone(detector),
            sections: Mutex::new(sections),
        })
    });

    let fleet_processed = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(shards);
    for (shard, owned) in shard_streams.into_iter().enumerate() {
        let cells: Vec<StreamCell> = owned.iter().map(|&s| cell_for(s)).collect();
        let ctx = ShardCtx {
            shard,
            cfg: cfg.clone(),
            detector: Arc::clone(detector),
            sampler_config: sampler_config.clone(),
            streams: owned,
            checkpointer: checkpointer.clone(),
            hot: cells
                .iter()
                .map(|_| Arc::new(AtomicBool::new(false)))
                .collect(),
            shed_low: Arc::new(AtomicU64::new(0)),
            shed_high: Arc::new(AtomicU64::new(0)),
            fleet_processed: Arc::clone(&fleet_processed),
            started,
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("hbmd-shard-{shard}"))
                .spawn(move || shard_supervisor(ctx, cells))
                .map_err(|e| CoreError::Config(format!("spawn shard supervisor: {e}")))?,
        );
    }

    let mut shard_reports = Vec::with_capacity(shards);
    let mut verdicts = BTreeMap::new();
    let mut stream_health = BTreeMap::new();
    for handle in handles {
        let (report, cells, captured) = handle
            .join()
            .map_err(|_| CoreError::Config("shard supervisor panicked".to_owned()))??;
        for (slot, cell) in cells.iter().enumerate() {
            stream_health.insert(
                cell.stream,
                (
                    cell.health.standing(),
                    cell.health.quarantines(),
                    cell.health.readmissions(),
                ),
            );
            if cfg.capture_verdicts {
                if let Some(seq) = captured.get(slot) {
                    verdicts.insert(cell.stream, seq.clone());
                }
            }
        }
        shard_reports.push(report);
    }
    shard_reports.sort_by_key(|r| r.shard);
    if let Some(first) = shard_reports.first_mut() {
        first.refusals += initial_refusals;
        first.lost_sections += initial_lost;
    }

    // Final flush: the graceful-shutdown contract — the next start
    // resumes every stream instead of retraining.
    if let Some(checkpointer) = &checkpointer {
        if cfg.checkpoint_every > 0 {
            checkpointer.commit(Vec::new());
        }
    }

    let wall = started.elapsed();
    let processed: u64 = shard_reports.iter().map(|r| r.processed).sum();
    let windows_per_sec = if wall.as_secs_f64() > 0.0 {
        processed as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    hbmd_obs::gauge_set("fleet.windows_per_sec", windows_per_sec as i64);

    let interrupted = shard_reports.iter().any(|r| r.interrupted)
        || cfg
            .stop
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::SeqCst));
    Ok(FleetReport {
        processed,
        restarts: shard_reports.iter().map(|r| r.restarts).sum(),
        trips: shard_reports.iter().map(|r| r.trips).sum(),
        degraded: shard_reports.iter().map(|r| r.degraded).sum(),
        shed_low: shard_reports.iter().map(|r| r.shed_low).sum(),
        shed_high: shard_reports.iter().map(|r| r.shed_high).sum(),
        quarantines: shard_reports.iter().map(|r| r.quarantines).sum(),
        readmissions: shard_reports.iter().map(|r| r.readmissions).sum(),
        quarantine_skipped: shard_reports.iter().map(|r| r.quarantine_skipped).sum(),
        refusals: shard_reports.iter().map(|r| r.refusals).sum(),
        lost_sections: shard_reports.iter().map(|r| r.lost_sections).sum(),
        gave_up: shard_reports.iter().filter(|r| r.gave_up).count() as u64,
        max_missed_gap: shard_reports
            .iter()
            .map(|r| r.max_missed_gap)
            .max()
            .unwrap_or(0),
        interrupted,
        wall_ms: wall.as_millis() as u64,
        windows_per_sec,
        verdicts,
        stream_health,
        shards: shard_reports,
    })
}

type ShardOutcome = Result<
    (
        ShardReport,
        Vec<StreamCell>,
        Vec<Vec<Option<OnlineVerdict>>>,
    ),
    CoreError,
>;

fn set_shard_state(ctx: &ShardCtx, state: ServiceState) {
    if let Some(fleet) = &ctx.cfg.fleet_health {
        fleet.shard(ctx.shard).set_state(state);
    }
    let registry = hbmd_obs::current().registry().clone();
    let tag = match state {
        ServiceState::Starting => 0,
        ServiceState::Ready => 1,
        ServiceState::Degraded => 2,
        ServiceState::Restarting => 3,
    };
    registry
        .gauge_with("fleet.shard_state", &[("shard", &ctx.shard.to_string())])
        .set(tag);
}

fn shard_supervisor(ctx: ShardCtx, mut cells: Vec<StreamCell>) -> ShardOutcome {
    let mut backoff =
        Backoff::with_jitter(ctx.cfg.backoff_ms.0, ctx.cfg.backoff_ms.1, ctx.shard as u64);
    let mut report = ShardReport {
        shard: ctx.shard,
        streams: ctx.streams.len() as u64,
        processed: 0,
        restarts: 0,
        trips: 0,
        degraded: 0,
        shed_low: 0,
        shed_high: 0,
        quarantines: 0,
        readmissions: 0,
        quarantine_skipped: 0,
        refusals: 0,
        lost_sections: 0,
        max_missed_gap: 0,
        gave_up: false,
        interrupted: false,
    };

    let capture_len = if ctx.cfg.capture_verdicts {
        usize::try_from(ctx.cfg.windows_limit).unwrap_or(0)
    } else {
        0
    };
    let mut shared = ShardShared {
        breaker: CircuitBreaker::new(ctx.cfg.breaker.0, ctx.cfg.breaker.1, ctx.cfg.breaker.2),
        panic_at: ctx
            .cfg
            .panic_at
            .iter()
            .filter(|(shard, _)| *shard == ctx.shard)
            .map(|(_, cursor)| *cursor)
            .collect(),
        verdicts: vec![vec![None; capture_len]; cells.len()],
        cursors: cells.iter().map(|c| c.cursor).collect(),
        processed: 0,
        degraded: 0,
        quarantines: 0,
        readmissions: 0,
        quarantine_skipped: 0,
        since_checkpoint: 0,
    };

    set_shard_state(&ctx, ServiceState::Ready);
    let interrupted = loop {
        let timeline = FleetTimeline::new(&ctx.sampler_config).map_err(CoreError::from)?;
        let (tx, rx) = std::sync::mpsc::sync_channel(ctx.cfg.queue_capacity.max(1));
        let starts: Vec<u64> = cells.iter().map(|c| c.cursor).collect();
        let producer = spawn_shard_producer(&ctx, timeline, tx, starts);

        let taken = std::mem::take(&mut cells);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shard_worker(&ctx, taken, rx, &mut shared)
        }));
        let _ = producer.join();

        match outcome {
            Ok(exit) => {
                cells = exit.cells;
                break exit.interrupted;
            }
            Err(_) => {
                set_shard_state(&ctx, ServiceState::Restarting);
                if let Some(fleet) = &ctx.cfg.fleet_health {
                    fleet.shard(ctx.shard).record_restart();
                }
                hbmd_obs::incr("supervisor.restarts");
                hbmd_obs::counter_with(
                    "fleet.shard_restarts",
                    &[("shard", &ctx.shard.to_string())],
                )
                .incr();
                report.restarts += 1;
                if let Some(hub) = &ctx.cfg.recorder {
                    hub.record(
                        ctx.shard as u32,
                        &RecorderEvent::Restart {
                            attempt: report.restarts as u32,
                        },
                    );
                }
                if report.restarts > u64::from(ctx.cfg.max_restarts) {
                    // Bulkhead: this shard parks, the fleet lives on.
                    eprintln!(
                        "fleet: shard {} gave up after {} restarts; its {} streams stop",
                        ctx.shard,
                        report.restarts,
                        ctx.streams.len()
                    );
                    report.gave_up = true;
                    cells = Vec::new();
                    set_shard_state(&ctx, ServiceState::Degraded);
                    if let Some(hub) = &ctx.cfg.recorder {
                        let mut trigger = Trigger::new("restart_budget");
                        trigger.shard = Some(ctx.shard as u32);
                        trigger.details =
                            format!("shard gave up after {} restarts", report.restarts);
                        let _ = hub.trigger(&trigger);
                    }
                    break false;
                }
                let delay = backoff.next_delay_ms();
                if ctx.cfg.sleep_on_backoff {
                    std::thread::sleep(Duration::from_millis(delay));
                }
                cells = recover_cells(&ctx, &shared, &mut report);
                set_shard_state(&ctx, ServiceState::Ready);
            }
        }
    };

    // Graceful shard exit: commit final sections so a restart resumes.
    if let Some(checkpointer) = &ctx.checkpointer {
        if ctx.cfg.checkpoint_every > 0 && !cells.is_empty() {
            checkpointer.commit(sections_of(&cells));
        }
    }
    if !report.gave_up {
        set_shard_state(&ctx, ServiceState::Ready);
    }

    report.processed = shared.processed;
    report.trips = shared.breaker.trips();
    report.degraded = shared.degraded;
    report.quarantines = shared.quarantines;
    report.readmissions = shared.readmissions;
    report.quarantine_skipped = shared.quarantine_skipped;
    report.shed_low = ctx.shed_low.load(Ordering::SeqCst);
    report.shed_high = ctx.shed_high.load(Ordering::SeqCst);
    report.interrupted = interrupted;
    Ok((report, cells, std::mem::take(&mut shared.verdicts)))
}

fn sections_of(cells: &[StreamCell]) -> Vec<StreamSection> {
    cells
        .iter()
        .map(|cell| StreamSection {
            stream: cell.stream,
            cursor: cell.cursor,
            state: cell.state.clone(),
            health: cell.health.clone(),
        })
        .collect()
}

/// Rebuild a crashed shard's cells from the multiplexed checkpoint:
/// cleanly restored streams resume at their cursor, individually lost
/// sections (and whole-file refusals) fall back pristine.
fn recover_cells(
    ctx: &ShardCtx,
    shared: &ShardShared,
    report: &mut ShardReport,
) -> Vec<StreamCell> {
    let mut restored: BTreeMap<u64, StreamSection> = BTreeMap::new();
    if let Some(path) = &ctx.cfg.checkpoint_path {
        if path.exists() {
            match snapshot::load_fleet(path, ctx.cfg.config_digest) {
                Ok(fleet) => {
                    report.lost_sections += fleet.lost_sections as u64;
                    for section in fleet.streams {
                        restored.insert(section.stream, section);
                    }
                }
                Err(refusal) => {
                    eprintln!(
                        "fleet: shard {} checkpoint refused ({refusal}); streams restart pristine",
                        ctx.shard
                    );
                    hbmd_obs::incr("snapshot.refused");
                    report.refusals += 1;
                    if let Some(hub) = &ctx.cfg.recorder {
                        hub.record(
                            ctx.shard as u32,
                            &RecorderEvent::Fault {
                                stream: 0,
                                cursor: 0,
                                kind: FaultKind::Refusal,
                            },
                        );
                        let mut trigger = Trigger::new("snapshot_refusal");
                        trigger.shard = Some(ctx.shard as u32);
                        trigger.details = format!("{refusal}");
                        let _ = hub.trigger(&trigger);
                    }
                }
            }
        }
    }
    ctx.streams
        .iter()
        .enumerate()
        .map(|(slot, &stream)| {
            let cell = match restored.remove(&stream) {
                Some(section) => StreamCell {
                    stream,
                    state: section.state,
                    health: section.health,
                    cursor: section.cursor,
                },
                None => StreamCell {
                    stream,
                    state: ctx.cfg.pristine_stream.clone(),
                    health: StreamHealth::new(ctx.cfg.health_policy),
                    cursor: 0,
                },
            };
            // Crash gap: how far this stream replays to reach where it was.
            let crash_point = shared.cursors[slot];
            report.max_missed_gap = report
                .max_missed_gap
                .max(crash_point.saturating_sub(cell.cursor));
            cell
        })
        .collect()
}

fn spawn_shard_producer(
    ctx: &ShardCtx,
    mut timeline: FleetTimeline,
    tx: SyncSender<(usize, u64, FeatureVector)>,
    starts: Vec<u64>,
) -> std::thread::JoinHandle<()> {
    let streams = ctx.streams.clone();
    let limit = ctx.cfg.windows_limit;
    let pace = ctx.cfg.pace;
    let shed_when_full = ctx.cfg.shed_when_full;
    let stop = ctx.cfg.stop.clone();
    let hot = ctx.hot.clone();
    let shed_low = Arc::clone(&ctx.shed_low);
    let shed_high = Arc::clone(&ctx.shed_high);
    let fleet_health = ctx.cfg.fleet_health.clone();
    let shard = ctx.shard;
    let start_min = starts.iter().copied().min().unwrap_or(0);
    std::thread::Builder::new()
        .name(format!("hbmd-timeline-{shard}"))
        .spawn(move || {
            let mut cursor = start_min;
            'sweep: while limit == 0 || cursor < limit {
                for (slot, &stream) in streams.iter().enumerate() {
                    if stop
                        .as_ref()
                        .is_some_and(|flag| flag.load(Ordering::SeqCst))
                    {
                        break 'sweep;
                    }
                    if cursor < starts[slot] {
                        // This stream resumed further ahead; its replay
                        // starts at its own checkpoint cursor.
                        continue;
                    }
                    let window = timeline.window(stream, cursor);
                    if shed_when_full {
                        match tx.try_send((slot, cursor, window)) {
                            Ok(()) => {}
                            Err(TrySendError::Full(message)) => {
                                if shed_with_priority(
                                    &tx,
                                    message,
                                    hot[slot].load(Ordering::Relaxed),
                                    &shed_low,
                                    &shed_high,
                                ) {
                                    if let Some(fleet) = &fleet_health {
                                        fleet.record_shed(1);
                                    }
                                }
                            }
                            Err(TrySendError::Disconnected(_)) => break 'sweep,
                        }
                    } else if tx.send((slot, cursor, window)).is_err() {
                        break 'sweep;
                    }
                }
                cursor += 1;
                if let Some(pace) = pace {
                    std::thread::sleep(pace);
                }
            }
        })
        .expect("spawn fleet timeline producer")
}

/// Counted, prioritized shedding: hot streams (alarmed or on
/// probation) get a bounded retry before their window is dropped; cold
/// streams are shed immediately. Returns `true` when the window was
/// ultimately shed.
fn shed_with_priority(
    tx: &SyncSender<(usize, u64, FeatureVector)>,
    mut message: (usize, u64, FeatureVector),
    hot: bool,
    shed_low: &AtomicU64,
    shed_high: &AtomicU64,
) -> bool {
    if !hot {
        shed_low.fetch_add(1, Ordering::SeqCst);
        hbmd_obs::counter_with("fleet.shed", &[("priority", "low")]).incr();
        return true;
    }
    for _ in 0..10 {
        std::thread::sleep(Duration::from_micros(100));
        match tx.try_send(message) {
            Ok(()) => return false,
            Err(TrySendError::Full(back)) => message = back,
            Err(TrySendError::Disconnected(_)) => return false,
        }
    }
    shed_high.fetch_add(1, Ordering::SeqCst);
    hbmd_obs::counter_with("fleet.shed", &[("priority", "high")]).incr();
    true
}

/// Maps a stream standing onto the recorder's self-contained code.
fn standing_kind(standing: StreamStanding) -> StandingKind {
    match standing {
        StreamStanding::Active => StandingKind::Active,
        StreamStanding::Quarantined => StandingKind::Quarantined,
        StreamStanding::Probation => StandingKind::Probation,
    }
}

/// Builds the flight-recorder record for one observed window: the
/// verdict, vote margin, abstention flag, and the post-sanitize
/// feature values (a fixed-size stack copy — no allocation).
pub(crate) fn window_event(
    stream: u64,
    cursor: u64,
    verdict: OnlineVerdict,
    abstained: bool,
    window: &FeatureVector,
) -> RecorderEvent {
    let (kind, family, votes, of) = match verdict {
        OnlineVerdict::Warmup => (VerdictKind::Warmup, NO_FAMILY, 0, 0),
        OnlineVerdict::Clean => (VerdictKind::Clean, NO_FAMILY, 0, 0),
        OnlineVerdict::Alarm { family, votes, of } => (
            VerdictKind::Alarm,
            family.index() as u8,
            votes as u16,
            of as u16,
        ),
    };
    RecorderEvent::Window {
        stream,
        cursor,
        verdict: kind,
        family,
        votes,
        of,
        abstained,
        features: FeatureFrame::from_slice(window.as_slice()),
    }
}

/// Most messages a worker drains from its queue per blocking receive:
/// one `recv` park/unpark then up to this many windows classified
/// back-to-back while the producer refills, instead of a channel
/// round-trip per window.
const DRAIN_BATCH: usize = 32;

fn shard_worker(
    ctx: &ShardCtx,
    mut cells: Vec<StreamCell>,
    rx: Receiver<(usize, u64, FeatureVector)>,
    shared: &mut ShardShared,
) -> WorkerExit {
    let mut interrupted = false;
    let mut batch: Vec<(usize, u64, FeatureVector)> = Vec::with_capacity(DRAIN_BATCH);
    'drain: while let Ok(first) = rx.recv() {
        batch.clear();
        batch.push(first);
        while batch.len() < DRAIN_BATCH {
            match rx.try_recv() {
                Ok(message) => batch.push(message),
                Err(_) => break,
            }
        }
        for (slot, cursor, window) in batch.drain(..) {
            if ctx
                .cfg
                .stop
                .as_ref()
                .is_some_and(|flag| flag.load(Ordering::SeqCst))
            {
                interrupted = true;
                break 'drain;
            }
            // Injected fault: panic exactly once per scheduled cursor, so
            // the post-restart replay of the same cursor runs clean.
            if shared.panic_at.remove(&cursor) {
                if let Some(hub) = &ctx.cfg.recorder {
                    hub.record(
                        ctx.shard as u32,
                        &RecorderEvent::Fault {
                            stream: cells[slot].stream,
                            cursor,
                            kind: FaultKind::Panic,
                        },
                    );
                }
                panic!(
                    "chaos: injected worker panic on shard {} at window {cursor}",
                    ctx.shard
                );
            }
            let cell = &mut cells[slot];
            if cursor < cell.cursor {
                // Replay below this stream's resume point (another stream
                // on the shard restarted further behind).
                continue;
            }
            let window = if ctx
                .cfg
                .nan_streams
                .iter()
                .any(|&(s, from, to)| s == cell.stream && cursor >= from && cursor < to)
            {
                if let Some(hub) = &ctx.cfg.recorder {
                    hub.record(
                        ctx.shard as u32,
                        &RecorderEvent::Fault {
                            stream: cell.stream,
                            cursor,
                            kind: FaultKind::Nan,
                        },
                    );
                }
                FeatureVector::from_slice(&[f64::NAN; HpcEvent::COUNT])
                    .expect("full-width NaN vector")
            } else {
                window
            };

            if shared.breaker.state() == BreakerState::Open {
                // Shard-degraded: don't feed any vote ring, burn a
                // cooldown tick, account the skipped window.
                shared.degraded += 1;
                let before = shared.breaker.state();
                let after = shared.breaker.record(false);
                if before == BreakerState::Open && after == BreakerState::HalfOpen {
                    set_shard_state(ctx, ServiceState::Ready);
                }
            } else if cell.health.is_quarantined() {
                // Quarantined stream: skip classification, burn one
                // quarantine tick; the shard's breaker never sees it.
                shared.quarantine_skipped += 1;
                let before_standing = cell.health.standing();
                let after_standing = cell.health.record(false);
                if let Some(hub) = &ctx.cfg.recorder {
                    if before_standing != after_standing {
                        hub.record(
                            ctx.shard as u32,
                            &RecorderEvent::Health {
                                stream: cell.stream,
                                cursor,
                                from: standing_kind(before_standing),
                                to: standing_kind(after_standing),
                            },
                        );
                    }
                }
                ctx.hot[slot].store(
                    cell.health.standing() != StreamStanding::Active,
                    Ordering::Relaxed,
                );
            } else {
                let verdict = cell.state.observe(&ctx.detector, &window);
                let faulted = cell.state.last_window_abstained();
                if let Some(hub) = &ctx.cfg.recorder {
                    hub.record(
                        ctx.shard as u32,
                        &window_event(cell.stream, cursor, verdict, faulted, &window),
                    );
                }
                let before_standing = cell.health.standing();
                let after_standing = cell.health.record(faulted);
                if let Some(hub) = &ctx.cfg.recorder {
                    if before_standing != after_standing {
                        hub.record(
                            ctx.shard as u32,
                            &RecorderEvent::Health {
                                stream: cell.stream,
                                cursor,
                                from: standing_kind(before_standing),
                                to: standing_kind(after_standing),
                            },
                        );
                    }
                }
                if after_standing == StreamStanding::Quarantined
                    && before_standing != StreamStanding::Quarantined
                {
                    shared.quarantines += 1;
                    hbmd_obs::incr("fleet.quarantines");
                    if let Some(fleet) = &ctx.cfg.fleet_health {
                        fleet.record_quarantine();
                    }
                } else if before_standing == StreamStanding::Probation
                    && after_standing == StreamStanding::Active
                {
                    shared.readmissions += 1;
                    hbmd_obs::incr("fleet.readmissions");
                    if let Some(fleet) = &ctx.cfg.fleet_health {
                        fleet.record_readmission();
                    }
                }
                let before = shared.breaker.state();
                let after = shared.breaker.record(faulted);
                if after == BreakerState::Open && before != BreakerState::Open {
                    if let Some(fleet) = &ctx.cfg.fleet_health {
                        fleet.shard(ctx.shard).record_trip();
                    }
                    hbmd_obs::incr("breaker.trips");
                    set_shard_state(ctx, ServiceState::Degraded);
                    if let Some(hub) = &ctx.cfg.recorder {
                        hub.record(
                            ctx.shard as u32,
                            &RecorderEvent::Breaker {
                                stream: cell.stream,
                                cursor,
                            },
                        );
                        let mut trigger = Trigger::new("breaker_trip");
                        trigger.shard = Some(ctx.shard as u32);
                        trigger.stream = Some(cell.stream);
                        trigger.cursor = Some(cursor);
                        let _ = hub.trigger(&trigger);
                    }
                }
                let alarmed = matches!(verdict, OnlineVerdict::Alarm { .. });
                ctx.hot[slot].store(
                    alarmed || after_standing != StreamStanding::Active,
                    Ordering::Relaxed,
                );
                if let Some(sequence) = shared.verdicts.get_mut(slot) {
                    if let Some(entry) =
                        sequence.get_mut(usize::try_from(cursor).unwrap_or(usize::MAX))
                    {
                        *entry = Some(verdict);
                    }
                }
                if ctx.cfg.verbose && slot == 0 {
                    if let OnlineVerdict::Alarm { family, votes, of } = verdict {
                        if cursor.is_multiple_of(16) {
                            eprintln!(
                            "serve: shard {} stream {} ALARM ({family}, {votes}/{of}) at window {cursor}",
                            ctx.shard, cell.stream
                        );
                        }
                    }
                }
            }

            cell.cursor = cursor + 1;
            shared.cursors[slot] = shared.cursors[slot].max(cursor + 1);
            shared.processed += 1;
            shared.since_checkpoint += 1;
            hbmd_obs::incr("fleet.windows");
            let total = ctx.fleet_processed.fetch_add(1, Ordering::Relaxed) + 1;
            if total.is_multiple_of(4096) {
                let elapsed = ctx.started.elapsed().as_secs_f64();
                if elapsed > 0.0 {
                    hbmd_obs::gauge_set("fleet.windows_per_sec", (total as f64 / elapsed) as i64);
                }
            }
            if ctx.cfg.checkpoint_every > 0 && shared.since_checkpoint >= ctx.cfg.checkpoint_every {
                shared.since_checkpoint = 0;
                if let Some(checkpointer) = &ctx.checkpointer {
                    checkpointer.commit(sections_of(&cells));
                    if let Some(hub) = &ctx.cfg.recorder {
                        hub.record(ctx.shard as u32, &RecorderEvent::Checkpoint { cursor });
                    }
                }
            }
        }
    }
    WorkerExit { cells, interrupted }
}
