//! No-op `Serialize`/`Deserialize` derives for the vendored serde
//! facade: the workspace's derive annotations are declarative (no
//! serialisation format crate is linked), so the macros accept any
//! item — including `#[serde(...)]` attributes — and expand to
//! nothing. See `vendor/serde` for the rationale.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
