use hbmd_events::{CounterSet, FeatureVector, HaswellCatalog, HpcEvent};
use hbmd_uarch::{Cpu, InstructionSource};
use serde::{Deserialize, Serialize};

use crate::error::PerfError;

/// How the PMU's 8 programmable registers are loaded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmuConfig {
    /// Number of programmable counter registers (8 on the reference
    /// platform).
    pub counters: usize,
    /// Program the full 52-event hardware catalog (7 multiplexing
    /// groups) instead of just the 16 collected events (2 groups).
    /// Heavier multiplexing means noisier scaled estimates — the
    /// platform reality when profiling broadly.
    pub full_catalog: bool,
    /// Time slices per sampling window. Must be at least the group
    /// count so every event gets scheduled.
    pub slices_per_window: usize,
}

impl PmuConfig {
    /// The evaluation setup: 8 registers, only the 16 collected events
    /// programmed, 8 slices per window.
    pub fn haswell_collected() -> PmuConfig {
        PmuConfig {
            counters: HaswellCatalog::PROGRAMMABLE_COUNTERS,
            full_catalog: false,
            slices_per_window: 8,
        }
    }

    /// All 52 hardware events programmed (heavy multiplexing).
    pub fn haswell_full() -> PmuConfig {
        PmuConfig {
            counters: HaswellCatalog::PROGRAMMABLE_COUNTERS,
            full_catalog: true,
            slices_per_window: 14,
        }
    }

    /// Number of multiplexing groups implied by this configuration.
    pub fn groups(&self) -> usize {
        let programmed = if self.full_catalog {
            HaswellCatalog::HARDWARE_EVENTS
        } else {
            HpcEvent::COUNT
        };
        programmed.div_ceil(self.counters.max(1))
    }

    /// Check the configuration is usable.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::Config`] when `counters` is zero or
    /// `slices_per_window` is smaller than the group count.
    pub fn validate(&self) -> Result<(), PerfError> {
        if self.counters == 0 {
            return Err(PerfError::Config("counters must be non-zero".to_owned()));
        }
        if self.slices_per_window < self.groups() {
            return Err(PerfError::Config(format!(
                "slices_per_window {} is smaller than the {} multiplexing groups",
                self.slices_per_window,
                self.groups()
            )));
        }
        Ok(())
    }
}

impl Default for PmuConfig {
    fn default() -> PmuConfig {
        PmuConfig::haswell_collected()
    }
}

/// The performance monitoring unit model: schedules programmed events
/// onto the limited counter registers in time slices and reports
/// `perf`-style scaled estimates.
///
/// With 16 events on 8 registers, each event is live for half of every
/// window; `perf` (and this model) compensates by reporting
/// `raw × window/live`, which is an unbiased but noisy estimate — the
/// exact artefact real HPC collection lives with.
///
/// # Examples
///
/// ```
/// use hbmd_perf::{Pmu, PmuConfig};
/// use hbmd_uarch::{Cpu, CpuConfig, StreamParams, SyntheticStream};
///
/// let mut pmu = Pmu::new(PmuConfig::haswell_collected())?;
/// let mut cpu = Cpu::new(CpuConfig::tiny());
/// let mut stream = SyntheticStream::new(StreamParams::balanced(), 3);
/// let features = pmu.measure_window(&mut cpu, &mut stream, 8_000);
/// assert!(features.as_slice().iter().any(|&v| v > 0.0));
/// # Ok::<(), hbmd_perf::PerfError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pmu {
    config: PmuConfig,
    /// Which multiplexing group each collected event belongs to.
    group_of: [usize; HpcEvent::COUNT],
    groups: usize,
    /// Rotates across windows so group phase does not alias with
    /// program phase.
    rotation: usize,
}

impl Pmu {
    /// Build a PMU model.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::Config`] when `config` fails
    /// [`PmuConfig::validate`].
    pub fn new(config: PmuConfig) -> Result<Pmu, PerfError> {
        config.validate()?;
        let groups = config.groups();
        let mut group_of = [0usize; HpcEvent::COUNT];
        // The collected events occupy the first slots of the programmed
        // list (they are first in the catalog), packed `counters` per
        // group.
        for event in HpcEvent::ALL {
            group_of[event.index()] = event.index() / config.counters;
        }
        Ok(Pmu {
            config,
            group_of,
            groups,
            rotation: 0,
        })
    }

    /// The configuration this PMU was built with.
    pub fn config(&self) -> &PmuConfig {
        &self.config
    }

    /// Execute one sampling window of `budget` instructions and return
    /// the scaled feature estimates, exactly as `perf stat -I` would
    /// report them.
    ///
    /// The window is divided into `slices_per_window` time slices; in
    /// each slice only one group of events is "live" on the registers.
    /// An event's estimate is its live-slice count scaled by
    /// `total_slices / live_slices`.
    pub fn measure_window<S: InstructionSource>(
        &mut self,
        cpu: &mut Cpu,
        source: &mut S,
        budget: u64,
    ) -> FeatureVector {
        let slices = self.config.slices_per_window;
        let per_slice = (budget / slices as u64).max(1);
        let mut raw = CounterSet::new();
        let mut live_slices = [0u32; HpcEvent::COUNT];

        for slice in 0..slices {
            let active_group = (slice + self.rotation) % self.groups;
            let before = *cpu.counters();
            cpu.run(source, per_slice);
            let delta = cpu.counters().delta(&before);
            for event in HpcEvent::ALL {
                if self.group_of[event.index()] == active_group {
                    raw.record(event, delta[event]);
                    live_slices[event.index()] += 1;
                }
            }
        }
        self.rotation = (self.rotation + 1) % self.groups;

        FeatureVector::from_scaled(&raw, |event| {
            let live = live_slices[event.index()];
            if live == 0 {
                0.0
            } else {
                slices as f64 / live as f64
            }
        })
    }

    /// Execute one window with *no* multiplexing: every event counted
    /// exactly. The baseline for the multiplexing-noise ablation.
    pub fn measure_window_exact<S: InstructionSource>(
        cpu: &mut Cpu,
        source: &mut S,
        budget: u64,
    ) -> FeatureVector {
        let before = *cpu.counters();
        cpu.run(source, budget);
        FeatureVector::from_counts(&cpu.counters().delta(&before))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbmd_uarch::{CpuConfig, StreamParams, SyntheticStream};

    #[test]
    fn groups_and_validation() {
        let collected = PmuConfig::haswell_collected();
        assert_eq!(collected.groups(), 2);
        assert!(collected.validate().is_ok());

        let full = PmuConfig::haswell_full();
        assert_eq!(full.groups(), 7);
        assert!(full.validate().is_ok());

        let starved = PmuConfig {
            slices_per_window: 1,
            ..PmuConfig::haswell_collected()
        };
        assert!(starved.validate().is_err());

        let zero = PmuConfig {
            counters: 0,
            ..PmuConfig::haswell_collected()
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn scaled_estimates_track_exact_counts() {
        // Multiplexed estimates must be unbiased: over a long window the
        // scaled value should land near the exact count.
        let budget = 64_000;
        let mut exact_cpu = Cpu::new(CpuConfig::tiny());
        let mut exact_stream = SyntheticStream::new(StreamParams::balanced(), 5);
        let exact = Pmu::measure_window_exact(&mut exact_cpu, &mut exact_stream, budget);

        let mut pmu = Pmu::new(PmuConfig::haswell_collected()).expect("valid");
        let mut cpu = Cpu::new(CpuConfig::tiny());
        let mut stream = SyntheticStream::new(StreamParams::balanced(), 5);
        let scaled = pmu.measure_window(&mut cpu, &mut stream, budget);

        for event in [
            HpcEvent::BranchInstructions,
            HpcEvent::L1DcacheLoads,
            HpcEvent::L1DcacheStores,
        ] {
            let e = exact[event];
            let s = scaled[event];
            assert!(e > 0.0);
            let rel = (s - e).abs() / e;
            assert!(rel < 0.25, "{event}: scaled {s} vs exact {e} (rel {rel})");
        }
    }

    #[test]
    fn every_event_gets_scheduled() {
        let mut pmu = Pmu::new(PmuConfig::haswell_full()).expect("valid");
        let mut cpu = Cpu::new(CpuConfig::tiny());
        // A stream with every behaviour active.
        let params = StreamParams {
            load_frac: 0.3,
            store_frac: 0.2,
            branch_frac: 0.2,
            data_working_set: 1024 * 1024,
            data_locality: 0.5,
            code_footprint: 256 * 1024,
            code_locality: 0.6,
            branch_predictability: 0.5,
            branch_taken_bias: 0.5,
        };
        let mut stream = SyntheticStream::new(params, 9);
        let fv = pmu.measure_window(&mut cpu, &mut stream, 140_000);
        for event in [
            HpcEvent::BranchInstructions,
            HpcEvent::L1DcacheLoads,
            HpcEvent::L1DcacheStores,
            HpcEvent::L1DcacheLoadMisses,
            HpcEvent::CacheReferences,
        ] {
            assert!(fv[event] > 0.0, "{event} never counted");
        }
    }

    #[test]
    fn heavier_multiplexing_is_noisier() {
        // Estimate variance across repeated windows: the 7-group full
        // catalog should be noisier than the 2-group collected set.
        let spread = |config: PmuConfig| {
            let mut pmu = Pmu::new(config).expect("valid");
            let mut cpu = Cpu::new(CpuConfig::tiny());
            let mut stream = SyntheticStream::new(StreamParams::balanced(), 21);
            let mut values = Vec::new();
            for _ in 0..30 {
                let fv = pmu.measure_window(&mut cpu, &mut stream, 14_000);
                values.push(fv[HpcEvent::L1DcacheLoadMisses]);
            }
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
            var.sqrt() / mean.max(1e-9)
        };
        let light = spread(PmuConfig::haswell_collected());
        let heavy = spread(PmuConfig::haswell_full());
        assert!(
            heavy > light,
            "full-catalog multiplexing should be noisier ({heavy} vs {light})"
        );
    }

    #[test]
    fn exact_mode_counts_everything_once() {
        let mut cpu = Cpu::new(CpuConfig::tiny());
        let mut stream = SyntheticStream::new(StreamParams::balanced(), 1);
        let fv = Pmu::measure_window_exact(&mut cpu, &mut stream, 10_000);
        let total_loads = fv[HpcEvent::L1DcacheLoads];
        assert!(total_loads > 1_000.0, "got {total_loads}");
        assert_eq!(cpu.stats().instructions, 10_000);
    }
}
