//! Minimal JSON rendering helpers.
//!
//! The workspace vendors no JSON serializer, so the observability
//! artefacts (metrics snapshots, span event lines, run manifests)
//! render themselves through these two primitives.

/// A JSON string literal with the mandatory escapes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number for an `f64` (`null` for NaN/infinity, which JSON
/// cannot represent).
pub fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials_and_control_characters() {
        assert_eq!(string("a\"b\\c\nd\u{2}"), "\"a\\\"b\\\\c\\nd\\u0002\"");
        assert_eq!(string("plain"), "\"plain\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(float(0.25), "0.25");
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
    }
}
