//! Microbenchmark: PCA fitting and attribute ranking — the feature-
//! reduction step behind Table 2 and Figures 8–12.

use criterion::{criterion_group, criterion_main, Criterion};
use hbmd_bench::config_at_scale;
use hbmd_core::{to_binary_dataset, FeaturePlan};
use hbmd_ml::Pca;

fn bench_pca(c: &mut Criterion) {
    let mut config = config_at_scale(0.05);
    config.collector.sampler.windows_per_sample = 4;
    let hpc = config.collect();
    let data = to_binary_dataset(&hpc);

    let mut group = c.benchmark_group("pca");
    group.sample_size(20);

    group.bench_function("fit_16x16", |b| {
        b.iter(|| Pca::fit(&data).expect("fit"));
    });

    let pca = Pca::fit(&data).expect("fit");
    group.bench_function("rank_attributes", |b| {
        b.iter(|| pca.rank_attributes(0.95));
    });

    group.bench_function("feature_plan_per_class", |b| {
        b.iter(|| FeaturePlan::fit(&hpc).expect("plan"));
    });

    group.finish();
}

criterion_group!(benches, bench_pca);
criterion_main!(benches);
