use std::panic::{self, AssertUnwindSafe};
use std::time::Duration;

use hbmd_malware::{MultiEngineLabeler, Sample, SampleCatalog, SampleId};
use serde::{Deserialize, Serialize};

use crate::dataset::{DataRow, HpcDataset};
use crate::error::PerfError;
use crate::fault::{FaultCounts, FaultInjector, FaultPlan};
use crate::sampler::{Sampler, SamplerConfig};

/// Configuration for whole-catalog collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectorConfig {
    /// Per-sample observation setup.
    pub sampler: SamplerConfig,
    /// Worker threads (1 = sequential). Collection is embarrassingly
    /// parallel across samples; results are returned in catalog order
    /// regardless of thread count.
    pub threads: usize,
    /// Label rows with a multi-engine labeller instead of ground truth,
    /// introducing realistic label noise.
    pub labeler: Option<MultiEngineLabeler>,
    /// Inject collection-path faults (`None` = pristine pipeline).
    pub fault: Option<FaultPlan>,
    /// Extra attempts per sample after a failed (panicked) collection.
    pub max_retries: u32,
    /// Base of the deterministic exponential backoff between retry
    /// attempts, in milliseconds (attempt `n` sleeps `base << (n-1)`).
    /// Zero (the default) retries immediately — the simulator has no
    /// transient hardware to wait out, but real deployments do.
    pub retry_backoff_ms: u64,
    /// Abort with [`PerfError::DegradedCollection`] when more than this
    /// fraction of samples is quarantined after retries.
    pub failure_threshold: f64,
}

impl CollectorConfig {
    /// The reference setup on all available parallelism.
    pub fn paper() -> CollectorConfig {
        CollectorConfig {
            sampler: SamplerConfig::paper(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            labeler: None,
            fault: None,
            max_retries: 2,
            retry_backoff_ms: 0,
            failure_threshold: 0.5,
        }
    }

    /// A reduced setup for tests: tiny machine, 4 short windows,
    /// sequential.
    pub fn fast() -> CollectorConfig {
        CollectorConfig {
            sampler: SamplerConfig::fast(),
            threads: 1,
            labeler: None,
            fault: None,
            max_retries: 2,
            retry_backoff_ms: 0,
            failure_threshold: 0.5,
        }
    }

    /// `fast()` with a fault plan attached.
    pub fn faulted(plan: FaultPlan) -> CollectorConfig {
        CollectorConfig {
            fault: Some(plan),
            ..CollectorConfig::fast()
        }
    }
}

impl Default for CollectorConfig {
    fn default() -> CollectorConfig {
        CollectorConfig::paper()
    }
}

/// What happened during one catalog collection: how much data survived,
/// which samples had to be quarantined, and the injected-fault tally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionReport {
    /// Samples in the catalog.
    pub samples_total: usize,
    /// Rows that made it into the dataset.
    pub rows: usize,
    /// Samples that failed every attempt and contributed no rows.
    pub quarantined: Vec<SampleId>,
    /// Retry attempts spent across all samples.
    pub retries: usize,
    /// Faults observed/injected across all samples (final attempts plus
    /// the panics of failed ones).
    pub faults: FaultCounts,
}

impl CollectionReport {
    /// Fraction of the catalog that was quarantined.
    pub fn failure_rate(&self) -> f64 {
        if self.samples_total == 0 {
            0.0
        } else {
            self.quarantined.len() as f64 / self.samples_total as f64
        }
    }

    /// `true` when nothing was quarantined, retried, or corrupted.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.retries == 0 && self.faults.total() == 0
    }
}

/// One collection run: the dataset plus the pipeline telemetry that
/// produced it.
///
/// This is what [`Collector::collect`] returns and what the
/// experiment-layer collect cache memoizes — dataset and report travel
/// together so degradation telemetry (quarantined samples, retries,
/// fault tallies) is never silently discarded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Collection {
    /// The collected dataset, rows in catalog order.
    pub dataset: HpcDataset,
    /// Pipeline telemetry for the run that produced `dataset`.
    pub report: CollectionReport,
}

impl Collection {
    /// Split into `(dataset, report)` — the shape of the deprecated
    /// tuple-returning API.
    pub fn into_parts(self) -> (HpcDataset, CollectionReport) {
        (self.dataset, self.report)
    }
}

/// Message prefix of injected worker panics; the quiet panic hook keys
/// on it so genuine bugs still report normally.
const INJECTED_PANIC_PREFIX: &str = "injected worker fault";

/// Installs (once, process-wide) a panic hook that is silent for
/// injected worker faults and delegates to the previous hook for
/// everything else. Injected panics are expected control flow under
/// `catch_unwind`; their default backtraces would drown real
/// diagnostics in faulted collections.
fn install_quiet_injection_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with(INJECTED_PANIC_PREFIX));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Per-sample result of the resilient collection path.
struct SampleOutcome {
    rows: Vec<DataRow>,
    retries: usize,
    faults: FaultCounts,
    quarantined: Option<SampleId>,
}

/// Runs the full collection pipeline over a [`SampleCatalog`]: every
/// sample is launched in its container, sampled for the configured
/// number of windows, and its windows appended as dataset rows.
///
/// Collection is fault-tolerant: a sample whose worker panics is
/// retried up to [`CollectorConfig::max_retries`] times and quarantined
/// (not fatal) if it keeps failing; the [`Collection`] returned by
/// [`Collector::collect`] carries the full telemetry.
///
/// # Examples
///
/// ```
/// use hbmd_malware::SampleCatalog;
/// use hbmd_perf::{Collector, CollectorConfig};
///
/// let catalog = SampleCatalog::scaled(0.01, 3);
/// let collector = Collector::new(CollectorConfig::fast()).expect("static config");
/// let collection = collector.collect(&catalog).expect("pristine pipeline");
/// assert_eq!(collection.dataset.len(), catalog.len() * 4);
/// assert!(collection.report.is_clean());
/// ```
#[derive(Debug, Clone)]
pub struct Collector {
    config: CollectorConfig,
}

impl Collector {
    /// Build a collector, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::Config`] when the sampler configuration,
    /// fault plan, or failure threshold is invalid or `threads` is
    /// zero.
    pub fn new(config: CollectorConfig) -> Result<Collector, PerfError> {
        config.sampler.validate()?;
        if config.threads == 0 {
            return Err(PerfError::Config("threads must be non-zero".to_owned()));
        }
        if let Some(plan) = &config.fault {
            plan.validate()?;
        }
        if !(config.failure_threshold.is_finite()
            && (0.0..=1.0).contains(&config.failure_threshold))
        {
            return Err(PerfError::Config(format!(
                "failure_threshold {} is outside [0, 1]",
                config.failure_threshold
            )));
        }
        Ok(Collector { config })
    }

    /// Fallible constructor — now just another name for
    /// [`Collector::new`], which validates too.
    ///
    /// # Errors
    ///
    /// See [`Collector::new`].
    #[deprecated(since = "0.2.0", note = "use `Collector::new`, which is now fallible")]
    pub fn try_new(config: CollectorConfig) -> Result<Collector, PerfError> {
        Collector::new(config)
    }

    /// The configuration this collector runs with.
    pub fn config(&self) -> &CollectorConfig {
        &self.config
    }

    /// Collect the whole catalog into a [`Collection`]: the labelled
    /// dataset (rows in catalog order) together with the pipeline
    /// report — quarantined samples, retry spend, and fault tallies.
    ///
    /// Each sample is collected under `catch_unwind`; a panicking
    /// worker loses only that sample's attempt. Failed attempts are
    /// retried with deterministic exponential backoff, then the sample
    /// is quarantined. Rows come back in catalog order regardless of
    /// thread count, and fault injection is keyed on
    /// `(plan.seed, sample id, attempt)`, so the result is
    /// byte-identical across runs and thread counts.
    ///
    /// The run is observable: it opens a `collect` span (one
    /// `collect.sample` child per sample) and records exact
    /// `windows_collected`, `collect.*`, and `faults_injected{kind}`
    /// counters into the installed [`hbmd_obs`] context.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::DegradedCollection`] when the quarantine
    /// rate exceeds [`CollectorConfig::failure_threshold`].
    pub fn collect(&self, catalog: &SampleCatalog) -> Result<Collection, PerfError> {
        let mut span = hbmd_obs::span!(
            "collect",
            samples = catalog.len(),
            threads = self.config.threads,
            faulted = self.config.fault.as_ref().is_some_and(|p| !p.is_none()),
        );
        if self
            .config
            .fault
            .as_ref()
            .is_some_and(|plan| plan.worker_panic > 0.0)
        {
            install_quiet_injection_hook();
        }
        let samples = catalog.samples();
        let outcomes: Vec<SampleOutcome> = if self.config.threads <= 1 || samples.len() < 2 {
            samples.iter().map(|s| self.collect_resilient(s)).collect()
        } else {
            // Parallel: chunk the catalog across scoped worker threads
            // and reassemble in order.
            let threads = self.config.threads.min(samples.len());
            let chunk_len = samples.len().div_ceil(threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = samples
                    .chunks(chunk_len)
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk
                                .iter()
                                .map(|s| self.collect_resilient(s))
                                .collect::<Vec<SampleOutcome>>()
                        })
                    })
                    .collect();
                // Per-sample panics are caught inside collect_resilient;
                // a panic escaping to here is a harness bug, not a
                // collection fault.
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("collection worker harness panicked"))
                    .collect()
            })
        };

        let mut report = CollectionReport {
            samples_total: samples.len(),
            rows: 0,
            quarantined: Vec::new(),
            retries: 0,
            faults: FaultCounts::default(),
        };
        let mut rows = Vec::new();
        for outcome in outcomes {
            report.rows += outcome.rows.len();
            report.retries += outcome.retries;
            report.faults.merge(&outcome.faults);
            if let Some(id) = outcome.quarantined {
                report.quarantined.push(id);
            }
            rows.extend(outcome.rows);
        }

        record_report_metrics(&report);
        span.record("rows", report.rows);
        span.record("quarantined", report.quarantined.len());

        if report.failure_rate() > self.config.failure_threshold {
            hbmd_obs::incr("collect.degraded");
            return Err(PerfError::DegradedCollection {
                failed: report.quarantined.len(),
                total: report.samples_total,
                threshold: self.config.failure_threshold,
            });
        }
        Ok(Collection {
            dataset: rows.into_iter().collect(),
            report,
        })
    }

    /// Collect, returning the dataset and report as separate values.
    ///
    /// # Errors
    ///
    /// See [`Collector::collect`].
    #[deprecated(
        since = "0.2.0",
        note = "use `Collector::collect`, which returns a `Collection`"
    )]
    pub fn collect_with_report(
        &self,
        catalog: &SampleCatalog,
    ) -> Result<(HpcDataset, CollectionReport), PerfError> {
        self.collect(catalog).map(Collection::into_parts)
    }

    /// Collect and keep only the dataset — the shape of the original
    /// panicking API.
    ///
    /// # Panics
    ///
    /// Panics when collection fails (e.g. degrades past
    /// [`CollectorConfig::failure_threshold`]); use
    /// [`Collector::collect`] to handle failures.
    #[deprecated(
        since = "0.2.0",
        note = "use `Collector::collect` and read `.dataset` from the `Collection`"
    )]
    pub fn collect_dataset(&self, catalog: &SampleCatalog) -> HpcDataset {
        match self.collect(catalog) {
            Ok(collection) => collection.dataset,
            Err(e) => panic!("collection failed: {e}"),
        }
    }

    /// Collect one sample's rows through the single-attempt path (no
    /// retry) — the building block the resilient path wraps.
    pub fn collect_one(&self, sample: &Sample) -> Vec<DataRow> {
        self.collect_attempt(sample, 0).0
    }

    /// One attempt: inject faults (if configured) keyed on the sample
    /// and attempt number, then sample and label. Returns the attempt's
    /// fault tally alongside the rows.
    fn collect_attempt(&self, sample: &Sample, attempt: u32) -> (Vec<DataRow>, FaultCounts) {
        let mut injector = self
            .config
            .fault
            .as_ref()
            .filter(|plan| !plan.is_none())
            .map(|plan| FaultInjector::for_sample(plan, sample.id(), attempt));
        if let Some(inj) = injector.as_mut() {
            if inj.rolls_worker_panic() {
                panic!("{INJECTED_PANIC_PREFIX} while collecting {:?}", sample.id());
            }
        }

        let sampler = Sampler::new(self.config.sampler.clone()).expect("validated");
        let class = match &self.config.labeler {
            Some(labeler) => labeler.label(sample).label,
            None => sample.class(),
        };
        let mut windows = sampler.collect_sample(sample);
        let mut counts = FaultCounts::default();
        if let Some(inj) = injector.as_mut() {
            windows = inj.apply(windows);
            counts = *inj.counts();
        }
        let rows = windows
            .into_iter()
            .map(|features| DataRow {
                sample: sample.id(),
                class,
                features,
            })
            .collect();
        (rows, counts)
    }

    /// Attempt-with-retry loop for one sample; never panics. Opens a
    /// `collect.sample` span (parentless on `par_map`-style worker
    /// threads — the logical parent lives on the coordinating thread).
    fn collect_resilient(&self, sample: &Sample) -> SampleOutcome {
        let mut span = hbmd_obs::span!("collect.sample", sample = sample.id().0);
        let outcome = self.collect_resilient_inner(sample);
        span.record("rows", outcome.rows.len());
        span.record("retries", outcome.retries);
        span.record("quarantined", outcome.quarantined.is_some());
        outcome
    }

    fn collect_resilient_inner(&self, sample: &Sample) -> SampleOutcome {
        let attempts = self.config.max_retries + 1;
        let mut retries = 0;
        let mut faults = FaultCounts::default();
        for attempt in 0..attempts {
            if attempt > 0 {
                retries += 1;
                if self.config.retry_backoff_ms > 0 {
                    let backoff = self.config.retry_backoff_ms << (attempt - 1);
                    std::thread::sleep(Duration::from_millis(backoff));
                }
            }
            let outcome =
                panic::catch_unwind(AssertUnwindSafe(|| self.collect_attempt(sample, attempt)));
            match outcome {
                Ok((rows, attempt_faults)) => {
                    faults.merge(&attempt_faults);
                    return SampleOutcome {
                        rows,
                        retries,
                        faults,
                        quarantined: None,
                    };
                }
                // A panicking attempt rolls the worker-panic fault
                // before touching the PMU, so its only fault IS the
                // panic; the injector's own tally dies with the stack.
                Err(_) => {
                    faults.worker_panics += 1;
                }
            }
        }
        SampleOutcome {
            rows: Vec::new(),
            retries,
            faults,
            quarantined: Some(sample.id()),
        }
    }
}

/// Record one collection run's exact, deterministic-domain metrics into
/// the installed observability context. Every value derives from the
/// report (itself thread-count-independent), so the counters are too.
fn record_report_metrics(report: &CollectionReport) {
    hbmd_obs::add("collect.samples", report.samples_total as u64);
    hbmd_obs::add("windows_collected", report.rows as u64);
    hbmd_obs::add("collect.retries", report.retries as u64);
    hbmd_obs::add("collect.quarantined", report.quarantined.len() as u64);
    for (kind, count) in report.faults.per_kind() {
        if count > 0 {
            hbmd_obs::counter_with("faults_injected", &[("kind", kind)]).add(count as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbmd_malware::AppClass;

    /// Build + run a collector, panicking on any failure — the shape
    /// most tests want.
    fn collect(config: CollectorConfig, catalog: &SampleCatalog) -> Collection {
        Collector::new(config)
            .expect("valid config")
            .collect(catalog)
            .expect("collection under threshold")
    }

    #[test]
    fn collects_rows_for_every_sample() {
        let catalog = SampleCatalog::scaled(0.01, 5);
        let dataset = collect(CollectorConfig::fast(), &catalog).dataset;
        assert_eq!(dataset.len(), catalog.len() * 4);
        // Every class present.
        let counts = dataset.class_counts();
        for class in AppClass::ALL {
            assert!(counts[class.index()] > 0, "{class} missing");
        }
    }

    #[test]
    fn parallel_collection_matches_sequential() {
        let catalog = SampleCatalog::scaled(0.01, 5);
        let sequential = collect(CollectorConfig::fast(), &catalog);
        let parallel = collect(
            CollectorConfig {
                threads: 4,
                ..CollectorConfig::fast()
            },
            &catalog,
        );
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn labeler_can_introduce_label_noise() {
        let catalog = SampleCatalog::scaled(0.02, 5);
        let truth = collect(CollectorConfig::fast(), &catalog).dataset;
        let labelled = collect(
            CollectorConfig {
                labeler: Some(MultiEngineLabeler::new(10, 0.5, 0.05, 1)),
                ..CollectorConfig::fast()
            },
            &catalog,
        )
        .dataset;
        assert_eq!(truth.len(), labelled.len());
        let disagreements = truth
            .rows()
            .iter()
            .zip(labelled.rows())
            .filter(|(a, b)| a.class != b.class)
            .count();
        assert!(disagreements > 0, "a sloppy labeller should disagree");
    }

    #[test]
    fn new_rejects_bad_configs() {
        let mut config = CollectorConfig::fast();
        config.threads = 0;
        assert!(Collector::new(config).is_err());

        let mut config = CollectorConfig::fast();
        config.sampler.windows_per_sample = 0;
        assert!(Collector::new(config).is_err());

        let mut config = CollectorConfig::fast();
        config.failure_threshold = 1.5;
        assert!(Collector::new(config).is_err());

        let mut plan = FaultPlan::none();
        plan.drop_window = 2.0;
        let config = CollectorConfig::faulted(plan);
        assert!(Collector::new(config).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_new_api() {
        let catalog = SampleCatalog::scaled(0.01, 5);
        let collection = collect(CollectorConfig::fast(), &catalog);

        let shim = Collector::try_new(CollectorConfig::fast()).expect("valid config");
        let (dataset, report) = shim.collect_with_report(&catalog).expect("clean");
        assert_eq!(dataset, collection.dataset);
        assert_eq!(report, collection.report);
        assert_eq!(shim.collect_dataset(&catalog), collection.dataset);
    }

    #[test]
    fn different_classes_produce_separable_rows() {
        // The whole premise of the paper: class signatures must be
        // visible in the collected features. Check the class-mean
        // store counts differ strongly between worm and backdoor.
        use hbmd_events::HpcEvent;
        let catalog =
            SampleCatalog::with_counts(&[(AppClass::Worm, 6), (AppClass::Backdoor, 6)], 11);
        let dataset = collect(CollectorConfig::fast(), &catalog).dataset;
        let mean = |class: AppClass| {
            let rows: Vec<f64> = dataset
                .of_class(class)
                .map(|r| r.features[HpcEvent::L1DcacheStores])
                .collect();
            rows.iter().sum::<f64>() / rows.len() as f64
        };
        let worm = mean(AppClass::Worm);
        let backdoor = mean(AppClass::Backdoor);
        assert!(
            worm > 2.0 * backdoor,
            "worm stores {worm} vs backdoor {backdoor}"
        );
    }

    #[test]
    fn clean_collection_reports_clean() {
        let catalog = SampleCatalog::scaled(0.01, 5);
        let Collection { dataset, report } = collect(CollectorConfig::fast(), &catalog);
        assert_eq!(report.rows, dataset.len());
        assert_eq!(report.samples_total, catalog.len());
        assert!(report.is_clean());
        assert_eq!(report.failure_rate(), 0.0);
    }

    #[test]
    fn faulted_collection_completes_and_reports() {
        let catalog = SampleCatalog::scaled(0.02, 5);
        let plan = FaultPlan::uniform(0.1, 21);
        let Collection { dataset, report } = collect(CollectorConfig::faulted(plan), &catalog);
        assert!(!dataset.is_empty());
        assert!(report.faults.total() > 0, "faults should have fired");
        // Quarantined samples contributed no rows.
        for id in &report.quarantined {
            assert!(dataset.rows().iter().all(|r| r.sample != *id));
        }
    }

    #[test]
    fn worker_panics_are_retried_not_fatal() {
        let catalog = SampleCatalog::scaled(0.02, 5);
        // Panic-prone but retried: each attempt re-rolls, so most
        // samples survive within 3 attempts.
        let plan = FaultPlan::panics_only(0.3, 13);
        let Collection { dataset, report } = collect(
            CollectorConfig {
                threads: 4,
                ..CollectorConfig::faulted(plan)
            },
            &catalog,
        );
        assert!(report.faults.worker_panics > 0, "panics should have fired");
        assert!(report.retries > 0, "panicked samples should be retried");
        assert!(!dataset.is_empty());
        assert!(report.failure_rate() < 0.5);
    }

    #[test]
    fn faulted_collection_is_deterministic_across_thread_counts() {
        let catalog = SampleCatalog::scaled(0.02, 5);
        let plan = FaultPlan::uniform(0.15, 77);
        let run = |threads: usize| {
            collect(
                CollectorConfig {
                    threads,
                    ..CollectorConfig::faulted(plan.clone())
                },
                &catalog,
            )
        };
        let sequential = run(1);
        let parallel = run(4);
        // Debug-compare the datasets: starved readings are NaN, and
        // NaN != NaN under `PartialEq` (f64 Debug round-trips bits).
        assert_eq!(
            format!("{:?}", sequential.dataset),
            format!("{:?}", parallel.dataset)
        );
        assert_eq!(sequential.report, parallel.report);
    }

    #[test]
    fn hopeless_collection_degrades_with_typed_error() {
        let catalog = SampleCatalog::scaled(0.01, 5);
        let plan = FaultPlan::panics_only(1.0, 3); // every attempt dies
        let result = Collector::new(CollectorConfig::faulted(plan))
            .expect("valid config")
            .collect(&catalog);
        match result {
            Err(PerfError::DegradedCollection { failed, total, .. }) => {
                assert_eq!(failed, total);
            }
            other => panic!("expected DegradedCollection, got {other:?}"),
        }
    }
}
