//! Reproducibility guarantees: the entire pipeline is a pure function
//! of its seeds — the property every experiment in EXPERIMENTS.md
//! relies on.

use hbmd::core::{ClassifierKind, DetectorBuilder, FeaturePlan};
use hbmd::malware::SampleCatalog;
use hbmd::perf::{Collector, CollectorConfig};

#[test]
fn collection_is_a_pure_function_of_seeds() {
    let run = || {
        let catalog = SampleCatalog::scaled(0.02, 123);
        Collector::new(CollectorConfig::fast())
            .expect("config")
            .collect(&catalog)
            .expect("collect")
            .dataset
    };
    assert_eq!(run(), run());
}

#[test]
fn different_catalog_seeds_give_different_data() {
    let collect = |seed| {
        let catalog = SampleCatalog::scaled(0.02, seed);
        Collector::new(CollectorConfig::fast())
            .expect("config")
            .collect(&catalog)
            .expect("collect")
            .dataset
    };
    assert_ne!(collect(1), collect(2));
}

#[test]
fn feature_plans_are_stable() {
    let catalog = SampleCatalog::scaled(0.02, 7);
    let dataset = Collector::new(CollectorConfig::fast())
        .expect("config")
        .collect(&catalog)
        .expect("collect")
        .dataset;
    let a = FeaturePlan::fit(&dataset).expect("plan");
    let b = FeaturePlan::fit(&dataset).expect("plan");
    assert_eq!(a, b);
}

#[test]
fn trained_detectors_agree_across_runs() {
    let catalog = SampleCatalog::scaled(0.03, 55);
    let dataset = Collector::new(CollectorConfig::fast())
        .expect("config")
        .collect(&catalog)
        .expect("collect")
        .dataset;
    let train = || {
        DetectorBuilder::new()
            .classifier(ClassifierKind::Mlp)
            .seed(9)
            .train_binary(&dataset)
            .expect("train")
    };
    let a = train();
    let b = train();
    assert_eq!(
        a.evaluation().accuracy(),
        b.evaluation().accuracy(),
        "identical training runs, identical evaluations"
    );
    for row in dataset.rows().iter().take(50) {
        assert_eq!(a.classify(&row.features), b.classify(&row.features));
    }
}

#[test]
fn split_seed_changes_the_split_not_the_schema() {
    let catalog = SampleCatalog::scaled(0.02, 7);
    let dataset = Collector::new(CollectorConfig::fast())
        .expect("config")
        .collect(&catalog)
        .expect("collect")
        .dataset;
    let (train_a, test_a) = dataset.split(0.7, 1);
    let (train_b, test_b) = dataset.split(0.7, 2);
    assert_eq!(train_a.len() + test_a.len(), train_b.len() + test_b.len());
    assert_ne!(train_a, train_b);
}
