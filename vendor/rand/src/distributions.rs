//! Distributions: [`Standard`], [`WeightedIndex`], and the uniform
//! range samplers behind [`Rng::gen_range`](crate::Rng::gen_range).

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: full-width integers, `[0, 1)`
/// floats, fair bools.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform range sampling (`gen_range` support).
pub mod uniform {
    use super::super::RngCore;

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Sample from the half-open range `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Sample from the closed range `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    /// Range-like arguments accepted by `gen_range`.
    pub trait SampleRange<T> {
        /// Draw one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample empty range");
            T::sample_single_inclusive(low, high, rng)
        }
    }

    macro_rules! uniform_int {
        ($ty:ty, $uty:ty, $large:ty, $wide:ty, $gen:ident) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    let range = high.wrapping_sub(low) as $uty as $large;
                    // Lemire: accept while the low product half falls in
                    // the unbiased zone.
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.$gen() as $large;
                        let m = (v as $wide) * (range as $wide);
                        let lo = m as $large;
                        let hi = (m >> <$large>::BITS) as $large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    let range = (high.wrapping_sub(low) as $uty as $large).wrapping_add(1);
                    if range == 0 {
                        // The full integer domain: every word is valid.
                        return rng.$gen() as $ty;
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v = rng.$gen() as $large;
                        let m = (v as $wide) * (range as $wide);
                        let lo = m as $large;
                        let hi = (m >> <$large>::BITS) as $large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int!(u32, u32, u32, u64, next_u32);
    uniform_int!(i32, u32, u32, u64, next_u32);
    uniform_int!(u64, u64, u64, u128, next_u64);
    uniform_int!(i64, u64, u64, u128, next_u64);
    uniform_int!(usize, usize, u64, u128, next_u64);
    uniform_int!(u8, u8, u32, u64, next_u32);
    uniform_int!(u16, u16, u32, u64, next_u32);

    macro_rules! uniform_float {
        ($ty:ty, $bits_to_discard:expr, $exponent_bits:expr, $gen:ident) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    let scale = high - low;
                    // Mantissa bits placed in [1, 2), shifted to [0, 1).
                    let value1_2 =
                        <$ty>::from_bits($exponent_bits | (rng.$gen() >> $bits_to_discard));
                    let value0_1 = value1_2 - 1.0;
                    value0_1 * scale + low
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    Self::sample_single(low, high, rng)
                }
            }
        };
    }

    uniform_float!(f64, 12u32, 1023u64 << 52, next_u64);
    uniform_float!(f32, 9u32, 127u32 << 23, next_u32);
}

/// Distribution over `0..weights.len()` proportional to the weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

/// Errors constructing a [`WeightedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were supplied.
    NoItem,
    /// A weight was negative or non-finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl core::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

impl WeightedIndex {
    /// Build from an iterator of non-negative `f64` weights.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedError`] when empty, when any weight is
    /// negative or non-finite, or when all weights are zero.
    pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
    where
        I: IntoIterator,
        I::Item: core::borrow::Borrow<f64>,
    {
        use core::borrow::Borrow;
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !(w.is_finite() && w >= 0.0) {
                return Err(WeightedError::InvalidWeight);
            }
            cumulative.push(total);
            total += w;
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        // The stored prefix sums exclude the final total; index i wins
        // when the draw lands in [cumulative[i], cumulative[i+1]).
        cumulative.remove(0);
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let chosen = uniform::SampleUniform::sample_single(0.0, self.total, rng);
        self.cumulative.partition_point(|&w| w <= chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn weighted_index_respects_weights() {
        let weights = vec![0.0, 1.0, 3.0];
        let dist = WeightedIndex::new(&weights).expect("valid weights");
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0usize; 3];
        for _ in 0..4_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0, "zero weight never drawn");
        assert!(counts[2] > 2 * counts[1], "{counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert_eq!(
            WeightedIndex::new(Vec::<f64>::new()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([1.0, -2.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
    }
}
