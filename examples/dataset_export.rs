//! Export a collected HPC dataset in every interchange format the
//! reference pipeline used: per-sample perf-stat traces, a combined
//! CSV, and WEKA ARFF (nominal and numeric-class variants).
//!
//! ```text
//! cargo run --release --example dataset_export [output-dir]
//! ```

use std::fs::{self, File};
use std::io::BufWriter;
use std::path::PathBuf;

use hbmd::malware::SampleCatalog;
use hbmd::perf::{arff, csv, trace_dir, Collector, CollectorConfig, Sampler, SamplerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("hbmd-export"));
    fs::create_dir_all(&out_dir)?;

    let catalog = SampleCatalog::scaled(0.02, 7);
    println!("collecting {} samples...", catalog.len());

    // 1. Per-sample perf-stat text traces (the raw collection layout).
    let sampler = Sampler::new(SamplerConfig::paper())?;
    let traces_dir = out_dir.join("traces");
    let paths = trace_dir::write_sample_traces(&traces_dir, &catalog, &sampler)?;
    println!(
        "wrote {} trace files under {}",
        paths.len(),
        traces_dir.display()
    );

    // 2. Combine the trace files back into a dataset (the paper's
    //    text-files-to-CSV step), then write the combined CSV.
    let dataset = trace_dir::combine_traces(&traces_dir)?;
    let csv_path = out_dir.join("combined.csv");
    csv::write_csv(BufWriter::new(File::create(&csv_path)?), &dataset, true)?;
    println!("wrote {} rows to {}", dataset.len(), csv_path.display());

    // 3. WEKA ARFF, nominal classes.
    let arff_path = out_dir.join("hpc-malware.arff");
    arff::write_arff(
        BufWriter::new(File::create(&arff_path)?),
        "hpc-malware",
        &dataset,
    )?;
    println!("wrote {}", arff_path.display());

    // 4. The numeric 0/1-class variant some classifiers need.
    let numeric_path = out_dir.join("hpc-malware-numeric.arff");
    arff::write_arff_numeric_class(
        BufWriter::new(File::create(&numeric_path)?),
        "hpc-malware-binary",
        &dataset,
    )?;
    println!("wrote {}", numeric_path.display());

    // Sanity: the direct collector and the trace-directory flow agree.
    let direct = Collector::new(CollectorConfig::paper())
        .expect("config")
        .collect(&catalog)
        .expect("collect")
        .dataset;
    assert_eq!(direct.len(), dataset.len());
    println!(
        "\ntrace-directory flow matches direct collection ({} rows)",
        direct.len()
    );
    Ok(())
}
