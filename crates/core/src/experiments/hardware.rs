//! Figures 14–16: FPGA area, latency and accuracy-per-area of the
//! classifier suite, with 8- and 4-feature PCA-reduced inputs.

use hbmd_fpga::{synthesize, HwReport, SynthConfig};
use hbmd_ml::par::try_par_map;
use hbmd_ml::Evaluation;
use serde::{Deserialize, Serialize};

use crate::convert::to_binary_dataset;
use crate::error::CoreError;
use crate::experiments::cache::CollectCache;
use crate::experiments::ExperimentConfig;
use crate::features::{FeaturePlan, FeatureSet};
use crate::suite::ClassifierKind;

/// One classifier's hardware-vs-accuracy result at one feature count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwarePoint {
    /// Feature count the model was trained with.
    pub features: usize,
    /// Held-out accuracy.
    pub accuracy: f64,
    /// Synthesis report.
    pub report: HwReport,
}

impl HardwarePoint {
    /// Figure 16's figure of merit.
    pub fn accuracy_per_area(&self) -> f64 {
        self.report.accuracy_per_area(self.accuracy)
    }
}

/// One classifier's row across the 8- and 4-feature design points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareRow {
    /// Classifier scheme.
    pub scheme: ClassifierKind,
    /// PCA top-8 design point.
    pub top8: HardwarePoint,
    /// PCA top-4 design point.
    pub top4: HardwarePoint,
}

/// Run the Figures 14–16 experiment: for every scheme of the binary
/// suite, train with top-8 and top-4 features, evaluate, and synthesise
/// both trained models.
///
/// # Errors
///
/// Propagates collection, training, and synthesis errors.
pub fn comparison(
    config: &ExperimentConfig,
    synth: &SynthConfig,
) -> Result<Vec<HardwareRow>, CoreError> {
    comparison_with(CollectCache::global(), config, synth)
}

/// [`comparison`] against an explicit [`CollectCache`]; the two
/// feature-reduced train/test pairs are materialized once and the
/// eight schemes run in parallel on `config.threads` workers.
///
/// # Errors
///
/// Propagates collection, training, and synthesis errors.
pub fn comparison_with(
    cache: &CollectCache,
    config: &ExperimentConfig,
    synth: &SynthConfig,
) -> Result<Vec<HardwareRow>, CoreError> {
    let collection = cache.collect(config)?;
    let (train_hpc, test_hpc) = collection.dataset.split(0.7, config.split_seed);
    let plan = FeaturePlan::fit(&train_hpc)?;
    let train_full = to_binary_dataset(&train_hpc);
    let test_full = to_binary_dataset(&test_hpc);

    let mut splits = Vec::with_capacity(2);
    for k in [8usize, 4] {
        let indices = plan.resolve(FeatureSet::Top(k))?;
        splits.push((
            k,
            train_full.select_features(&indices)?,
            test_full.select_features(&indices)?,
        ));
    }

    let schemes = ClassifierKind::binary_suite();
    try_par_map(&schemes, config.threads, |_, &scheme| {
        let point = |slot: usize| -> Result<HardwarePoint, CoreError> {
            let (k, train, test) = &splits[slot];
            let mut model = scheme.instantiate();
            hbmd_ml::fit_timed(&mut model, train)?;
            let accuracy = Evaluation::of(&model, test).accuracy();
            let report = synthesize(&model.datapath()?, synth);
            Ok(HardwarePoint {
                features: *k,
                accuracy,
                report,
            })
        };
        Ok::<HardwareRow, CoreError>(HardwareRow {
            scheme,
            top8: point(0)?,
            top4: point(1)?,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<HardwareRow> {
        comparison(&ExperimentConfig::fast(), &SynthConfig::default()).expect("experiment")
    }

    fn find(rows: &[HardwareRow], scheme: ClassifierKind) -> &HardwareRow {
        rows.iter().find(|r| r.scheme == scheme).expect("present")
    }

    #[test]
    fn every_scheme_synthesises_both_points() {
        let rows = rows();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.top8.report.area_units() > 0.0, "{}", row.scheme);
            assert!(row.top4.report.area_units() > 0.0, "{}", row.scheme);
            assert_eq!(row.top8.features, 8);
            assert_eq!(row.top4.features, 4);
        }
    }

    #[test]
    fn figure_14_shape_rules_are_smaller_than_networks() {
        let rows = rows();
        let one_r = find(&rows, ClassifierKind::OneR);
        let jrip = find(&rows, ClassifierKind::JRip);
        let mlp = find(&rows, ClassifierKind::Mlp);
        assert!(one_r.top8.report.area_units() < mlp.top8.report.area_units() / 5.0);
        assert!(jrip.top8.report.area_units() < mlp.top8.report.area_units() / 5.0);
    }

    #[test]
    fn figure_15_shape_rules_are_faster_than_networks() {
        let rows = rows();
        let one_r = find(&rows, ClassifierKind::OneR);
        let mlp = find(&rows, ClassifierKind::Mlp);
        assert!(one_r.top8.report.latency_cycles < mlp.top8.report.latency_cycles);
    }

    #[test]
    fn figure_16_shape_one_r_and_jrip_win_accuracy_per_area() {
        let rows = rows();
        let champions = [
            find(&rows, ClassifierKind::OneR).top8.accuracy_per_area(),
            find(&rows, ClassifierKind::JRip).top8.accuracy_per_area(),
        ];
        let best_champion = champions.iter().cloned().fold(0.0, f64::max);
        for heavy in [
            ClassifierKind::Mlp,
            ClassifierKind::Logistic,
            ClassifierKind::Svm,
            ClassifierKind::NaiveBayes,
        ] {
            let contender = find(&rows, heavy).top8.accuracy_per_area();
            assert!(
                best_champion > contender,
                "{heavy} should lose accuracy/area: {contender} vs {best_champion}"
            );
        }
    }

    #[test]
    fn fewer_features_shrink_multiplier_heavy_designs() {
        let rows = rows();
        for scheme in [
            ClassifierKind::Logistic,
            ClassifierKind::Svm,
            ClassifierKind::Mlp,
            ClassifierKind::NaiveBayes,
        ] {
            let row = find(&rows, scheme);
            assert!(
                row.top4.report.area_units() < row.top8.report.area_units(),
                "{scheme}: 4-feature design should be smaller"
            );
        }
    }
}
