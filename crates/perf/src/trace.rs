//! perf-stat-style interval traces.
//!
//! The reference pipeline stored each sample's HPC readings as a text
//! file (one `perf stat -I 10` run per sample) before combining them
//! into CSV. This module reproduces that interchange: a header line
//! naming the sample and its class, then one line per `(interval,
//! event)` pair:
//!
//! ```text
//! # perf stat -I 10 -- sample-00042 (trojan)
//!     10.000    123456.00    branch-instructions    (50.00%)
//!     10.000       789.00    branch-misses          (50.00%)
//!     ...
//!     20.000    124001.00    branch-instructions    (50.00%)
//! ```

use std::io::{BufRead, Write};

use hbmd_events::{FeatureVector, HpcEvent};
use hbmd_malware::AppClass;

use crate::error::PerfError;

/// A parsed per-sample trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// Sample name from the header (e.g. `sample-00042`).
    pub sample_name: String,
    /// Class from the header.
    pub class: AppClass,
    /// One feature vector per sampling interval, in time order.
    pub windows: Vec<FeatureVector>,
}

/// The sampling period the reference setup used, in milliseconds.
pub const SAMPLING_PERIOD_MS: f64 = 10.0;

/// Write one sample's windows as a perf-stat-style trace.
///
/// A `&mut` writer can be passed (`write_trace(&mut file, ..)`).
///
/// # Errors
///
/// Propagates any I/O error from `out`.
pub fn write_trace<W: Write>(
    mut out: W,
    sample_name: &str,
    class: AppClass,
    windows: &[FeatureVector],
    multiplex_share: f64,
) -> Result<(), PerfError> {
    writeln!(out, "# perf stat -I 10 -- {sample_name} ({class})")?;
    for (w, fv) in windows.iter().enumerate() {
        let time_ms = (w as f64 + 1.0) * SAMPLING_PERIOD_MS;
        for (event, value) in fv.iter() {
            writeln!(
                out,
                "{:>12.3}  {:>16.2}  {:<24}  ({:.2}%)",
                time_ms,
                value,
                event.name(),
                multiplex_share * 100.0
            )?;
        }
    }
    Ok(())
}

/// Parse a trace previously produced by [`write_trace`].
///
/// A `&mut` reader can be passed (`parse_trace(&mut reader)`).
///
/// # Errors
///
/// Returns [`PerfError::ParseTrace`] on a malformed header, an unknown
/// event name, a non-numeric value, or an interval that does not cover
/// all 16 events.
pub fn parse_trace<R: BufRead>(reader: R) -> Result<TraceFile, PerfError> {
    let mut lines = reader.lines().enumerate();

    let header = lines.next().ok_or_else(|| trace_err(1, "empty trace"))?.1?;
    let header = header.trim();
    let rest = header
        .strip_prefix("# perf stat -I 10 -- ")
        .ok_or_else(|| trace_err(1, "missing perf header"))?;
    let (sample_name, class_part) = rest
        .split_once(" (")
        .ok_or_else(|| trace_err(1, "header missing class"))?;
    let class_name = class_part
        .strip_suffix(')')
        .ok_or_else(|| trace_err(1, "unterminated class"))?;
    let class: AppClass = class_name
        .parse()
        .map_err(|e| trace_err(1, &format!("{e}")))?;

    let mut windows: Vec<FeatureVector> = Vec::new();
    let mut current_time = f64::NEG_INFINITY;
    let mut current = vec![0.0f64; HpcEvent::COUNT];
    let mut seen = 0usize;

    for (index, line) in lines {
        let line_no = index + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let time: f64 = parts
            .next()
            .ok_or_else(|| trace_err(line_no, "missing time"))?
            .parse()
            .map_err(|_| trace_err(line_no, "bad time"))?;
        let value: f64 = parts
            .next()
            .ok_or_else(|| trace_err(line_no, "missing value"))?
            .parse()
            .map_err(|_| trace_err(line_no, "bad value"))?;
        let event_name = parts
            .next()
            .ok_or_else(|| trace_err(line_no, "missing event"))?;
        let event: HpcEvent = event_name
            .parse()
            .map_err(|_| trace_err(line_no, &format!("unknown event `{event_name}`")))?;

        if time != current_time {
            if seen > 0 {
                if seen != HpcEvent::COUNT {
                    return Err(trace_err(
                        line_no,
                        &format!("interval covered {seen} of 16 events"),
                    ));
                }
                windows.push(FeatureVector::from_slice(&current).expect("16 values"));
            }
            current_time = time;
            current = vec![0.0; HpcEvent::COUNT];
            seen = 0;
        }
        current[event.index()] = value;
        seen += 1;
    }
    if seen > 0 {
        if seen != HpcEvent::COUNT {
            return Err(trace_err(
                0,
                &format!("final interval covered {seen} of 16 events"),
            ));
        }
        windows.push(FeatureVector::from_slice(&current).expect("16 values"));
    }

    Ok(TraceFile {
        sample_name: sample_name.to_owned(),
        class,
        windows,
    })
}

fn trace_err(line: usize, message: &str) -> PerfError {
    PerfError::ParseTrace {
        line,
        message: message.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn windows() -> Vec<FeatureVector> {
        (0..3)
            .map(|w| {
                let values: Vec<f64> = (0..HpcEvent::COUNT)
                    .map(|i| (w * 100 + i) as f64 * 1.5)
                    .collect();
                FeatureVector::from_slice(&values).expect("16")
            })
            .collect()
    }

    #[test]
    fn round_trip() {
        let original = windows();
        let mut buffer = Vec::new();
        write_trace(&mut buffer, "sample-00007", AppClass::Virus, &original, 0.5).expect("write");
        let parsed = parse_trace(BufReader::new(buffer.as_slice())).expect("parse");
        assert_eq!(parsed.sample_name, "sample-00007");
        assert_eq!(parsed.class, AppClass::Virus);
        assert_eq!(parsed.windows.len(), 3);
        for (a, b) in parsed.windows.iter().zip(&original) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn missing_header_is_an_error() {
        let text = "10.0 5 branch-instructions (100%)\n";
        let err = parse_trace(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn unknown_event_is_an_error() {
        let text = "# perf stat -I 10 -- s (worm)\n10.0 5 quantum-flux (100%)\n";
        let err = parse_trace(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("quantum-flux"));
    }

    #[test]
    fn short_interval_is_an_error() {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, "s", AppClass::Worm, &windows(), 1.0).expect("write");
        let mut text = String::from_utf8(buffer).expect("utf8");
        // Drop the last line of the final interval.
        text = text
            .trim_end()
            .rsplit_once('\n')
            .map(|(a, _)| a.to_owned())
            .expect("lines");
        let err = parse_trace(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("of 16 events"), "{err}");
    }

    #[test]
    fn empty_trace_is_an_error() {
        let err = parse_trace(BufReader::new("".as_bytes())).unwrap_err();
        assert!(err.to_string().contains("trace"));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let mut buffer = Vec::new();
        write_trace(&mut buffer, "s", AppClass::Benign, &windows()[..1], 1.0).expect("write");
        let mut text = String::from_utf8(buffer).expect("utf8");
        text.push_str("\n# trailing comment\n\n");
        let parsed = parse_trace(BufReader::new(text.as_bytes())).expect("parse");
        assert_eq!(parsed.windows.len(), 1);
    }
}
