use hbmd_malware::{MultiEngineLabeler, Sample, SampleCatalog};
use serde::{Deserialize, Serialize};

use crate::dataset::{DataRow, HpcDataset};
use crate::error::PerfError;
use crate::sampler::{Sampler, SamplerConfig};

/// Configuration for whole-catalog collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectorConfig {
    /// Per-sample observation setup.
    pub sampler: SamplerConfig,
    /// Worker threads (1 = sequential). Collection is embarrassingly
    /// parallel across samples; results are returned in catalog order
    /// regardless of thread count.
    pub threads: usize,
    /// Label rows with a multi-engine labeller instead of ground truth,
    /// introducing realistic label noise.
    pub labeler: Option<MultiEngineLabeler>,
}

impl CollectorConfig {
    /// The reference setup on all available parallelism.
    pub fn paper() -> CollectorConfig {
        CollectorConfig {
            sampler: SamplerConfig::paper(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            labeler: None,
        }
    }

    /// A reduced setup for tests: tiny machine, 4 short windows,
    /// sequential.
    pub fn fast() -> CollectorConfig {
        CollectorConfig {
            sampler: SamplerConfig::fast(),
            threads: 1,
            labeler: None,
        }
    }
}

impl Default for CollectorConfig {
    fn default() -> CollectorConfig {
        CollectorConfig::paper()
    }
}

/// Runs the full collection pipeline over a [`SampleCatalog`]: every
/// sample is launched in its container, sampled for the configured
/// number of windows, and its windows appended as dataset rows.
///
/// # Examples
///
/// ```
/// use hbmd_malware::SampleCatalog;
/// use hbmd_perf::{Collector, CollectorConfig};
///
/// let catalog = SampleCatalog::scaled(0.01, 3);
/// let dataset = Collector::new(CollectorConfig::fast()).collect(&catalog);
/// assert_eq!(dataset.len(), catalog.len() * 4);
/// ```
#[derive(Debug, Clone)]
pub struct Collector {
    config: CollectorConfig,
}

impl Collector {
    /// Build a collector.
    ///
    /// # Panics
    ///
    /// Panics when the sampler configuration is invalid or `threads` is
    /// zero; collection setups are authored constants.
    pub fn new(config: CollectorConfig) -> Collector {
        if let Err(e) = config.sampler.validate() {
            panic!("invalid collector config: {e}");
        }
        assert!(config.threads > 0, "threads must be non-zero");
        Collector { config }
    }

    /// Fallible constructor for dynamically-built configurations.
    ///
    /// # Errors
    ///
    /// Returns [`PerfError::Config`] under the same conditions
    /// [`Collector::new`] panics.
    pub fn try_new(config: CollectorConfig) -> Result<Collector, PerfError> {
        config.sampler.validate()?;
        if config.threads == 0 {
            return Err(PerfError::Config("threads must be non-zero".to_owned()));
        }
        Ok(Collector { config })
    }

    /// The configuration this collector runs with.
    pub fn config(&self) -> &CollectorConfig {
        &self.config
    }

    /// Collect the whole catalog into a labelled dataset, in catalog
    /// order.
    pub fn collect(&self, catalog: &SampleCatalog) -> HpcDataset {
        let samples = catalog.samples();
        if self.config.threads <= 1 || samples.len() < 2 {
            return samples
                .iter()
                .flat_map(|s| self.collect_one(s))
                .collect();
        }

        // Parallel: chunk the catalog across scoped worker threads and
        // reassemble in order.
        let threads = self.config.threads.min(samples.len());
        let chunk_len = samples.len().div_ceil(threads);
        let mut chunks: Vec<Vec<DataRow>> = Vec::new();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = samples
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .flat_map(|s| self.collect_one(s))
                            .collect::<Vec<DataRow>>()
                    })
                })
                .collect();
            chunks = handles
                .into_iter()
                .map(|h| h.join().expect("collection worker panicked"))
                .collect();
        })
        .expect("collection scope panicked");
        chunks.into_iter().flatten().collect()
    }

    /// Collect one sample's rows.
    pub fn collect_one(&self, sample: &Sample) -> Vec<DataRow> {
        let sampler = Sampler::new(self.config.sampler.clone()).expect("validated");
        let class = match &self.config.labeler {
            Some(labeler) => labeler.label(sample).label,
            None => sample.class(),
        };
        sampler
            .collect_sample(sample)
            .into_iter()
            .map(|features| DataRow {
                sample: sample.id(),
                class,
                features,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbmd_malware::AppClass;

    #[test]
    fn collects_rows_for_every_sample() {
        let catalog = SampleCatalog::scaled(0.01, 5);
        let dataset = Collector::new(CollectorConfig::fast()).collect(&catalog);
        assert_eq!(dataset.len(), catalog.len() * 4);
        // Every class present.
        let counts = dataset.class_counts();
        for class in AppClass::ALL {
            assert!(counts[class.index()] > 0, "{class} missing");
        }
    }

    #[test]
    fn parallel_collection_matches_sequential() {
        let catalog = SampleCatalog::scaled(0.01, 5);
        let sequential = Collector::new(CollectorConfig::fast()).collect(&catalog);
        let parallel = Collector::new(CollectorConfig {
            threads: 4,
            ..CollectorConfig::fast()
        })
        .collect(&catalog);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn labeler_can_introduce_label_noise() {
        let catalog = SampleCatalog::scaled(0.02, 5);
        let truth = Collector::new(CollectorConfig::fast()).collect(&catalog);
        let labelled = Collector::new(CollectorConfig {
            labeler: Some(MultiEngineLabeler::new(10, 0.5, 0.05, 1)),
            ..CollectorConfig::fast()
        })
        .collect(&catalog);
        assert_eq!(truth.len(), labelled.len());
        let disagreements = truth
            .rows()
            .iter()
            .zip(labelled.rows())
            .filter(|(a, b)| a.class != b.class)
            .count();
        assert!(disagreements > 0, "a sloppy labeller should disagree");
    }

    #[test]
    fn try_new_rejects_bad_configs() {
        let mut config = CollectorConfig::fast();
        config.threads = 0;
        assert!(Collector::try_new(config).is_err());

        let mut config = CollectorConfig::fast();
        config.sampler.windows_per_sample = 0;
        assert!(Collector::try_new(config).is_err());
    }

    #[test]
    fn different_classes_produce_separable_rows() {
        // The whole premise of the paper: class signatures must be
        // visible in the collected features. Check the class-mean
        // store counts differ strongly between worm and backdoor.
        use hbmd_events::HpcEvent;
        let catalog = SampleCatalog::with_counts(
            &[(AppClass::Worm, 6), (AppClass::Backdoor, 6)],
            11,
        );
        let dataset = Collector::new(CollectorConfig::fast()).collect(&catalog);
        let mean = |class: AppClass| {
            let rows: Vec<f64> = dataset
                .of_class(class)
                .map(|r| r.features[HpcEvent::L1DcacheStores])
                .collect();
            rows.iter().sum::<f64>() / rows.len() as f64
        };
        let worm = mean(AppClass::Worm);
        let backdoor = mean(AppClass::Backdoor);
        assert!(
            worm > 2.0 * backdoor,
            "worm stores {worm} vs backdoor {backdoor}"
        );
    }
}
