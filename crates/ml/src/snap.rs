//! A tiny hand-rolled binary codec for model snapshots.
//!
//! The vendored `serde` facade carries no data-format machinery, so
//! checkpointing needs its own wire format. [`Snap`] is deliberately
//! minimal: little-endian fixed-width integers, `f64` as IEEE-754 bit
//! patterns (NaN payloads and signed zeros survive byte-exactly), and
//! length-prefixed sequences. Every encoder is total and every decoder
//! is bounds-checked — a corrupted or truncated buffer yields a typed
//! [`SnapError`], never a panic or an unbounded allocation.
//!
//! The format has no self-description: reader and writer must agree on
//! the schema. Versioning, checksumming, and config binding live one
//! layer up, in `hbmd-core::snapshot`, which frames the payload this
//! module produces.
//!
//! # Examples
//!
//! ```
//! use hbmd_ml::snap::{Snap, SnapReader, SnapWriter};
//!
//! let mut writer = SnapWriter::new();
//! vec![1.5f64, -0.0, f64::NAN].snap(&mut writer);
//! let bytes = writer.into_bytes();
//!
//! let mut reader = SnapReader::new(&bytes);
//! let back = Vec::<f64>::unsnap(&mut reader)?;
//! assert_eq!(back[0], 1.5);
//! assert!(back[1].is_sign_negative());
//! assert!(back[2].is_nan());
//! # Ok::<(), hbmd_ml::snap::SnapError>(())
//! ```

use std::fmt;

/// Decoding failure: the buffer does not hold what the schema expects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapError {
    /// The buffer ended before the value did.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the read needed beyond what remained.
        needed: usize,
    },
    /// The bytes decoded, but the value is structurally impossible
    /// (e.g. a sequence length larger than the remaining buffer, or an
    /// unknown enum tag).
    Invalid(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { offset, needed } => {
                write!(
                    f,
                    "snapshot payload truncated at byte {offset} (needed {needed} more)"
                )
            }
            SnapError::Invalid(what) => write!(f, "snapshot payload invalid: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// An append-only encode buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a little-endian `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its IEEE-754 bit pattern (byte-exact, NaN
    /// payloads preserved).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// A bounds-checked decode cursor over a byte slice.
#[derive(Debug)]
pub struct SnapReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> SnapReader<'a> {
        SnapReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                offset: self.pos,
                needed: n - self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(
            b.try_into().expect("take(4) is 4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(
            b.try_into().expect("take(8) is 8 bytes"),
        ))
    }

    /// Read a `usize` encoded as a little-endian `u64`.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Invalid(format!("usize out of range: {v}")))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a bool; any byte other than 0/1 is invalid.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::Invalid(format!("bool byte {other}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapError> {
        let len = self.get_usize()?;
        if len > self.remaining() {
            return Err(SnapError::Invalid(format!(
                "string length {len} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| SnapError::Invalid(format!("string not UTF-8: {e}")))
    }

    /// Read a sequence length and reject lengths that cannot possibly
    /// fit in the remaining buffer (each element needs at least
    /// `min_element_bytes`), so a corrupted length cannot trigger an
    /// unbounded allocation.
    pub fn get_seq_len(&mut self, min_element_bytes: usize) -> Result<usize, SnapError> {
        let len = self.get_usize()?;
        let floor = min_element_bytes.max(1);
        if len > self.remaining() / floor {
            return Err(SnapError::Invalid(format!(
                "sequence length {len} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }
}

/// A type with a fixed binary snapshot schema.
///
/// `snap` must be total (no panics) and `unsnap` must reject every
/// malformed input with a [`SnapError`]. Round-tripping must be
/// byte-exact: `snap(unsnap(snap(x))) == snap(x)`.
pub trait Snap: Sized {
    /// Append this value's encoding to `w`.
    fn snap(&self, w: &mut SnapWriter);
    /// Decode one value from `r`, advancing the cursor.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] when the buffer is truncated or encodes a
    /// structurally impossible value.
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

impl Snap for u8 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_u8()
    }
}

impl Snap for u32 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_u32()
    }
}

impl Snap for u64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_u64()
    }
}

impl Snap for usize {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_usize()
    }
}

impl Snap for f64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_f64()
    }
}

impl Snap for bool {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_bool(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_bool()
    }
}

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_str(self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_str()
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_usize(self.len());
        for item in self {
            item.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_seq_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unsnap(r)?)),
            other => Err(SnapError::Invalid(format!("Option tag {other}"))),
        }
    }
}

impl<T: Snap> Snap for Box<T> {
    fn snap(&self, w: &mut SnapWriter) {
        (**self).snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Box::new(T::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = SnapWriter::new();
        value.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = T::unsnap(&mut r).expect("roundtrip decode");
        assert!(r.is_done(), "decoder must consume every byte");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("hello, 世界"));
        roundtrip(String::new());
        roundtrip(vec![1.0f64, -0.0, f64::INFINITY, f64::NEG_INFINITY]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some(42u64));
        roundtrip(vec![(1usize, 2.5f64), (3, -4.5)]);
        roundtrip(Box::new(7u32));
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = SnapWriter::new();
        weird.snap(&mut w);
        let bytes = w.into_bytes();
        let back = f64::unsnap(&mut SnapReader::new(&bytes)).expect("decode");
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn truncated_buffers_are_typed_errors() {
        let mut w = SnapWriter::new();
        vec![1u64, 2, 3].snap(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let err = Vec::<u64>::unsnap(&mut SnapReader::new(&bytes[..cut]));
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A u64::MAX sequence length must be rejected up front, not
        // fed to Vec::with_capacity.
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let err = Vec::<u8>::unsnap(&mut SnapReader::new(&bytes));
        assert!(matches!(err, Err(SnapError::Invalid(_))));

        let err = String::unsnap(&mut SnapReader::new(&bytes));
        assert!(matches!(err, Err(SnapError::Invalid(_))));
    }

    #[test]
    fn invalid_tags_are_rejected() {
        let bytes = [2u8];
        assert!(matches!(
            Option::<u8>::unsnap(&mut SnapReader::new(&bytes)),
            Err(SnapError::Invalid(_))
        ));
        assert!(matches!(
            bool::unsnap(&mut SnapReader::new(&bytes)),
            Err(SnapError::Invalid(_))
        ));
    }
}
