//! The on-disk collection layout of the reference pipeline: one
//! perf-stat text file per sample in a directory, later combined into a
//! single CSV.
//!
//! ```text
//! traces/
//! ├── sample-00000.perf.txt
//! ├── sample-00001.perf.txt
//! └── ...
//! combined.csv   (17 columns: 16 counters + class)
//! ```

use std::fs::{self, File};
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

use hbmd_malware::{SampleCatalog, SampleId};

use crate::dataset::{DataRow, HpcDataset};
use crate::error::PerfError;
use crate::sampler::Sampler;
use crate::trace::{parse_trace, write_trace};

/// File extension of per-sample traces.
pub const TRACE_EXTENSION: &str = "perf.txt";

/// Collect `catalog` and write one perf-stat trace file per sample into
/// `dir` (created if absent). Returns the paths written, in catalog
/// order.
///
/// # Errors
///
/// Propagates I/O errors; the directory may be partially written on
/// failure.
pub fn write_sample_traces(
    dir: &Path,
    catalog: &SampleCatalog,
    sampler: &Sampler,
) -> Result<Vec<PathBuf>, PerfError> {
    fs::create_dir_all(dir)?;
    let multiplex_share = match &sampler.config().pmu {
        Some(pmu) => 1.0 / pmu.groups() as f64,
        None => 1.0,
    };
    let mut paths = Vec::with_capacity(catalog.len());
    for sample in catalog.samples() {
        let windows = sampler.collect_sample(sample);
        let path = dir.join(format!("{}.{TRACE_EXTENSION}", sample.id()));
        let file = File::create(&path)?;
        write_trace(
            BufWriter::new(file),
            &sample.id().to_string(),
            sample.class(),
            &windows,
            multiplex_share,
        )?;
        paths.push(path);
    }
    Ok(paths)
}

/// Read every `*.perf.txt` trace in `dir` (sorted by file name) and
/// combine them into one in-memory dataset — the "copy all text files
/// into one CSV" step.
///
/// # Errors
///
/// Propagates I/O errors and [`PerfError::ParseTrace`] for malformed
/// files; returns [`PerfError::Config`] when the directory holds no
/// traces.
pub fn combine_traces(dir: &Path) -> Result<HpcDataset, PerfError> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.ends_with(TRACE_EXTENSION))
                .unwrap_or(false)
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(PerfError::Config(format!(
            "no .{TRACE_EXTENSION} traces in {}",
            dir.display()
        )));
    }

    let mut dataset = HpcDataset::new();
    for path in paths {
        let file = File::open(&path)?;
        let trace = parse_trace(BufReader::new(file))?;
        let sample = parse_sample_name(&trace.sample_name).unwrap_or(SampleId(u32::MAX));
        for features in trace.windows {
            dataset.push(DataRow {
                sample,
                class: trace.class,
                features,
            });
        }
    }
    Ok(dataset)
}

/// Collect a catalog via the trace directory round trip: write every
/// per-sample file, then combine them — byte-for-byte the reference
/// pipeline's flow, useful for verifying the direct in-memory path.
///
/// # Errors
///
/// As [`write_sample_traces`] and [`combine_traces`].
pub fn collect_via_directory(
    dir: &Path,
    catalog: &SampleCatalog,
    sampler: &Sampler,
) -> Result<HpcDataset, PerfError> {
    write_sample_traces(dir, catalog, sampler)?;
    combine_traces(dir)
}

fn parse_sample_name(name: &str) -> Option<SampleId> {
    name.strip_prefix("sample-")
        .and_then(|digits| digits.parse().ok())
        .map(SampleId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::SamplerConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A private scratch directory per test, cleaned up on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(label: &str) -> Scratch {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "hbmd-trace-dir-{label}-{}-{unique}",
                std::process::id()
            ));
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn small_catalog() -> SampleCatalog {
        SampleCatalog::scaled(0.005, 77)
    }

    #[test]
    fn directory_round_trip_matches_direct_collection() {
        let scratch = Scratch::new("roundtrip");
        let catalog = small_catalog();
        let sampler = Sampler::new(SamplerConfig::fast()).expect("sampler");

        let via_disk =
            collect_via_directory(&scratch.0, &catalog, &sampler).expect("directory flow");

        // Direct in-memory collection of the same catalog.
        let direct: HpcDataset = catalog
            .samples()
            .iter()
            .flat_map(|s| {
                sampler
                    .collect_sample(s)
                    .into_iter()
                    .map(move |features| DataRow {
                        sample: s.id(),
                        class: s.class(),
                        features,
                    })
            })
            .collect();

        assert_eq!(via_disk.len(), direct.len());
        for (a, b) in via_disk.rows().iter().zip(direct.rows()) {
            assert_eq!(a.sample, b.sample);
            assert_eq!(a.class, b.class);
            for (x, y) in a.features.as_slice().iter().zip(b.features.as_slice()) {
                assert!((x - y).abs() < 1e-2, "trace rounding is 2 decimals");
            }
        }
    }

    #[test]
    fn one_file_per_sample_is_written() {
        let scratch = Scratch::new("files");
        let catalog = small_catalog();
        let sampler = Sampler::new(SamplerConfig::fast()).expect("sampler");
        let paths = write_sample_traces(&scratch.0, &catalog, &sampler).expect("write");
        assert_eq!(paths.len(), catalog.len());
        for path in &paths {
            assert!(path.exists());
        }
    }

    #[test]
    fn empty_directory_is_an_error() {
        let scratch = Scratch::new("empty");
        fs::create_dir_all(&scratch.0).expect("mkdir");
        let err = combine_traces(&scratch.0).unwrap_err();
        assert!(err.to_string().contains("no ."), "{err}");
    }

    #[test]
    fn sample_names_round_trip_to_ids() {
        assert_eq!(parse_sample_name("sample-00042"), Some(SampleId(42)));
        assert_eq!(parse_sample_name("not-a-sample"), None);
    }
}
