use std::fmt;
use std::ops::Index;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Errors produced by dataset construction and classifier training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Training requires at least one instance.
    EmptyDataset,
    /// A row's width, a label, or a feature index was out of range.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        found: usize,
    },
    /// Training data contains only one class where at least two are
    /// needed.
    SingleClass,
    /// A configuration value is unusable.
    Config(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => write!(f, "dataset has no instances"),
            MlError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MlError::SingleClass => write!(f, "training data contains a single class"),
            MlError::Config(message) => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for MlError {}

/// A labelled dataset: numeric feature rows plus a nominal class — the
/// in-memory equivalent of a WEKA ARFF relation.
///
/// Feature values are stored as one contiguous row-major `Vec<f64>`
/// (stride = feature count) rather than a `Vec<Vec<f64>>`: rows are
/// exposed as `&[f64]` views into the single allocation, so training
/// loops that scan rows stay cache-friendly and projections like
/// [`Dataset::select_features`] or [`Dataset::split`] are single
/// allocations instead of one per row.
///
/// # Examples
///
/// ```
/// use hbmd_ml::Dataset;
///
/// let mut data = Dataset::new(
///     vec!["loads".into(), "misses".into()],
///     vec!["benign".into(), "malware".into()],
/// )?;
/// data.push(vec![10.0, 1.0], 0)?;
/// data.push(vec![500.0, 90.0], 1)?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.num_features(), 2);
/// assert_eq!(&data.rows()[1], &[500.0, 90.0][..]);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    class_names: Vec<String>,
    /// Row-major feature matrix: `labels.len() * feature_names.len()`
    /// values in one allocation.
    values: Vec<f64>,
    labels: Vec<usize>,
}

/// A borrowed, indexable view of a dataset's rows: each row is a
/// `&[f64]` slice into the dataset's contiguous storage.
///
/// Supports indexing (`rows[i][j]`), iteration (`for row in rows` /
/// `rows.iter()`), and conversion back to the nested-vector layout
/// ([`RowsView::to_vec`]).
#[derive(Debug, Clone, Copy)]
pub struct RowsView<'a> {
    values: &'a [f64],
    width: usize,
}

impl<'a> RowsView<'a> {
    /// A view over `values` interpreted as consecutive rows of
    /// `width` features each.
    ///
    /// # Panics
    ///
    /// Panics when `width` is zero or `values.len()` is not a
    /// multiple of `width`.
    pub fn new(values: &'a [f64], width: usize) -> RowsView<'a> {
        assert!(width > 0, "RowsView width must be non-zero");
        assert_eq!(
            values.len() % width,
            0,
            "RowsView values must be a whole number of rows"
        );
        RowsView { values, width }
    }

    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        self.values.len() / self.width
    }

    /// Number of features per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// `true` when the view has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate rows as `&[f64]` slices.
    pub fn iter(&self) -> std::slice::ChunksExact<'a, f64> {
        self.values.chunks_exact(self.width)
    }

    /// The row at `index`, or `None` when out of range.
    pub fn get(&self, index: usize) -> Option<&'a [f64]> {
        let start = index.checked_mul(self.width)?;
        self.values.get(start..start + self.width)
    }

    /// Copy the view out into the nested-vector layout.
    pub fn to_vec(&self) -> Vec<Vec<f64>> {
        self.iter().map(<[f64]>::to_vec).collect()
    }
}

impl Index<usize> for RowsView<'_> {
    type Output = [f64];

    fn index(&self, index: usize) -> &[f64] {
        &self.values[index * self.width..(index + 1) * self.width]
    }
}

impl<'a> IntoIterator for RowsView<'a> {
    type Item = &'a [f64];
    type IntoIter = std::slice::ChunksExact<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.chunks_exact(self.width)
    }
}

impl<'a> IntoIterator for &RowsView<'a> {
    type Item = &'a [f64];
    type IntoIter = std::slice::ChunksExact<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl Dataset {
    /// An empty dataset with the given schema.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::Config`] when there are no features or fewer
    /// than two classes.
    pub fn new(feature_names: Vec<String>, class_names: Vec<String>) -> Result<Dataset, MlError> {
        if feature_names.is_empty() {
            return Err(MlError::Config("at least one feature required".to_owned()));
        }
        if class_names.len() < 2 {
            return Err(MlError::Config("at least two classes required".to_owned()));
        }
        Ok(Dataset {
            feature_names,
            class_names,
            values: Vec::new(),
            labels: Vec::new(),
        })
    }

    /// Dataset from parallel row/label vectors.
    ///
    /// # Errors
    ///
    /// As [`Dataset::new`], plus [`MlError::DimensionMismatch`] for any
    /// malformed row or out-of-range label.
    pub fn from_rows(
        feature_names: Vec<String>,
        class_names: Vec<String>,
        rows: Vec<Vec<f64>>,
        labels: Vec<usize>,
    ) -> Result<Dataset, MlError> {
        let mut dataset = Dataset::new(feature_names, class_names)?;
        if rows.len() != labels.len() {
            return Err(MlError::DimensionMismatch {
                expected: rows.len(),
                found: labels.len(),
            });
        }
        dataset.values.reserve(rows.len() * dataset.num_features());
        for (row, label) in rows.into_iter().zip(labels) {
            dataset.push(row, label)?;
        }
        Ok(dataset)
    }

    /// Dataset directly from the contiguous row-major layout: `values`
    /// holds `labels.len()` rows of `feature_names.len()` features
    /// each. The zero-copy counterpart of [`Dataset::from_rows`].
    ///
    /// # Errors
    ///
    /// As [`Dataset::new`], plus [`MlError::DimensionMismatch`] when
    /// `values` is not `labels.len() * feature_names.len()` long or a
    /// label is out of range.
    pub fn from_flat(
        feature_names: Vec<String>,
        class_names: Vec<String>,
        values: Vec<f64>,
        labels: Vec<usize>,
    ) -> Result<Dataset, MlError> {
        let dataset = Dataset::new(feature_names, class_names)?;
        if values.len() != labels.len() * dataset.num_features() {
            return Err(MlError::DimensionMismatch {
                expected: labels.len() * dataset.num_features(),
                found: values.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= dataset.num_classes()) {
            return Err(MlError::DimensionMismatch {
                expected: dataset.num_classes(),
                found: bad,
            });
        }
        Ok(Dataset {
            values,
            labels,
            ..dataset
        })
    }

    /// Append one instance.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when the row width does
    /// not match the schema or the label is out of range.
    pub fn push(&mut self, row: Vec<f64>, label: usize) -> Result<(), MlError> {
        if row.len() != self.feature_names.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.feature_names.len(),
                found: row.len(),
            });
        }
        if label >= self.class_names.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.class_names.len(),
                found: label,
            });
        }
        self.values.extend_from_slice(&row);
        self.labels.push(label);
        Ok(())
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset has no instances.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes in the schema.
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Feature column names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Class names, indexed by label.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Feature rows, as an indexable/iterable view of `&[f64]` slices
    /// into the contiguous storage.
    pub fn rows(&self) -> RowsView<'_> {
        RowsView {
            values: &self.values,
            width: self.feature_names.len(),
        }
    }

    /// The row at `index` as a slice into the contiguous storage.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn row(&self, index: usize) -> &[f64] {
        let width = self.feature_names.len();
        &self.values[index * width..(index + 1) * width]
    }

    /// The whole row-major feature matrix as one flat slice
    /// (`len() * num_features()` values).
    pub fn flat_values(&self) -> &[f64] {
        &self.values
    }

    /// Labels, parallel to [`rows`](Dataset::rows).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Instances per class, indexed by label.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes()];
        for &label in &self.labels {
            counts[label] += 1;
        }
        counts
    }

    /// The most frequent label (ties to the lower index; 0 when empty).
    pub fn majority_class(&self) -> usize {
        let counts = self.class_counts();
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, usize::MAX - i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of distinct labels actually present.
    pub fn distinct_classes(&self) -> usize {
        self.class_counts().iter().filter(|&&c| c > 0).count()
    }

    /// A dataset keeping only the listed feature columns, in the given
    /// order. The projected matrix is built in a single allocation.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] for an out-of-range index
    /// and [`MlError::Config`] for an empty selection.
    pub fn select_features(&self, indices: &[usize]) -> Result<Dataset, MlError> {
        if indices.is_empty() {
            return Err(MlError::Config("feature selection is empty".to_owned()));
        }
        for &i in indices {
            if i >= self.num_features() {
                return Err(MlError::DimensionMismatch {
                    expected: self.num_features(),
                    found: i,
                });
            }
        }
        let feature_names = indices
            .iter()
            .map(|&i| self.feature_names[i].clone())
            .collect();
        let mut values = Vec::with_capacity(self.len() * indices.len());
        for row in self.rows() {
            values.extend(indices.iter().map(|&i| row[i]));
        }
        Ok(Dataset {
            feature_names,
            class_names: self.class_names.clone(),
            values,
            labels: self.labels.clone(),
        })
    }

    /// A dataset with labels remapped to a binary scheme:
    /// `positive_classes` become 1, everything else 0. Class names
    /// become `["rest", name]`.
    pub fn binarized(&self, positive_classes: &[usize], positive_name: &str) -> Dataset {
        let labels = self
            .labels
            .iter()
            .map(|l| usize::from(positive_classes.contains(l)))
            .collect();
        Dataset {
            feature_names: self.feature_names.clone(),
            class_names: vec!["rest".to_owned(), positive_name.to_owned()],
            values: self.values.clone(),
            labels,
        }
    }

    /// Shuffle-split into train/test partitions (row granularity).
    ///
    /// # Panics
    ///
    /// Panics when `train_fraction` is not within `(0, 1)`.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0, 1)"
        );
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(&mut SmallRng::seed_from_u64(seed));
        let take = ((self.len() as f64) * train_fraction).round() as usize;
        let (train_idx, test_idx) = order.split_at(take.min(order.len()));
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// An empty dataset with this dataset's schema.
    pub fn empty_like(&self) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            class_names: self.class_names.clone(),
            values: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// A dataset holding the instances at `indices` (copied in a single
    /// allocation).
    ///
    /// # Panics
    ///
    /// Panics when any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let width = self.num_features();
        let mut out = self.empty_like();
        out.values.reserve(indices.len() * width);
        out.labels.reserve(indices.len());
        for &i in indices {
            out.values
                .extend_from_slice(&self.values[i * width..(i + 1) * width]);
            out.labels.push(self.labels[i]);
        }
        out
    }

    /// Iterate `(row, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], usize)> {
        self.rows().iter().zip(self.labels.iter().copied())
    }

    /// Per-feature mean and (population) standard deviation.
    ///
    /// Two column-strided passes over the contiguous storage: the
    /// shifted-data one-pass formula (`E[x²] − E[x]²`) cancels
    /// catastrophically on counter-sized magnitudes and perturbs
    /// downstream near-ties (PCA rankings, standardized models), so
    /// the mean is computed first and deviations second — the same
    /// summation order as the nested-row layout used.
    pub fn feature_stats(&self) -> Vec<(f64, f64)> {
        let width = self.num_features();
        let n = self.len().max(1) as f64;
        (0..width)
            .map(|j| {
                let column = || self.values.iter().skip(j).step_by(width.max(1));
                let mean = column().sum::<f64>() / n;
                let var = column().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                (mean, var.sqrt())
            })
            .collect()
    }

    /// Validate a dataset is trainable: non-empty with at least two
    /// distinct classes present.
    ///
    /// # Errors
    ///
    /// [`MlError::EmptyDataset`] or [`MlError::SingleClass`].
    pub fn check_trainable(&self) -> Result<(), MlError> {
        if self.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if self.distinct_classes() < 2 {
            return Err(MlError::SingleClass);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec!["x".into(), "y".into()],
        )
        .expect("schema");
        for i in 0..10 {
            d.push(vec![i as f64, (i * 2) as f64, 1.0], usize::from(i >= 5))
                .expect("row");
        }
        d
    }

    #[test]
    fn schema_validation() {
        assert!(Dataset::new(vec![], vec!["a".into(), "b".into()]).is_err());
        assert!(Dataset::new(vec!["f".into()], vec!["only".into()]).is_err());
    }

    #[test]
    fn push_validates_width_and_label() {
        let mut d = toy();
        assert!(d.push(vec![1.0], 0).is_err());
        assert!(d.push(vec![1.0, 2.0, 3.0], 9).is_err());
        assert!(d.push(vec![1.0, 2.0, 3.0], 1).is_ok());
    }

    #[test]
    fn counts_and_majority() {
        let d = toy();
        assert_eq!(d.class_counts(), vec![5, 5]);
        assert_eq!(d.majority_class(), 0, "tie goes to lower index");
        assert_eq!(d.distinct_classes(), 2);
        assert!(d.check_trainable().is_ok());
    }

    #[test]
    fn single_class_is_untrainable() {
        let mut d = Dataset::new(vec!["f".into()], vec!["x".into(), "y".into()]).expect("schema");
        d.push(vec![1.0], 0).expect("row");
        assert_eq!(d.check_trainable(), Err(MlError::SingleClass));
        assert_eq!(
            Dataset::new(vec!["f".into()], vec!["x".into(), "y".into()])
                .expect("schema")
                .check_trainable(),
            Err(MlError::EmptyDataset)
        );
    }

    #[test]
    fn select_features_projects_and_reorders() {
        let d = toy();
        let p = d.select_features(&[2, 0]).expect("select");
        assert_eq!(p.feature_names(), &["c".to_owned(), "a".to_owned()]);
        assert_eq!(&p.rows()[3], &[1.0, 3.0][..]);
        assert!(d.select_features(&[7]).is_err());
        assert!(d.select_features(&[]).is_err());
    }

    #[test]
    fn binarized_remaps_labels() {
        let d = toy();
        let b = d.binarized(&[1], "malware");
        assert_eq!(b.class_names(), &["rest".to_owned(), "malware".to_owned()]);
        assert_eq!(b.class_counts(), vec![5, 5]);
        let all_negative = d.binarized(&[], "none");
        assert_eq!(all_negative.class_counts(), vec![10, 0]);
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy();
        let (train, test) = d.split(0.7, 3);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        let (t2, _) = d.split(0.7, 3);
        assert_eq!(train, t2, "deterministic per seed");
    }

    #[test]
    fn feature_stats_are_correct() {
        let d = toy();
        let stats = d.feature_stats();
        assert!((stats[0].0 - 4.5).abs() < 1e-9);
        assert!((stats[2].0 - 1.0).abs() < 1e-9);
        assert!(stats[2].1 < 1e-9, "constant feature has zero deviation");
    }

    #[test]
    fn subset_clones_selected() {
        let d = toy();
        let s = d.subset(&[0, 9]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[0, 1]);
    }

    #[test]
    fn from_rows_round_trip() {
        let d = toy();
        let rebuilt = Dataset::from_rows(
            d.feature_names().to_vec(),
            d.class_names().to_vec(),
            d.rows().to_vec(),
            d.labels().to_vec(),
        )
        .expect("rebuild");
        assert_eq!(d, rebuilt);
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let d = toy();
        let flat = Dataset::from_flat(
            d.feature_names().to_vec(),
            d.class_names().to_vec(),
            d.flat_values().to_vec(),
            d.labels().to_vec(),
        )
        .expect("rebuild");
        assert_eq!(d, flat);
        assert!(Dataset::from_flat(
            d.feature_names().to_vec(),
            d.class_names().to_vec(),
            vec![1.0; 4],
            vec![0, 1],
        )
        .is_err());
        assert!(Dataset::from_flat(
            d.feature_names().to_vec(),
            d.class_names().to_vec(),
            vec![1.0; 6],
            vec![0, 7],
        )
        .is_err());
    }

    #[test]
    fn rows_view_indexes_iterates_and_bounds_checks() {
        let d = toy();
        let rows = d.rows();
        assert_eq!(rows.len(), 10);
        assert!(!rows.is_empty());
        assert_eq!(rows[4], [4.0, 8.0, 1.0]);
        assert_eq!(rows.get(4), Some(&[4.0, 8.0, 1.0][..]));
        assert_eq!(rows.get(10), None);
        let collected: Vec<&[f64]> = rows.iter().collect();
        assert_eq!(collected.len(), 10);
        assert_eq!(collected[0], d.row(0));
        let mut count = 0;
        for row in d.rows() {
            assert_eq!(row.len(), 3);
            count += 1;
        }
        assert_eq!(count, 10);
    }

    #[test]
    fn error_display_is_informative() {
        let e = MlError::DimensionMismatch {
            expected: 16,
            found: 4,
        };
        assert!(e.to_string().contains("16"));
        assert!(MlError::SingleClass.to_string().contains("single class"));
    }
}
