//! Backend-conformance suite for the [`CounterSource`] contract: the
//! same assertions run against every backend — the deterministic
//! simulator unconditionally, and (with `--features perf-backend`) the
//! live `perf_event_open` backend behind a runtime probe-and-skip so
//! the suite passes on unprivileged CI runners.

use hbmd::events::HpcEvent;
use hbmd::malware::{AppClass, Sample, SampleId};
use hbmd::perf::{open_source, CounterSource, EventSel, PerfError, SamplerConfig, SourceSelect};

fn sample() -> Sample {
    Sample::generate(SampleId(11), AppClass::Worm, 7)
}

/// The shared contract: every backend must refuse reads before
/// programming, refuse partial event selections, and then produce
/// `windows_per_sample`-independent 16-wide windows with coherent
/// scheduling telemetry.
fn assert_source_conformance(mut source: Box<dyn CounterSource>, backend: &str) {
    let caps = source.caps();
    assert_eq!(caps.backend, backend);
    assert!(caps.counters > 0, "{backend}: no counter registers");

    // Reading before programming is a typed configuration error.
    assert!(
        matches!(source.read_window(), Err(PerfError::Config(_))),
        "{backend}: read before program must fail"
    );

    // Partial selections are rejected — the dataset schema is 16 wide.
    let set = EventSel::paper_set();
    assert!(
        source.program(&set[..4]).is_err(),
        "{backend}: partial selection accepted"
    );
    assert!(
        source.program(&[]).is_err(),
        "{backend}: empty selection accepted"
    );

    source.program(&set).expect("paper set programs");
    for w in 0..4 {
        let window = source.read_window().expect("programmed read succeeds");
        assert_eq!(
            window.features.as_slice().len(),
            HpcEvent::COUNT,
            "{backend}: window {w} is not 16 wide"
        );
        // Starved events are NaN and counted; everything else must be
        // a finite non-negative estimate.
        let nan_count = window
            .features
            .as_slice()
            .iter()
            .filter(|v| v.is_nan())
            .count();
        assert!(
            nan_count <= window.starved_events,
            "{backend}: window {w} has {nan_count} NaNs but reports \
             {} starved events",
            window.starved_events
        );
        for (i, value) in window.features.as_slice().iter().enumerate() {
            assert!(
                value.is_nan() || (value.is_finite() && *value >= 0.0),
                "{backend}: window {w} column {i} = {value}"
            );
        }
        assert!(
            window.time_enabled >= window.time_running,
            "{backend}: enabled {} < running {}",
            window.time_enabled,
            window.time_running
        );
        if window.fully_scheduled() {
            assert!(
                window.scaling() >= 1.0,
                "{backend}: scaling {} < 1",
                window.scaling()
            );
        }
    }
}

#[test]
fn sim_source_conforms() {
    let source =
        open_source(SourceSelect::Sim, &SamplerConfig::fast(), &sample()).expect("sim opens");
    assert_source_conformance(source, "sim");
}

#[test]
fn sim_source_is_deterministic_and_simulated() {
    let config = SamplerConfig::fast();
    let collect = || {
        let mut source = open_source(SourceSelect::Sim, &config, &sample()).expect("sim opens");
        source.program(&EventSel::paper_set()).expect("paper set");
        (0..config.windows_per_sample)
            .map(|_| source.read_window().expect("sim never fails"))
            .collect::<Vec<_>>()
    };
    let first = collect();
    assert_eq!(first, collect(), "sim windows must be byte-identical");
    let caps = open_source(SourceSelect::Sim, &config, &sample())
        .expect("sim opens")
        .caps();
    assert!(!caps.live);
    for window in &first {
        assert_eq!(window.starved_events, 0, "the model never starves events");
    }
}

#[test]
fn probe_reports_sim_always_available() {
    assert!(SourceSelect::Sim.probe().is_ok());
}

#[cfg(not(feature = "perf-backend"))]
#[test]
fn perf_source_unavailable_without_the_feature() {
    assert!(matches!(
        SourceSelect::Perf.probe(),
        Err(PerfError::BackendUnavailable { .. })
    ));
    assert!(matches!(
        open_source(SourceSelect::Perf, &SamplerConfig::fast(), &sample()),
        Err(PerfError::BackendUnavailable { .. })
    ));
}

/// Live-backend conformance: identical assertions, gated on the
/// compile-time feature AND a runtime probe. On hosts where
/// `perf_event_open` is forbidden (unprivileged CI, containers without
/// CAP_PERFMON) the probe fails with a typed error and the test
/// passes as a documented skip.
#[cfg(feature = "perf-backend")]
#[test]
fn perf_source_conforms_or_probe_skips() {
    match SourceSelect::Perf.probe() {
        Ok(()) => {
            let source = open_source(SourceSelect::Perf, &SamplerConfig::fast(), &sample())
                .expect("probe passed, backend opens");
            assert_source_conformance(source, "perf");
        }
        Err(PerfError::BackendUnavailable { reason }) => {
            eprintln!("perf backend probe failed, skipping live assertions: {reason}");
        }
        Err(other) => panic!("probe must fail typed, got {other:?}"),
    }
}

/// Live counts are real: with the probe passing, a window over the
/// fixed instruction budget must count a plausible number of branch
/// instructions (the workload driver executes tens of thousands of
/// simulated instructions, which costs far more host instructions).
#[cfg(feature = "perf-backend")]
#[test]
fn perf_windows_measure_real_work_or_probe_skips() {
    if let Err(PerfError::BackendUnavailable { reason }) = SourceSelect::Perf.probe() {
        eprintln!("perf backend probe failed, skipping live assertions: {reason}");
        return;
    }
    let mut source = open_source(SourceSelect::Perf, &SamplerConfig::fast(), &sample())
        .expect("probe passed, backend opens");
    source.program(&EventSel::paper_set()).expect("paper set");
    let window = source.read_window().expect("live read");
    let branches = window.features[HpcEvent::BranchInstructions];
    if branches.is_nan() {
        eprintln!("branch-instructions starved on this PMU, skipping magnitude check");
        return;
    }
    assert!(
        branches > 1_000.0,
        "driving a 4,000-instruction simulated window should retire \
         well over 1k host branches, measured {branches}"
    );
}

/// Faults compose over any source: the injector sits above the
/// backend, so a faulted collection built on an explicitly-selected
/// simulator source still injects and reports.
#[test]
fn faults_compose_over_source_selection() {
    use hbmd::malware::SampleCatalog;
    use hbmd::perf::{Collector, CollectorConfig, FaultPlan, SamplerConfig};

    let catalog = SampleCatalog::scaled(0.02, 5);
    let config = CollectorConfig::builder()
        .sampler(SamplerConfig::fast())
        .threads(1)
        .source(SourceSelect::Sim)
        .fault(FaultPlan::uniform(0.1, 21))
        .build()
        .expect("valid");
    let collection = Collector::new(config)
        .expect("valid config")
        .collect(&catalog)
        .expect("under threshold");
    assert!(
        collection.report.faults.total() > 0,
        "faults must fire over an explicit source"
    );
    let default_path = Collector::new(CollectorConfig::faulted(FaultPlan::uniform(0.1, 21)))
        .expect("valid config")
        .collect(&catalog)
        .expect("under threshold");
    // Debug-compare the datasets: starvation faults leave NaNs, and
    // NaN != NaN under `PartialEq` (f64 Debug round-trips bits).
    assert_eq!(
        format!("{:?}", collection.dataset),
        format!("{:?}", default_path.dataset),
        "explicit sim source must match the default faulted path"
    );
    assert_eq!(collection.report, default_path.report);
}
