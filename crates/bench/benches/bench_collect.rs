//! Microbenchmark: the collection pipeline — one multiplexed PMU
//! sampling window, and a full per-sample collection (the inner loop of
//! every table/figure experiment).

use criterion::{criterion_group, criterion_main, Criterion};
use hbmd_malware::{AppClass, Sample, SampleId};
use hbmd_perf::{Pmu, PmuConfig, Sampler, SamplerConfig};
use hbmd_uarch::{Cpu, CpuConfig, StreamParams, SyntheticStream};

fn bench_pmu_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("collect");
    group.sample_size(20);

    group.bench_function("pmu_window_20k_multiplexed", |b| {
        b.iter(|| {
            let mut pmu = Pmu::new(PmuConfig::haswell_collected()).expect("valid");
            let mut cpu = Cpu::new(CpuConfig::haswell());
            let mut stream = SyntheticStream::new(StreamParams::balanced(), 3);
            pmu.measure_window(&mut cpu, &mut stream, 20_000)
        });
    });

    group.bench_function("pmu_window_20k_exact", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(CpuConfig::haswell());
            let mut stream = SyntheticStream::new(StreamParams::balanced(), 3);
            Pmu::measure_window_exact(&mut cpu, &mut stream, 20_000)
        });
    });

    group.bench_function("sample_16_windows_paper", |b| {
        let sampler = Sampler::new(SamplerConfig::paper()).expect("valid");
        let sample = Sample::generate(SampleId(1), AppClass::Virus, 9);
        b.iter(|| sampler.collect_sample(&sample));
    });

    group.finish();
}

criterion_group!(benches, bench_pmu_window);
criterion_main!(benches);
