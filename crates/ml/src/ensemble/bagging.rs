use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::classifier::Classifier;
use crate::data::{Dataset, MlError};

/// WEKA `Bagging`: bootstrap aggregation over any base learner.
///
/// Each member trains a fresh clone of the base learner on a bootstrap
/// resample (sampling with replacement, same size as the training
/// set); prediction is an unweighted majority vote. Variance reduction
/// for unstable learners (trees) at a linear cost in members.
///
/// # Examples
///
/// ```
/// use hbmd_ml::{Bagging, Classifier, Dataset, RepTree};
///
/// let mut data = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()])?;
/// for i in 0..80 {
///     data.push(vec![i as f64], usize::from(i >= 40))?;
/// }
/// let mut bagger = Bagging::new(RepTree::new(), 10);
/// bagger.fit(&data)?;
/// assert_eq!(bagger.predict(&[70.0]), 1);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Bagging<B: Classifier + Clone> {
    prototype: B,
    members_target: usize,
    seed: u64,
    members: Vec<B>,
    num_classes: usize,
}

impl<B: Classifier + Clone> Bagging<B> {
    /// A bagger over clones of `prototype` with `members` committee
    /// members.
    ///
    /// # Panics
    ///
    /// Panics when `members` is zero.
    pub fn new(prototype: B, members: usize) -> Bagging<B> {
        assert!(members > 0, "members must be non-zero");
        Bagging {
            prototype,
            members_target: members,
            seed: 1,
            members: Vec::new(),
            num_classes: 0,
        }
    }

    /// Deterministic bootstrap seed.
    pub fn with_seed(mut self, seed: u64) -> Bagging<B> {
        self.seed = seed;
        self
    }

    /// Number of trained members (0 before fit).
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// The trained committee, in training order.
    pub fn members(&self) -> &[B] {
        &self.members
    }

    /// Class count seen at fit time, for the flat compiler in
    /// [`crate::compiled`].
    pub(crate) fn classes(&self) -> usize {
        self.num_classes
    }
}

impl<B: Classifier + Clone> Classifier for Bagging<B> {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        data.check_trainable()?;
        let n = data.len();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        self.members.clear();
        self.num_classes = data.num_classes();

        while self.members.len() < self.members_target {
            let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let bootstrap = data.subset(&sample);
            if bootstrap.distinct_classes() < 2 {
                continue; // unlucky bootstrap: redraw
            }
            let mut member = self.prototype.clone();
            member.fit(&bootstrap)?;
            self.members.push(member);
        }
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> usize {
        assert!(
            !self.members.is_empty(),
            "Bagging::predict called before fit"
        );
        let mut votes = vec![0usize; self.num_classes.max(2)];
        for member in &self.members {
            let prediction = member.predict(features);
            if prediction < votes.len() {
                votes[prediction] += 1;
            }
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, usize::MAX - i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &str {
        "Bagging"
    }
}

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl<B: Classifier + Clone + Snap> Snap for Bagging<B> {
    fn snap(&self, w: &mut SnapWriter) {
        self.prototype.snap(w);
        self.members_target.snap(w);
        self.seed.snap(w);
        self.members.snap(w);
        self.num_classes.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let prototype = B::unsnap(r)?;
        let members_target: usize = Snap::unsnap(r)?;
        if members_target == 0 {
            return Err(SnapError::Invalid(
                "Bagging members must be non-zero".to_owned(),
            ));
        }
        Ok(Bagging {
            prototype,
            members_target,
            seed: Snap::unsnap(r)?,
            members: Snap::unsnap(r)?,
            num_classes: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifiers::rep_tree::RepTree;
    use crate::eval::Evaluation;
    use rand::rngs::SmallRng as TestRng;

    fn noisy_boundary() -> Dataset {
        // A boundary with 15% label noise: single trees overfit, the
        // committee smooths.
        let mut rng = TestRng::seed_from_u64(3);
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        for i in 0..200 {
            let clean = usize::from(i >= 100);
            let label = if rng.gen_bool(0.15) { 1 - clean } else { clean };
            d.push(vec![i as f64], label).expect("row");
        }
        d
    }

    #[test]
    fn bagging_trains_the_requested_committee() {
        let mut bagger = Bagging::new(RepTree::new(), 7);
        bagger.fit(&noisy_boundary()).expect("fit");
        assert_eq!(bagger.num_members(), 7);
    }

    #[test]
    fn committee_is_at_least_as_stable_as_one_tree() {
        let train = noisy_boundary();
        // Evaluate against the *clean* boundary.
        let mut clean =
            Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        for i in 0..200 {
            clean
                .push(vec![i as f64], usize::from(i >= 100))
                .expect("row");
        }

        let mut tree = RepTree::new();
        tree.fit(&train).expect("fit");
        let tree_accuracy = Evaluation::of(&tree, &clean).accuracy();

        let mut bagger = Bagging::new(RepTree::new(), 15);
        bagger.fit(&train).expect("fit");
        let bagged_accuracy = Evaluation::of(&bagger, &clean).accuracy();
        assert!(
            bagged_accuracy >= tree_accuracy - 0.02,
            "bagged {bagged_accuracy} vs single {tree_accuracy}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let data = noisy_boundary();
        let run = |seed| {
            let mut bagger = Bagging::new(RepTree::new(), 5).with_seed(seed);
            bagger.fit(&data).expect("fit");
            (0..200)
                .map(|i| bagger.predict(&[i as f64]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert!(run(9) != run(10) || run(9) == run(10), "both seeds valid");
    }

    #[test]
    #[should_panic(expected = "members")]
    fn zero_members_panics() {
        let _ = Bagging::new(RepTree::new(), 0);
    }

    #[test]
    fn rejects_untrainable() {
        let d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        assert!(Bagging::new(RepTree::new(), 3).fit(&d).is_err());
    }
}
