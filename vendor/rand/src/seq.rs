//! Sequence helpers: [`SliceRandom`].

use crate::distributions::uniform::SampleUniform;
use crate::RngCore;

/// Sample a uniform index below `ubound`, using 32-bit draws for small
/// bounds exactly as rand 0.8 does (this keeps seeded shuffles on the
/// familiar stream).
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        u32::sample_single(0, ubound as u32, rng) as usize
    } else {
        usize::sample_single(0, ubound, rng)
    }
}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut SmallRng::seed_from_u64(1));
        b.shuffle(&mut SmallRng::seed_from_u64(1));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        let mut c: Vec<u32> = (0..50).collect();
        c.shuffle(&mut SmallRng::seed_from_u64(2));
        assert_ne!(a, c, "different seeds shuffle differently");
    }

    #[test]
    fn choose_covers_the_slice() {
        let items = [1, 2, 3, 4];
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &v = items.choose(&mut rng).expect("non-empty");
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(Vec::<i32>::new().choose(&mut rng).is_none());
    }
}
