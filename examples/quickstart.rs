//! Quickstart: generate a malware database, collect HPC windows, train
//! a detector, and inspect its hardware cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hbmd::core::{ClassifierKind, DetectorBuilder, FeatureSet};
use hbmd::fpga::SynthConfig;
use hbmd::malware::SampleCatalog;
use hbmd::perf::{Collector, CollectorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A shrunk Table-1 catalog: every class present, ~5% of the
    //    paper's 3,070 samples so the example runs in seconds.
    let catalog = SampleCatalog::scaled(0.05, 7);
    println!("catalog: {} samples", catalog.len());
    for (class, count, share) in catalog.census() {
        println!("  {class:<9} {count:>4}  ({:.1}%)", share * 100.0);
    }

    // 2. Collect hardware-performance-counter windows: each sample runs
    //    in an isolated container on the simulated Haswell core, with
    //    the 16 events multiplexed onto 8 PMU registers.
    let dataset = Collector::new(CollectorConfig::paper())
        .expect("config")
        .collect(&catalog)
        .expect("collect")
        .dataset;
    println!(
        "\ncollected {} windows of 16 scaled counters",
        dataset.len()
    );

    // 3. Train a binary detector on the PCA top-8 features with the
    //    paper's 70/30 protocol.
    let detector = DetectorBuilder::new()
        .classifier(ClassifierKind::J48)
        .feature_set(FeatureSet::Top(8))
        .train_binary(&dataset)?;
    let evaluation = detector.evaluation();
    println!(
        "\nJ48 on top-8 features: {:.1}% accuracy (kappa {:.2})",
        evaluation.accuracy() * 100.0,
        evaluation.kappa()
    );
    println!("{}", evaluation.confusion());

    // 4. What would this detector cost in silicon?
    let report = detector.synthesize(&SynthConfig::default())?;
    println!("hardware: {report}");
    println!(
        "accuracy/area figure of merit: {:.3}",
        report.accuracy_per_area(evaluation.accuracy())
    );
    Ok(())
}
