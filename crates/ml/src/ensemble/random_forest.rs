use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::classifier::Classifier;
use crate::classifiers::split::{best_split_on_feature, histogram, majority, Split};
use crate::data::{Dataset, MlError, RowsView};

/// WEKA `RandomForest`: bagged information-gain trees with per-split
/// feature subsampling (√F features considered at each node).
///
/// # Examples
///
/// ```
/// use hbmd_ml::{Classifier, Dataset, RandomForest};
///
/// let mut data = Dataset::new(
///     vec!["x".into(), "y".into()],
///     vec!["a".into(), "b".into()],
/// )?;
/// for i in 0..100 {
///     data.push(vec![(i % 10) as f64, (i / 10) as f64], usize::from(i % 10 >= 5))?;
/// }
/// let mut forest = RandomForest::new(10);
/// forest.fit(&data)?;
/// assert_eq!(forest.predict(&[8.0, 3.0]), 1);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees_target: usize,
    min_leaf: usize,
    max_depth: usize,
    seed: u64,
    trees: Vec<Node>,
    num_classes: usize,
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        class: usize,
    },
    Inner {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl RandomForest {
    /// The fitted trees plus class count, for the flat compiler in
    /// [`crate::compiled`].
    pub(crate) fn parts(&self) -> (&[Node], usize) {
        (&self.trees, self.num_classes)
    }

    /// A forest with `trees` members and WEKA-ish defaults (unpruned
    /// trees, minimum 1 instance per leaf, depth cap 30).
    ///
    /// # Panics
    ///
    /// Panics when `trees` is zero.
    pub fn new(trees: usize) -> RandomForest {
        assert!(trees > 0, "trees must be non-zero");
        RandomForest {
            trees_target: trees,
            min_leaf: 1,
            max_depth: 30,
            seed: 1,
            trees: Vec::new(),
            num_classes: 0,
        }
    }

    /// Deterministic bootstrap/subsampling seed.
    pub fn with_seed(mut self, seed: u64) -> RandomForest {
        self.seed = seed;
        self
    }

    /// Number of trained trees (0 before fit).
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total internal (test) nodes across the forest — the comparator
    /// count of a hardware implementation.
    pub fn total_internal_nodes(&self) -> usize {
        self.trees.iter().map(count_inner).sum()
    }

    /// The deepest tree's depth.
    pub fn max_tree_depth(&self) -> usize {
        self.trees.iter().map(node_depth).max().unwrap_or(0)
    }

    fn grow(&self, data: &Dataset, indices: &[usize], depth: usize, rng: &mut SmallRng) -> Node {
        let counts = histogram(data, indices);
        let class = majority(data, indices);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= self.max_depth || indices.len() < 2 * self.min_leaf {
            return Node::Leaf { class };
        }

        // Feature subsampling: sqrt(F) candidates per node.
        let features = data.num_features();
        let k = ((features as f64).sqrt().round() as usize).clamp(1, features);
        let mut candidates: Vec<usize> = (0..features).collect();
        candidates.shuffle(rng);
        candidates.truncate(k);

        let mut best: Option<Split> = None;
        for &feature in &candidates {
            if let Some(candidate) = best_split_on_feature(data, indices, feature, self.min_leaf) {
                if best
                    .as_ref()
                    .map(|b| candidate.gain > b.gain)
                    .unwrap_or(true)
                {
                    best = Some(candidate);
                }
            }
        }
        match best {
            None => Node::Leaf { class },
            Some(split) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| data.rows()[i][split.feature] <= split.threshold);
                Node::Inner {
                    feature: split.feature,
                    threshold: split.threshold,
                    left: Box::new(self.grow(data, &left_idx, depth + 1, rng)),
                    right: Box::new(self.grow(data, &right_idx, depth + 1, rng)),
                }
            }
        }
    }
}

fn count_inner(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 0,
        Node::Inner { left, right, .. } => 1 + count_inner(left) + count_inner(right),
    }
}

fn node_depth(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 0,
        Node::Inner { left, right, .. } => 1 + node_depth(left).max(node_depth(right)),
    }
}

fn classify(node: &Node, features: &[f64]) -> usize {
    match node {
        Node::Leaf { class } => *class,
        Node::Inner {
            feature,
            threshold,
            left,
            right,
        } => {
            if features[*feature] <= *threshold {
                classify(left, features)
            } else {
                classify(right, features)
            }
        }
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        data.check_trainable()?;
        let n = data.len();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        self.trees.clear();
        self.num_classes = data.num_classes();
        while self.trees.len() < self.trees_target {
            let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let bootstrap = data.subset(&sample);
            if bootstrap.distinct_classes() < 2 {
                continue;
            }
            let indices: Vec<usize> = (0..bootstrap.len()).collect();
            let tree = self.grow(&bootstrap, &indices, 0, &mut rng);
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> usize {
        assert!(
            !self.trees.is_empty(),
            "RandomForest::predict called before fit"
        );
        let mut votes = vec![0usize; self.num_classes.max(2)];
        for tree in &self.trees {
            let prediction = classify(tree, features);
            if prediction < votes.len() {
                votes[prediction] += 1;
            }
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, usize::MAX - i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &str {
        "RandomForest"
    }

    fn predict_batch(&self, rows: RowsView<'_>) -> Vec<usize> {
        match self.compile() {
            Some(compiled) => compiled.predict_batch(rows),
            None => rows.iter().map(|r| self.predict(r)).collect(),
        }
    }
}

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for RandomForest {
    fn snap(&self, w: &mut SnapWriter) {
        self.trees_target.snap(w);
        self.min_leaf.snap(w);
        self.max_depth.snap(w);
        self.seed.snap(w);
        self.trees.snap(w);
        self.num_classes.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let trees_target: usize = Snap::unsnap(r)?;
        if trees_target == 0 {
            return Err(SnapError::Invalid(
                "RandomForest trees must be non-zero".to_owned(),
            ));
        }
        Ok(RandomForest {
            trees_target,
            min_leaf: Snap::unsnap(r)?,
            max_depth: Snap::unsnap(r)?,
            seed: Snap::unsnap(r)?,
            trees: Snap::unsnap(r)?,
            num_classes: Snap::unsnap(r)?,
        })
    }
}

impl Snap for Node {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Node::Leaf { class } => {
                w.put_u8(0);
                class.snap(w);
            }
            Node::Inner {
                feature,
                threshold,
                left,
                right,
            } => {
                w.put_u8(1);
                feature.snap(w);
                threshold.snap(w);
                left.snap(w);
                right.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(Node::Leaf {
                class: Snap::unsnap(r)?,
            }),
            1 => Ok(Node::Inner {
                feature: Snap::unsnap(r)?,
                threshold: Snap::unsnap(r)?,
                left: Snap::unsnap(r)?,
                right: Snap::unsnap(r)?,
            }),
            other => Err(SnapError::Invalid(format!("RandomForest node tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluation;

    fn grid() -> Dataset {
        let mut d = Dataset::new(
            vec!["x".into(), "y".into(), "noise".into()],
            vec!["a".into(), "b".into()],
        )
        .expect("schema");
        for i in 0..150 {
            let x = (i % 10) as f64;
            let y = ((i / 10) % 5) as f64;
            let label = usize::from(x + y >= 7.0);
            d.push(vec![x, y, (i % 7) as f64], label).expect("row");
        }
        d
    }

    #[test]
    fn forest_learns_a_diagonal_boundary() {
        let data = grid();
        let mut forest = RandomForest::new(15);
        forest.fit(&data).expect("fit");
        let accuracy = Evaluation::of(&forest, &data).accuracy();
        assert!(accuracy > 0.9, "training accuracy {accuracy}");
        assert_eq!(forest.num_trees(), 15);
        assert!(forest.total_internal_nodes() > 15);
        assert!(forest.max_tree_depth() >= 2);
    }

    #[test]
    fn held_out_generalisation_beats_chance() {
        let data = grid();
        let (train, test) = data.split(0.7, 5);
        let mut forest = RandomForest::new(20);
        forest.fit(&train).expect("fit");
        assert!(Evaluation::of(&forest, &test).accuracy() > 0.8);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = grid();
        let run = |seed| {
            let mut forest = RandomForest::new(5).with_seed(seed);
            forest.fit(&data).expect("fit");
            forest.total_internal_nodes()
        };
        assert_eq!(run(2), run(2));
    }

    #[test]
    fn multiclass_voting_works() {
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into(), "c".into()])
            .expect("schema");
        for i in 0..90 {
            d.push(vec![i as f64], i / 30).expect("row");
        }
        let mut forest = RandomForest::new(9);
        forest.fit(&d).expect("fit");
        assert_eq!(forest.predict(&[10.0]), 0);
        assert_eq!(forest.predict(&[45.0]), 1);
        assert_eq!(forest.predict(&[80.0]), 2);
    }

    #[test]
    #[should_panic(expected = "trees")]
    fn zero_trees_panics() {
        let _ = RandomForest::new(0);
    }

    #[test]
    fn rejects_untrainable() {
        let d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        assert!(RandomForest::new(3).fit(&d).is_err());
    }
}
