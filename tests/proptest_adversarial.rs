//! Property-based tests on the adversarial toolkit's hard invariants:
//! every perturbed window is physically plausible (finite,
//! non-negative, inside its rate envelope) no matter how hostile the
//! input, same-seed attacks are byte-identical, and the full
//! accuracy-under-attack sweep is thread-count invariant.

use hbmd::core::experiments::adversarial::accuracy_under_attack;
use hbmd::core::experiments::ExperimentConfig;
use hbmd::core::ClassifierKind;
use hbmd::malware::{EvasionAttack, PlausibilityEnvelope};
use proptest::prelude::*;

/// An f64 that may be anything an upstream pipeline could emit: plain
/// magnitudes, negatives, zero, huge values, NaN and infinities.
fn arb_hostile_f64() -> impl Strategy<Value = f64> {
    (0u8..8, -1.0e15f64..1.0e15).prop_map(|(tag, v)| match tag {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        4 => -v.abs(),
        _ => v,
    })
}

/// Per-feature benign `(mean, std)` stats zipped with a same-width
/// hostile window value. Zero-mean/zero-std columns exercise the
/// unbounded-ceiling path.
fn arb_case() -> impl Strategy<Value = Vec<((f64, f64), f64)>> {
    prop::collection::vec(((0.0f64..1.0e6, 0.0f64..1.0e5), arb_hostile_f64()), 1..17)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn perturbed_windows_stay_physically_plausible(
        case in arb_case(),
        budget in 0.0f64..2.0,
        seed in 0u64..u64::MAX,
        key in 0u64..u64::MAX,
        cut in 0.0f64..1.0e6,
    ) {
        let (stats, window): (Vec<(f64, f64)>, Vec<f64>) = case.into_iter().unzip();
        let envelope = PlausibilityEnvelope::from_stats(&stats, 6.0);
        let attack = EvasionAttack::new(envelope, budget, seed);
        let outcome = attack.perturb(&window, key, |w| {
            if w[0] > cut { 1.0 } else { 0.0 }
        });
        prop_assert!(
            attack.envelope().contains(&outcome.window),
            "window escaped its envelope: {:?}",
            outcome.window
        );
        for &v in &outcome.window {
            prop_assert!(v.is_finite() && v >= 0.0, "implausible value {v}");
        }
        prop_assert!(outcome.l1_spent.is_finite() && outcome.l1_spent >= 0.0);
        prop_assert!(outcome.iterations >= 1);
    }

    #[test]
    fn same_seed_attacks_are_byte_identical(
        case in arb_case(),
        budget in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
        key in 0u64..u64::MAX,
        cut in 0.0f64..1.0e6,
    ) {
        let (stats, window): (Vec<(f64, f64)>, Vec<f64>) = case.into_iter().unzip();
        let envelope = PlausibilityEnvelope::from_stats(&stats, 6.0);
        let attack = EvasionAttack::new(envelope, budget, seed);
        let oracle = |w: &[f64]| if w[0] > cut { 1.0 } else { 0.0 };
        let a = attack.perturb(&window, key, oracle);
        let b = attack.perturb(&window, key, oracle);
        prop_assert_eq!(a, b);
    }
}

/// The sweep fans attacks out over `config.threads` workers; the rows
/// must be byte-identical at any worker count.
#[test]
fn attack_sweep_is_thread_count_invariant() {
    let schemes = [ClassifierKind::J48];
    let budgets = [0.2];
    let runs: Vec<_> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let mut config = ExperimentConfig::fast();
            config.threads = threads;
            accuracy_under_attack(&config, &schemes, &budgets).expect("sweep")
        })
        .collect();
    assert_eq!(runs[0], runs[1], "1 vs 2 threads");
    assert_eq!(runs[0], runs[2], "1 vs 8 threads");
}
