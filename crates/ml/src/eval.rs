//! Classifier evaluation: confusion matrices, accuracy, per-class
//! metrics, and k-fold cross-validation — the WEKA `Evaluation` module.

use std::fmt;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::classifier::Classifier;
use crate::data::{Dataset, MlError};

/// A square confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    class_names: Vec<String>,
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// An all-zero matrix over the given classes.
    pub fn new(class_names: Vec<String>) -> ConfusionMatrix {
        let n = class_names.len();
        ConfusionMatrix {
            class_names,
            counts: vec![vec![0; n]; n],
        }
    }

    /// Record one `(actual, predicted)` outcome.
    ///
    /// # Panics
    ///
    /// Panics when either label is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        self.counts[actual][predicted] += 1;
    }

    /// The raw counts.
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }

    /// Class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Total instances recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Correctly classified instances.
    pub fn correct(&self) -> usize {
        (0..self.counts.len()).map(|i| self.counts[i][i]).sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.correct() as f64 / total as f64
        }
    }

    /// Recall of one class (true-positive rate); 0 when the class never
    /// occurs.
    pub fn recall(&self, class: usize) -> f64 {
        let row: usize = self.counts[class].iter().sum();
        if row == 0 {
            0.0
        } else {
            self.counts[class][class] as f64 / row as f64
        }
    }

    /// Precision of one class; 0 when the class is never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let column: usize = self.counts.iter().map(|r| r[class]).sum();
        if column == 0 {
            0.0
        } else {
            self.counts[class][class] as f64 / column as f64
        }
    }

    /// F1 score of one class.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Cohen's kappa (chance-corrected agreement).
    pub fn kappa(&self) -> f64 {
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let po = self.accuracy();
        let pe: f64 = (0..self.counts.len())
            .map(|c| {
                let row: usize = self.counts[c].iter().sum();
                let col: usize = self.counts.iter().map(|r| r[c]).sum();
                (row as f64 / total) * (col as f64 / total)
            })
            .sum();
        if (1.0 - pe).abs() < 1e-12 {
            0.0
        } else {
            (po - pe) / (1.0 - pe)
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>12}", "actual\\pred")?;
        for name in &self.class_names {
            write!(f, " {name:>10}")?;
        }
        writeln!(f)?;
        for (i, row) in self.counts.iter().enumerate() {
            write!(f, "{:>12}", self.class_names[i])?;
            for &c in row {
                write!(f, " {c:>10}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The result of evaluating a trained classifier on a test set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    scheme: String,
    confusion: ConfusionMatrix,
}

impl Evaluation {
    /// Wrap a confusion matrix computed elsewhere (e.g. by a committee
    /// whose voting logic lives outside the [`Classifier`] trait).
    pub fn from_confusion(scheme: &str, confusion: ConfusionMatrix) -> Evaluation {
        Evaluation {
            scheme: scheme.to_owned(),
            confusion,
        }
    }

    /// Evaluate `classifier` (already trained) on `test`.
    ///
    /// Predictions run through [`Classifier::predict_batch`] over the
    /// dataset's columnar row view, so schemes with a compiled flat
    /// form ([`crate::compiled`]) classify the whole test set in one
    /// batched pass.
    pub fn of<C: Classifier + ?Sized>(classifier: &C, test: &Dataset) -> Evaluation {
        let latency = hbmd_obs::timer_with("predict_ns", &[("scheme", classifier.name())]);
        hbmd_obs::add("eval.instances", test.len() as u64);
        let mut confusion = ConfusionMatrix::new(test.class_names().to_vec());
        let predictions = classifier.predict_batch(test.rows());
        for (&label, prediction) in test.labels().iter().zip(predictions) {
            confusion.record(label, prediction);
        }
        latency.stop();
        Evaluation {
            scheme: classifier.name().to_owned(),
            confusion,
        }
    }

    /// Train `classifier` on `train`, then evaluate on `test` — the
    /// paper's 70/30 protocol in one call.
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn train_test<C: Classifier + ?Sized>(
        classifier: &mut C,
        train: &Dataset,
        test: &Dataset,
    ) -> Result<Evaluation, MlError> {
        crate::classifier::fit_timed(classifier, train)?;
        Ok(Evaluation::of(classifier, test))
    }

    /// The classifier scheme name.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The confusion matrix.
    pub fn confusion(&self) -> &ConfusionMatrix {
        &self.confusion
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }

    /// Cohen's kappa.
    pub fn kappa(&self) -> f64 {
        self.confusion.kappa()
    }

    /// Per-class recall, indexed by label — the "per-class accuracy" of
    /// the paper's Figure 18.
    pub fn per_class_recall(&self) -> Vec<f64> {
        (0..self.confusion.class_names().len())
            .map(|c| self.confusion.recall(c))
            .collect()
    }

    /// Per-class F1, indexed by label.
    pub fn per_class_f1(&self) -> Vec<f64> {
        (0..self.confusion.class_names().len())
            .map(|c| self.confusion.f1(c))
            .collect()
    }
}

/// Stratified k-fold cross-validation: `factory` builds a fresh
/// classifier per fold; the returned evaluations are one per fold.
///
/// Folds are trained and evaluated in parallel on the machine's
/// available threads; see [`cross_validate_with_threads`] for the
/// determinism guarantee and an explicit thread knob.
///
/// # Errors
///
/// Returns [`MlError::Config`] when `k < 2` or `k > data.len()`, and
/// propagates training errors.
pub fn cross_validate<C, F>(
    factory: F,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Result<Vec<Evaluation>, MlError>
where
    C: Classifier,
    F: Fn() -> C + Sync,
{
    cross_validate_with_threads(factory, data, k, seed, crate::par::default_threads())
}

/// [`cross_validate`] with an explicit worker-thread count.
///
/// The seeded fold assignment is computed up front on the calling
/// thread; each fold's train/evaluate is then a pure function of the
/// assignment, so the returned evaluations are byte-identical at any
/// `threads` value (1 = fully sequential).
///
/// # Errors
///
/// As [`cross_validate`].
pub fn cross_validate_with_threads<C, F>(
    factory: F,
    data: &Dataset,
    k: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<Evaluation>, MlError>
where
    C: Classifier,
    F: Fn() -> C + Sync,
{
    if k < 2 {
        return Err(MlError::Config("cross-validation needs k >= 2".to_owned()));
    }
    if k > data.len() {
        return Err(MlError::Config(format!(
            "k = {k} exceeds the {} instances",
            data.len()
        )));
    }
    // Stratified fold assignment: spread each class round-robin.
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut fold_of = vec![0usize; data.len()];
    for class in 0..data.num_classes() {
        let mut members: Vec<usize> = (0..data.len())
            .filter(|&i| data.labels()[i] == class)
            .collect();
        members.shuffle(&mut rng);
        for (j, &i) in members.iter().enumerate() {
            fold_of[i] = j % k;
        }
    }

    let folds: Vec<usize> = (0..k).collect();
    crate::par::try_par_map(&folds, threads, |_, &fold| {
        let train_idx: Vec<usize> = (0..data.len()).filter(|&i| fold_of[i] != fold).collect();
        let test_idx: Vec<usize> = (0..data.len()).filter(|&i| fold_of[i] == fold).collect();
        let train = data.subset(&train_idx);
        let test = data.subset(&test_idx);
        let mut classifier = factory();
        classifier.fit(&train)?;
        Ok(Evaluation::of(&classifier, &test))
    })
}

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for ConfusionMatrix {
    fn snap(&self, w: &mut SnapWriter) {
        self.class_names.snap(w);
        self.counts.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let class_names: Vec<String> = Snap::unsnap(r)?;
        let counts: Vec<Vec<usize>> = Snap::unsnap(r)?;
        let n = class_names.len();
        if counts.len() != n || counts.iter().any(|row| row.len() != n) {
            return Err(SnapError::Invalid(format!("confusion matrix not {n}x{n}")));
        }
        Ok(ConfusionMatrix {
            class_names,
            counts,
        })
    }
}

impl Snap for Evaluation {
    fn snap(&self, w: &mut SnapWriter) {
        self.scheme.snap(w);
        self.confusion.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Evaluation {
            scheme: Snap::unsnap(r)?,
            confusion: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifiers::one_r::OneR;
    use crate::classifiers::zero_r::ZeroR;

    fn separable(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()]).expect("schema");
        for i in 0..n {
            d.push(vec![i as f64], usize::from(i >= n / 2))
                .expect("row");
        }
        d
    }

    #[test]
    fn confusion_metrics_on_a_known_matrix() {
        let mut cm = ConfusionMatrix::new(vec!["a".into(), "b".into()]);
        // 8 a-correct, 2 a-as-b, 1 b-as-a, 9 b-correct.
        for _ in 0..8 {
            cm.record(0, 0);
        }
        for _ in 0..2 {
            cm.record(0, 1);
        }
        cm.record(1, 0);
        for _ in 0..9 {
            cm.record(1, 1);
        }
        assert_eq!(cm.total(), 20);
        assert_eq!(cm.correct(), 17);
        assert!((cm.accuracy() - 0.85).abs() < 1e-12);
        assert!((cm.recall(0) - 0.8).abs() < 1e-12);
        assert!((cm.precision(0) - 8.0 / 9.0).abs() < 1e-12);
        assert!(cm.f1(0) > 0.8 && cm.f1(0) < 0.9);
        assert!(cm.kappa() > 0.5);
    }

    #[test]
    fn kappa_is_zero_for_constant_predictions() {
        let mut cm = ConfusionMatrix::new(vec!["a".into(), "b".into()]);
        for _ in 0..10 {
            cm.record(0, 0);
        }
        for _ in 0..10 {
            cm.record(1, 0);
        }
        assert!((cm.accuracy() - 0.5).abs() < 1e-12);
        assert!(cm.kappa().abs() < 1e-12);
    }

    #[test]
    fn evaluation_train_test_protocol() {
        let data = separable(100);
        let (train, test) = data.split(0.7, 1);
        let mut one_r = OneR::new();
        let eval = Evaluation::train_test(&mut one_r, &train, &test).expect("train");
        assert!(eval.accuracy() > 0.85);
        assert_eq!(eval.scheme(), "OneR");
        assert_eq!(eval.per_class_recall().len(), 2);
    }

    #[test]
    fn zero_r_accuracy_matches_class_balance() {
        let data = separable(100);
        let mut zr = ZeroR::new();
        let eval = Evaluation::train_test(&mut zr, &data, &data).expect("train");
        assert!((eval.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cross_validation_returns_k_folds() {
        let data = separable(60);
        let evals = cross_validate(OneR::new, &data, 5, 3).expect("cv");
        assert_eq!(evals.len(), 5);
        let mean: f64 = evals.iter().map(|e| e.accuracy()).sum::<f64>() / 5.0;
        assert!(mean > 0.85, "mean accuracy {mean}");
        // Folds cover every instance exactly once.
        let total: usize = evals.iter().map(|e| e.confusion().total()).sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn cross_validation_is_thread_count_invariant() {
        let data = separable(60);
        let baseline = cross_validate_with_threads(OneR::new, &data, 5, 3, 1).expect("cv");
        for threads in [2, 8] {
            let parallel = cross_validate_with_threads(OneR::new, &data, 5, 3, threads)
                .unwrap_or_else(|e| panic!("cv at {threads} threads: {e}"));
            assert_eq!(parallel, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn cross_validation_validates_k() {
        let data = separable(10);
        assert!(cross_validate(OneR::new, &data, 1, 0).is_err());
        assert!(cross_validate(OneR::new, &data, 11, 0).is_err());
    }

    #[test]
    fn display_renders_all_classes() {
        let mut cm = ConfusionMatrix::new(vec!["benign".into(), "malware".into()]);
        cm.record(0, 1);
        let text = cm.to_string();
        assert!(text.contains("benign"));
        assert!(text.contains("malware"));
    }
}
