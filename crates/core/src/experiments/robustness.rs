//! Robustness extension: accuracy and abstention under a degrading
//! collection pipeline.
//!
//! The reference evaluation assumes pristine counter streams; real PMU
//! collection drops windows, saturates counters, and starves
//! multiplexed events. This experiment trains detectors on a clean
//! collection, then sweeps the fault-injection rate over an *unseen*
//! evaluation catalog and measures how gracefully each classifier
//! degrades when its windows are screened by the
//! [`Sanitizer`](crate::Sanitizer): repairable corruption is imputed,
//! hopeless windows abstain, and accuracy is reported over the windows
//! the detector actually decided.

use hbmd_malware::SampleCatalog;
use hbmd_ml::par::try_par_map;
use hbmd_perf::{CollectorConfig, FaultPlan};
use serde::{Deserialize, Serialize};

use crate::detector::DetectorBuilder;
use crate::error::CoreError;
use crate::experiments::cache::{catalog_recipe, CollectCache};
use crate::experiments::ExperimentConfig;
use crate::suite::ClassifierKind;

/// One cell of the fault-rate × classifier sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Uniform per-mode fault activation rate injected during the
    /// evaluation collection.
    pub fault_rate: f64,
    /// Classifier scheme under test.
    pub scheme: ClassifierKind,
    /// Binary accuracy over the windows the detector decided (abstained
    /// windows excluded); NaN when every window abstained.
    pub accuracy: f64,
    /// Fraction of evaluation windows the detector abstained on.
    pub abstain_rate: f64,
    /// Evaluation windows observed (post-fault, so drops and
    /// duplications shift this across rates).
    pub windows: usize,
    /// Samples quarantined by the collector after retries.
    pub quarantined: usize,
    /// Retry attempts the collector spent.
    pub retries: usize,
}

/// Sweep fault rates against classifier schemes.
///
/// Detectors are trained once per scheme on the configured *clean*
/// collection, then evaluated on a fresh catalog (ids unseen during
/// training) collected through a [`FaultPlan::uniform`] pipeline at
/// each rate. Everything is deterministic from the experiment config:
/// the fault seed is derived from the catalog seed and the rate's
/// index.
///
/// # Errors
///
/// Returns [`CoreError::Config`] for an empty scheme or rate list,
/// propagates training errors, and propagates
/// [`DegradedCollection`](hbmd_perf::PerfError::DegradedCollection)
/// when a rate corrupts the evaluation collection beyond the
/// collector's failure threshold.
pub fn degradation_sweep(
    config: &ExperimentConfig,
    schemes: &[ClassifierKind],
    fault_rates: &[f64],
) -> Result<Vec<RobustnessRow>, CoreError> {
    degradation_sweep_with(CollectCache::global(), config, schemes, fault_rates)
}

/// [`degradation_sweep`] against an explicit [`CollectCache`].
///
/// Detector training is fanned out across schemes and the fault-rate
/// sweep across rates, both on `config.threads` workers; each rate's
/// evaluation collection (and its report) is memoized in `cache`, so
/// re-running the sweep — or running it at a different thread count —
/// collects each faulted pipeline exactly once.
///
/// # Errors
///
/// Returns [`CoreError::Config`] for an empty scheme or rate list,
/// propagates training errors, and propagates
/// [`DegradedCollection`](hbmd_perf::PerfError::DegradedCollection)
/// when a rate corrupts the evaluation collection beyond the
/// collector's failure threshold.
pub fn degradation_sweep_with(
    cache: &CollectCache,
    config: &ExperimentConfig,
    schemes: &[ClassifierKind],
    fault_rates: &[f64],
) -> Result<Vec<RobustnessRow>, CoreError> {
    if schemes.is_empty() || fault_rates.is_empty() {
        return Err(CoreError::Config(
            "need at least one scheme and one fault rate".to_owned(),
        ));
    }

    let train_data = &cache.collect(config)?.dataset;
    let detectors = try_par_map(schemes, config.threads, |_, &scheme| {
        DetectorBuilder::new()
            .classifier(scheme)
            .train_binary(train_data)
            .map(|d| (scheme, d))
    })?;

    // Fresh specimen stream: same class mix, ids and behaviour seeds
    // the detectors have never seen.
    let eval_fraction = config.catalog_fraction.min(1.0);
    let eval_seed = config.catalog_seed ^ 0x0BAD_F00D;
    let eval_recipe = catalog_recipe(eval_fraction, eval_seed);

    let per_rate = try_par_map(fault_rates, config.threads, |k, &rate| {
        let collector = CollectorConfig {
            fault: (rate > 0.0)
                .then(|| FaultPlan::uniform(rate, config.catalog_seed ^ (k as u64) << 32)),
            ..config.collector.clone()
        };
        let collection = cache.collect_catalog(&collector, &eval_recipe, || {
            SampleCatalog::scaled(eval_fraction, eval_seed)
        })?;
        let (eval_data, report) = (&collection.dataset, &collection.report);

        let rows: Vec<RobustnessRow> = detectors
            .iter()
            .map(|(scheme, detector)| {
                let mut decided = 0usize;
                let mut correct = 0usize;
                let mut abstained = 0usize;
                for row in eval_data.rows() {
                    let verdict = detector.classify_sanitized(&row.features);
                    if verdict.is_abstain() {
                        abstained += 1;
                    } else {
                        decided += 1;
                        if verdict.is_malware() == row.class.is_malware() {
                            correct += 1;
                        }
                    }
                }
                RobustnessRow {
                    fault_rate: rate,
                    scheme: *scheme,
                    accuracy: if decided == 0 {
                        f64::NAN
                    } else {
                        correct as f64 / decided as f64
                    },
                    abstain_rate: if eval_data.is_empty() {
                        0.0
                    } else {
                        abstained as f64 / eval_data.len() as f64
                    },
                    windows: eval_data.len(),
                    quarantined: report.quarantined.len(),
                    retries: report.retries,
                }
            })
            .collect();
        Ok::<Vec<RobustnessRow>, CoreError>(rows)
    })?;
    Ok(per_rate.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMES: [ClassifierKind; 3] = [
        ClassifierKind::J48,
        ClassifierKind::Logistic,
        ClassifierKind::NaiveBayes,
    ];

    #[test]
    fn accuracy_degrades_gracefully_not_cliff() {
        let rates = [0.0, 0.05, 0.1, 0.2];
        let rows = degradation_sweep(&ExperimentConfig::fast(), &SCHEMES, &rates).expect("sweep");
        assert_eq!(rows.len(), SCHEMES.len() * rates.len());

        for &scheme in &SCHEMES {
            let of_scheme: Vec<&RobustnessRow> =
                rows.iter().filter(|r| r.scheme == scheme).collect();
            let clean = of_scheme[0];
            let worst = of_scheme.last().expect("rows");
            assert_eq!(clean.fault_rate, 0.0);
            assert!(
                clean.accuracy > 0.6,
                "{scheme:?} clean accuracy {}",
                clean.accuracy
            );
            assert_eq!(clean.abstain_rate, 0.0, "{scheme:?} abstained when clean");
            // Graceful degradation: at a 20% fault rate the sanitised
            // pipeline must stay far above the cliff floor.
            assert!(
                worst.accuracy > 0.45,
                "{scheme:?} fell off a cliff: {} at rate {}",
                worst.accuracy,
                worst.fault_rate
            );
        }

        // Heavier faulting means more abstention somewhere in the sweep.
        let clean_abstain: f64 = rows
            .iter()
            .filter(|r| r.fault_rate == 0.0)
            .map(|r| r.abstain_rate)
            .sum();
        let worst_abstain: f64 = rows
            .iter()
            .filter(|r| r.fault_rate == 0.2)
            .map(|r| r.abstain_rate)
            .sum();
        assert_eq!(clean_abstain, 0.0);
        assert!(
            worst_abstain > 0.0,
            "a 20% fault rate should force some abstention"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let rates = [0.1];
        let schemes = [ClassifierKind::J48];
        let a = degradation_sweep(&ExperimentConfig::fast(), &schemes, &rates).expect("sweep");
        let b = degradation_sweep(&ExperimentConfig::fast(), &schemes, &rates).expect("sweep");
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(degradation_sweep(&ExperimentConfig::fast(), &[], &[0.1]).is_err());
        assert!(degradation_sweep(&ExperimentConfig::fast(), &[ClassifierKind::J48], &[]).is_err());
    }
}
