//! Ensemble-learning extension: the related-work comparison
//! (Khasawneh et al. RAID'15; Sayadi et al. DAC'18) of single learners
//! against boosting, bagging and random forests on the binary HPC
//! detection task.

use hbmd_fpga::{synthesize, SynthConfig};
use hbmd_ml::par::try_par_map;
use hbmd_ml::Evaluation;
use serde::{Deserialize, Serialize};

use crate::convert::to_binary_dataset;
use crate::error::CoreError;
use crate::experiments::cache::CollectCache;
use crate::experiments::ExperimentConfig;
use crate::features::{FeaturePlan, FeatureSet};
use crate::suite::ClassifierKind;

/// One scheme's row of the ensemble comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleRow {
    /// Scheme.
    pub scheme: ClassifierKind,
    /// Held-out accuracy with the PCA top-8 features.
    pub accuracy: f64,
    /// Hardware area of the trained model.
    pub area_units: f64,
    /// Hardware latency in cycles.
    pub latency_cycles: u64,
}

impl EnsembleRow {
    /// The accuracy-per-area figure of merit.
    pub fn accuracy_per_area(&self) -> f64 {
        if self.area_units <= 0.0 {
            0.0
        } else {
            self.accuracy / (self.area_units / 1000.0)
        }
    }
}

/// Compare single learners against their ensemble counterparts:
/// DecisionStump vs AdaBoostM1(stumps), J48 vs Bagging(J48) vs
/// RandomForest.
///
/// # Errors
///
/// Propagates collection, training, and synthesis errors.
pub fn comparison(config: &ExperimentConfig) -> Result<Vec<EnsembleRow>, CoreError> {
    comparison_with(CollectCache::global(), config)
}

/// [`comparison`] against an explicit [`CollectCache`]; the five
/// schemes train, evaluate and synthesise in parallel on
/// `config.threads` workers.
///
/// # Errors
///
/// Propagates collection, training, and synthesis errors.
pub fn comparison_with(
    cache: &CollectCache,
    config: &ExperimentConfig,
) -> Result<Vec<EnsembleRow>, CoreError> {
    let collection = cache.collect(config)?;
    let (train_hpc, test_hpc) = collection.dataset.split(0.7, config.split_seed);
    let plan = FeaturePlan::fit(&train_hpc)?;
    let indices = plan.resolve(FeatureSet::Top(8))?;
    let train = to_binary_dataset(&train_hpc).select_features(&indices)?;
    let test = to_binary_dataset(&test_hpc).select_features(&indices)?;

    let schemes = [
        ClassifierKind::DecisionStump,
        ClassifierKind::AdaBoost,
        ClassifierKind::J48,
        ClassifierKind::Bagging,
        ClassifierKind::RandomForest,
    ];
    let synth = SynthConfig::default();
    try_par_map(&schemes, config.threads, |_, &scheme| {
        let mut model = scheme.instantiate();
        hbmd_ml::fit_timed(&mut model, &train)?;
        let accuracy = Evaluation::of(&model, &test).accuracy();
        let report = synthesize(&model.datapath()?, &synth);
        Ok::<EnsembleRow, CoreError>(EnsembleRow {
            scheme,
            accuracy,
            area_units: report.area_units(),
            latency_cycles: report.latency_cycles,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_schemes_report() {
        let rows = comparison(&ExperimentConfig::fast()).expect("experiment");
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.accuracy > 0.5, "{}: {}", row.scheme, row.accuracy);
            assert!(row.area_units > 0.0);
            assert!(row.accuracy_per_area() > 0.0);
        }
    }

    #[test]
    fn ensembles_do_not_lose_to_their_base_learners() {
        let rows = comparison(&ExperimentConfig::fast()).expect("experiment");
        let accuracy = |kind: ClassifierKind| {
            rows.iter()
                .find(|r| r.scheme == kind)
                .expect("row")
                .accuracy
        };
        // Boosted stumps at least match a single stump. Bagging is
        // allowed a wider small-sample slack: at the fast test scale a
        // bootstrap discards ~37% of an already-tiny training set per
        // member, which a 10-member vote cannot fully recover (the gap
        // closes at the repro scales recorded in EXPERIMENTS.md).
        assert!(
            accuracy(ClassifierKind::AdaBoost) >= accuracy(ClassifierKind::DecisionStump) - 0.03
        );
        assert!(accuracy(ClassifierKind::Bagging) >= accuracy(ClassifierKind::J48) - 0.10);
    }

    #[test]
    fn ensembles_cost_more_silicon() {
        let rows = comparison(&ExperimentConfig::fast()).expect("experiment");
        let area = |kind: ClassifierKind| {
            rows.iter()
                .find(|r| r.scheme == kind)
                .expect("row")
                .area_units
        };
        assert!(area(ClassifierKind::AdaBoost) > area(ClassifierKind::DecisionStump));
        assert!(area(ClassifierKind::RandomForest) > area(ClassifierKind::J48));
    }
}
