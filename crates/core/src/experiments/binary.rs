//! Figure 13: binary detection accuracy across the classifier suite
//! with PCA-reduced 8- and 4-feature inputs.

use hbmd_ml::par::try_par_map;
use hbmd_ml::Evaluation;
use serde::{Deserialize, Serialize};

use crate::convert::to_binary_dataset;
use crate::error::CoreError;
use crate::experiments::cache::CollectCache;
use crate::experiments::ExperimentConfig;
use crate::features::{FeaturePlan, FeatureSet};
use crate::suite::ClassifierKind;

/// One classifier's row of the Figure 13 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinaryAccuracyRow {
    /// Classifier scheme.
    pub scheme: ClassifierKind,
    /// Test accuracy with the PCA top-8 features.
    pub accuracy_top8: f64,
    /// Test accuracy with the PCA top-4 features.
    pub accuracy_top4: f64,
    /// Test accuracy with all 16 features (context column).
    pub accuracy_full: f64,
}

impl BinaryAccuracyRow {
    /// Accuracy lost by halving the features from 8 to 4 (negative
    /// means 4 features did better).
    pub fn reduction_cost(&self) -> f64 {
        self.accuracy_top8 - self.accuracy_top4
    }
}

/// Run the Figure 13 experiment: train/test every scheme of the binary
/// suite with 16, top-8 and top-4 features over the same 70/30 split.
///
/// # Errors
///
/// Propagates collection, feature-plan, and training errors.
pub fn accuracy_comparison(config: &ExperimentConfig) -> Result<Vec<BinaryAccuracyRow>, CoreError> {
    accuracy_comparison_with(CollectCache::global(), config)
}

/// [`accuracy_comparison`] against an explicit [`CollectCache`].
///
/// The three feature-reduced train/test pairs are materialized once,
/// outside the scheme loop, and the eight schemes train in parallel on
/// `config.threads` workers (byte-identical results at any count).
///
/// # Errors
///
/// Propagates collection, feature-plan, and training errors.
pub fn accuracy_comparison_with(
    cache: &CollectCache,
    config: &ExperimentConfig,
) -> Result<Vec<BinaryAccuracyRow>, CoreError> {
    let collection = cache.collect(config)?;
    let (train_hpc, test_hpc) = collection.dataset.split(0.7, config.split_seed);
    let plan = FeaturePlan::fit(&train_hpc)?;
    let train_full = to_binary_dataset(&train_hpc);
    let test_full = to_binary_dataset(&test_hpc);

    // Feature selection depends only on the plan, not on the scheme:
    // project each set once instead of once per scheme.
    let mut splits = Vec::with_capacity(3);
    for set in [FeatureSet::Full16, FeatureSet::Top(8), FeatureSet::Top(4)] {
        let indices = plan.resolve(set)?;
        splits.push((
            train_full.select_features(&indices)?,
            test_full.select_features(&indices)?,
        ));
    }

    let schemes = ClassifierKind::binary_suite();
    try_par_map(&schemes, config.threads, |_, &scheme| {
        let mut accuracies = [0.0f64; 3];
        for (slot, (train, test)) in splits.iter().enumerate() {
            let mut model = scheme.instantiate();
            hbmd_ml::fit_timed(&mut model, train)?;
            accuracies[slot] = Evaluation::of(&model, test).accuracy();
        }
        Ok::<BinaryAccuracyRow, CoreError>(BinaryAccuracyRow {
            scheme,
            accuracy_full: accuracies[0],
            accuracy_top8: accuracies[1],
            accuracy_top4: accuracies[2],
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_report_and_beat_chance() {
        let rows = accuracy_comparison(&ExperimentConfig::fast()).expect("experiment");
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(
                row.accuracy_top8 > 0.55,
                "{}: top-8 accuracy {}",
                row.scheme,
                row.accuracy_top8
            );
            assert!((0.0..=1.0).contains(&row.accuracy_top4));
            assert!((0.0..=1.0).contains(&row.accuracy_full));
        }
    }

    #[test]
    fn feature_reduction_cost_is_bounded() {
        // The paper's observation: most classifiers lose a little going
        // from 8 to 4 features; none should fall apart.
        let rows = accuracy_comparison(&ExperimentConfig::fast()).expect("experiment");
        for row in &rows {
            assert!(
                row.reduction_cost() < 0.30,
                "{} collapsed: {} -> {}",
                row.scheme,
                row.accuracy_top8,
                row.accuracy_top4
            );
        }
    }
}
