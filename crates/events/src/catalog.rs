//! The Haswell i5-4590 performance event catalog.
//!
//! The reference platform exposes **more than 86 microarchitectural
//! events, 52 of which are hardware events**, multiplexed onto **8
//! programmable counter registers**. The detector only *collects* the 16
//! events in [`HpcEvent`], but the other hardware events still matter:
//! when more events are programmed than registers exist, the kernel
//! time-slices them and reports scaled estimates, and that multiplexing
//! noise is part of the measured signal. This module provides the full
//! catalog so the PMU model in `hbmd-perf` can reproduce the scheduling
//! pressure of the real platform.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::event::{EventKind, HpcEvent};

/// One entry of the platform event catalog.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventDescriptor {
    /// Canonical `perf` name.
    pub name: String,
    /// Broad category.
    pub kind: EventKind,
    /// The collected-feature identity, when this catalog entry is one of
    /// the 16 events the detector reads.
    pub collected: Option<HpcEvent>,
}

impl fmt::Display for EventDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.kind)
    }
}

/// The Haswell i5-4590 event catalog: 52 hardware events (8 programmable
/// counter registers) plus the software events `perf` lists alongside
/// them.
///
/// # Examples
///
/// ```
/// use hbmd_events::HaswellCatalog;
///
/// let catalog = HaswellCatalog::new();
/// assert_eq!(catalog.hardware_events().count(), 52);
/// assert_eq!(catalog.programmable_counters(), 8);
/// assert_eq!(catalog.collected_events().count(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HaswellCatalog {
    entries: Vec<EventDescriptor>,
}

impl HaswellCatalog {
    /// Number of programmable PMU counter registers on the platform.
    pub const PROGRAMMABLE_COUNTERS: usize = 8;

    /// Number of hardware events in the catalog.
    pub const HARDWARE_EVENTS: usize = 52;

    /// Build the catalog.
    pub fn new() -> HaswellCatalog {
        let mut entries = Vec::with_capacity(64);

        // The 16 collected events come first, in feature-column order.
        for event in HpcEvent::ALL {
            entries.push(EventDescriptor {
                name: event.name().to_owned(),
                kind: event.kind(),
                collected: Some(event),
            });
        }

        // Remaining hardware events: present on the platform and eligible
        // for PMU scheduling, but never used as detector features.
        let extra_hardware: [(&str, EventKind); 36] = [
            ("cpu-cycles", EventKind::Core),
            ("instructions", EventKind::Core),
            ("ref-cycles", EventKind::Core),
            ("bus-cycles", EventKind::Core),
            ("stalled-cycles-frontend", EventKind::Core),
            ("stalled-cycles-backend", EventKind::Core),
            ("uops-issued", EventKind::Core),
            ("uops-retired", EventKind::Core),
            ("uops-executed", EventKind::Core),
            ("idq-uops-delivered", EventKind::Core),
            ("machine-clears", EventKind::Core),
            ("L1-dcache-prefetches", EventKind::Cache),
            ("L1-dcache-prefetch-misses", EventKind::Cache),
            ("L1-icache-loads", EventKind::Cache),
            ("L2-loads", EventKind::Cache),
            ("L2-load-misses", EventKind::Cache),
            ("L2-stores", EventKind::Cache),
            ("L2-store-misses", EventKind::Cache),
            ("L2-prefetches", EventKind::Cache),
            ("LLC-stores", EventKind::Cache),
            ("LLC-store-misses", EventKind::Cache),
            ("LLC-prefetches", EventKind::Cache),
            ("LLC-prefetch-misses", EventKind::Cache),
            ("dTLB-loads", EventKind::Tlb),
            ("dTLB-stores", EventKind::Tlb),
            ("dTLB-store-misses", EventKind::Tlb),
            ("dTLB-prefetches", EventKind::Tlb),
            ("iTLB-loads", EventKind::Tlb),
            ("page-walks", EventKind::Tlb),
            ("page-walk-cycles", EventKind::Tlb),
            ("node-load-misses", EventKind::Memory),
            ("node-store-misses", EventKind::Memory),
            ("node-prefetches", EventKind::Memory),
            ("node-prefetch-misses", EventKind::Memory),
            ("mem-loads-latency", EventKind::Memory),
            ("mem-stores-latency", EventKind::Memory),
        ];
        for (name, kind) in extra_hardware {
            entries.push(EventDescriptor {
                name: name.to_owned(),
                kind,
                collected: None,
            });
        }
        debug_assert_eq!(
            entries.len(),
            HaswellCatalog::HARDWARE_EVENTS,
            "hardware event census drifted"
        );

        // Software events: kernel-maintained, never PMU-scheduled. They
        // round the platform out past 86 total events.
        let software: [&str; 35] = [
            "cpu-clock",
            "task-clock",
            "page-faults",
            "minor-faults",
            "major-faults",
            "context-switches",
            "cpu-migrations",
            "alignment-faults",
            "emulation-faults",
            "dummy",
            "bpf-output",
            "sched:sched_switch",
            "sched:sched_wakeup",
            "sched:sched_migrate_task",
            "syscalls:sys_enter",
            "syscalls:sys_exit",
            "irq:irq_handler_entry",
            "irq:softirq_entry",
            "kmem:kmalloc",
            "kmem:kfree",
            "kmem:mm_page_alloc",
            "kmem:mm_page_free",
            "block:block_rq_issue",
            "block:block_rq_complete",
            "net:net_dev_xmit",
            "net:netif_rx",
            "ext4:ext4_da_write_begin",
            "ext4:ext4_da_write_end",
            "writeback:writeback_dirty_page",
            "timer:timer_expire_entry",
            "timer:hrtimer_expire_entry",
            "signal:signal_generate",
            "signal:signal_deliver",
            "power:cpu_frequency",
            "power:cpu_idle",
        ];
        for name in software {
            entries.push(EventDescriptor {
                name: name.to_owned(),
                kind: EventKind::Software,
                collected: None,
            });
        }

        HaswellCatalog { entries }
    }

    /// Number of programmable PMU counter registers.
    pub fn programmable_counters(&self) -> usize {
        HaswellCatalog::PROGRAMMABLE_COUNTERS
    }

    /// All catalog entries, hardware first.
    pub fn entries(&self) -> &[EventDescriptor] {
        &self.entries
    }

    /// Hardware events only (PMU-scheduled, multiplexing-relevant).
    pub fn hardware_events(&self) -> impl Iterator<Item = &EventDescriptor> {
        self.entries
            .iter()
            .filter(|e| e.kind != EventKind::Software)
    }

    /// Software events only.
    pub fn software_events(&self) -> impl Iterator<Item = &EventDescriptor> {
        self.entries
            .iter()
            .filter(|e| e.kind == EventKind::Software)
    }

    /// The 16 collected detector-feature events, in column order.
    pub fn collected_events(&self) -> impl Iterator<Item = &EventDescriptor> {
        self.entries.iter().filter(|e| e.collected.is_some())
    }

    /// Look an event up by `perf` name.
    pub fn find(&self, name: &str) -> Option<&EventDescriptor> {
        self.entries.iter().find(|e| e.name == name)
    }
}

impl Default for HaswellCatalog {
    fn default() -> HaswellCatalog {
        HaswellCatalog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_matches_platform() {
        let c = HaswellCatalog::new();
        assert_eq!(c.hardware_events().count(), 52, "52 hardware events");
        assert!(c.entries().len() > 86, "more than 86 events total");
        assert_eq!(c.programmable_counters(), 8);
    }

    #[test]
    fn collected_events_are_the_sixteen_features_in_order() {
        let c = HaswellCatalog::new();
        let collected: Vec<HpcEvent> = c.collected_events().map(|e| e.collected.unwrap()).collect();
        assert_eq!(collected, HpcEvent::ALL.to_vec());
    }

    #[test]
    fn names_are_unique() {
        let c = HaswellCatalog::new();
        let mut names: Vec<&str> = c.entries().iter().map(|e| e.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn find_hits_and_misses() {
        let c = HaswellCatalog::new();
        assert!(c.find("cpu-cycles").is_some());
        assert_eq!(
            c.find("branch-misses").unwrap().collected,
            Some(HpcEvent::BranchMisses)
        );
        assert!(c.find("no-such-event").is_none());
    }

    #[test]
    fn software_events_are_not_collected() {
        let c = HaswellCatalog::new();
        assert!(c.software_events().all(|e| e.collected.is_none()));
    }
}
