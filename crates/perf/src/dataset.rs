use hbmd_events::{FeatureVector, HpcEvent};
use hbmd_malware::{AppClass, SampleId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One dataset row: a sampling window of one sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataRow {
    /// Which sample the window came from.
    pub sample: SampleId,
    /// Ground-truth (labeller-assigned) class.
    pub class: AppClass,
    /// Scaled per-event feature values.
    pub features: FeatureVector,
}

/// The assembled labelled HPC dataset: rows of 16 features plus a class
/// column, 70/30 splittable — the in-memory form of the reference
/// pipeline's combined CSV file.
///
/// # Examples
///
/// ```
/// use hbmd_events::FeatureVector;
/// use hbmd_malware::{AppClass, SampleId};
/// use hbmd_perf::{DataRow, HpcDataset};
///
/// let mut dataset = HpcDataset::new();
/// dataset.push(DataRow {
///     sample: SampleId(0),
///     class: AppClass::Benign,
///     features: FeatureVector::zeroed(),
/// });
/// assert_eq!(dataset.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HpcDataset {
    rows: Vec<DataRow>,
}

impl HpcDataset {
    /// An empty dataset.
    pub fn new() -> HpcDataset {
        HpcDataset::default()
    }

    /// A dataset over the given rows.
    pub fn from_rows(rows: Vec<DataRow>) -> HpcDataset {
        HpcDataset { rows }
    }

    /// Append one row.
    pub fn push(&mut self, row: DataRow) {
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[DataRow] {
        &self.rows
    }

    /// Iterate rows of one class.
    pub fn of_class(&self, class: AppClass) -> impl Iterator<Item = &DataRow> {
        self.rows.iter().filter(move |r| r.class == class)
    }

    /// Rows per class, indexed by [`AppClass::index`].
    pub fn class_counts(&self) -> [usize; AppClass::COUNT] {
        let mut counts = [0usize; AppClass::COUNT];
        for row in &self.rows {
            counts[row.class.index()] += 1;
        }
        counts
    }

    /// A dataset keeping only rows whose class satisfies `keep`.
    pub fn filtered<F: Fn(AppClass) -> bool>(&self, keep: F) -> HpcDataset {
        HpcDataset {
            rows: self
                .rows
                .iter()
                .filter(|r| keep(r.class))
                .cloned()
                .collect(),
        }
    }

    /// Relabel rows (e.g. collapsing five malware families to a single
    /// `malware` class for binary detection happens in the ML layer;
    /// this keeps the class but lets callers remap).
    pub fn mapped<F: Fn(AppClass) -> AppClass>(&self, map: F) -> HpcDataset {
        HpcDataset {
            rows: self
                .rows
                .iter()
                .map(|r| DataRow {
                    sample: r.sample,
                    class: map(r.class),
                    features: r.features.clone(),
                })
                .collect(),
        }
    }

    /// Split into train and test partitions — 70/30 in the reference
    /// evaluation — **at sample granularity**, stratified by class.
    ///
    /// Splitting whole samples (rather than individual windows) keeps
    /// all windows of one specimen on the same side, preventing the
    /// train/test leakage that window-level splitting of the same binary
    /// would cause.
    ///
    /// # Panics
    ///
    /// Panics when `train_fraction` is not within `(0, 1)`.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (HpcDataset, HpcDataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0, 1), got {train_fraction}"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut train_ids: Vec<SampleId> = Vec::new();
        for class in AppClass::ALL {
            let mut ids: Vec<SampleId> = {
                let mut seen = std::collections::BTreeSet::new();
                self.of_class(class)
                    .filter(|r| seen.insert(r.sample))
                    .map(|r| r.sample)
                    .collect()
            };
            ids.shuffle(&mut rng);
            let take = ((ids.len() as f64) * train_fraction).round() as usize;
            train_ids.extend(ids.into_iter().take(take));
        }
        let train_set: std::collections::BTreeSet<SampleId> = train_ids.into_iter().collect();
        let (train, test): (Vec<DataRow>, Vec<DataRow>) = self
            .rows
            .iter()
            .cloned()
            .partition(|r| train_set.contains(&r.sample));
        (HpcDataset { rows: train }, HpcDataset { rows: test })
    }

    /// Column-major feature matrix plus label vector, the layout the ML
    /// layer consumes. Labels are [`AppClass::index`] values.
    pub fn to_matrix(&self) -> (Vec<Vec<f64>>, Vec<usize>) {
        let rows = self
            .rows
            .iter()
            .map(|r| r.features.as_slice().to_vec())
            .collect();
        let labels = self.rows.iter().map(|r| r.class.index()).collect();
        (rows, labels)
    }

    /// Feature column names in order (the 16 perf event names).
    pub fn feature_names() -> Vec<&'static str> {
        HpcEvent::ALL.iter().map(|e| e.name()).collect()
    }
}

impl FromIterator<DataRow> for HpcDataset {
    fn from_iter<I: IntoIterator<Item = DataRow>>(iter: I) -> HpcDataset {
        HpcDataset {
            rows: iter.into_iter().collect(),
        }
    }
}

impl Extend<DataRow> for HpcDataset {
    fn extend<I: IntoIterator<Item = DataRow>>(&mut self, iter: I) {
        self.rows.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(windows_per_sample: usize, samples_per_class: usize) -> HpcDataset {
        let mut rows = Vec::new();
        let mut id = 0u32;
        for class in AppClass::ALL {
            for _ in 0..samples_per_class {
                for w in 0..windows_per_sample {
                    let mut values = vec![0.0; HpcEvent::COUNT];
                    values[0] = (id as f64) * 100.0 + w as f64;
                    rows.push(DataRow {
                        sample: SampleId(id),
                        class,
                        features: FeatureVector::from_slice(&values).expect("16"),
                    });
                }
                id += 1;
            }
        }
        HpcDataset::from_rows(rows)
    }

    #[test]
    fn counts_and_filters() {
        let d = toy(3, 4);
        assert_eq!(d.len(), 6 * 4 * 3);
        assert_eq!(d.class_counts()[AppClass::Worm.index()], 12);
        let malware_only = d.filtered(|c| c.is_malware());
        assert_eq!(malware_only.len(), 5 * 4 * 3);
    }

    #[test]
    fn mapped_relabels() {
        let d = toy(1, 2);
        let binary = d.mapped(|c| {
            if c.is_malware() {
                AppClass::Trojan
            } else {
                AppClass::Benign
            }
        });
        let counts = binary.class_counts();
        assert_eq!(counts[AppClass::Trojan.index()], 10);
        assert_eq!(counts[AppClass::Benign.index()], 2);
        assert_eq!(counts[AppClass::Worm.index()], 0);
    }

    #[test]
    fn split_is_stratified_and_leak_free() {
        let d = toy(4, 10);
        let (train, test) = d.split(0.7, 42);
        assert_eq!(train.len() + test.len(), d.len());

        // Stratification: each class roughly 70/30 by rows (windows per
        // sample are constant, so row ratios match sample ratios).
        for class in AppClass::ALL {
            let tr = train.class_counts()[class.index()];
            let te = test.class_counts()[class.index()];
            assert_eq!(tr + te, 40);
            assert_eq!(tr, 28, "{class}: 7 of 10 samples in train");
        }

        // No sample straddles the boundary.
        let train_ids: std::collections::BTreeSet<SampleId> =
            train.rows().iter().map(|r| r.sample).collect();
        for row in test.rows() {
            assert!(!train_ids.contains(&row.sample), "leaked {}", row.sample);
        }
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = toy(2, 8);
        let (a_train, _) = d.split(0.7, 1);
        let (b_train, _) = d.split(0.7, 1);
        assert_eq!(a_train, b_train);
        let (c_train, _) = d.split(0.7, 2);
        assert_ne!(a_train, c_train);
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn bad_fraction_panics() {
        let _ = toy(1, 2).split(1.0, 1);
    }

    #[test]
    fn to_matrix_matches_rows() {
        let d = toy(1, 1);
        let (x, y) = d.to_matrix();
        assert_eq!(x.len(), d.len());
        assert_eq!(y.len(), d.len());
        assert_eq!(x[0].len(), HpcEvent::COUNT);
        assert_eq!(y[0], AppClass::Benign.index());
    }

    #[test]
    fn feature_names_are_the_events() {
        let names = HpcDataset::feature_names();
        assert_eq!(names.len(), 16);
        assert_eq!(names[0], "branch-instructions");
        assert_eq!(names[15], "node-stores");
    }

    #[test]
    fn collect_and_extend() {
        let d = toy(1, 1);
        let mut collected: HpcDataset = d.rows().iter().cloned().collect();
        collected.extend(d.rows().iter().cloned());
        assert_eq!(collected.len(), d.len() * 2);
    }
}
