//! Supervisor-visible service health, shared between the pipeline and
//! the exposition server.
//!
//! A [`Health`] is a lock-free bundle of the one state machine and two
//! counters a supervised monitor needs to expose: where the supervisor
//! currently is ([`ServiceState`]), how many times the worker has been
//! restarted, and how many times the circuit breaker has tripped. The
//! serve layer maps it onto `/readyz` (200 only while
//! [`ServiceState::Ready`]); the pipeline mirrors the counters into
//! the metrics [`Registry`](crate::metrics::Registry) so they reach
//! the Prometheus exposition as `hbmd_supervisor_restarts_total` and
//! `hbmd_breaker_trips_total`.
//!
//! # Examples
//!
//! ```
//! use hbmd_obs::health::{Health, ServiceState};
//!
//! let health = Health::new();
//! assert_eq!(health.state(), ServiceState::Starting);
//! health.set_state(ServiceState::Ready);
//! assert!(health.is_ready());
//! health.record_restart();
//! assert_eq!(health.restarts(), 1);
//! ```

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Where the supervised pipeline currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceState {
    /// Booting: training or restoring the detector; not yet serving
    /// verdicts.
    Starting,
    /// Healthy and classifying windows.
    Ready,
    /// Running but degraded: the circuit breaker is open and windows
    /// are abstained instead of classified.
    Degraded,
    /// A worker fault is being recovered: restoring from checkpoint
    /// under backoff.
    Restarting,
}

impl ServiceState {
    /// Lower-case name, as served on `/readyz` and logged.
    pub fn as_str(self) -> &'static str {
        match self {
            ServiceState::Starting => "starting",
            ServiceState::Ready => "ready",
            ServiceState::Degraded => "degraded",
            ServiceState::Restarting => "restarting",
        }
    }
}

impl std::fmt::Display for ServiceState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Shared, lock-free health state: one [`ServiceState`] plus restart
/// and breaker-trip counters. Cheap enough to update from the hot
/// path and safe to read from any scrape thread.
#[derive(Debug, Default)]
pub struct Health {
    state: AtomicU8,
    restarts: AtomicU64,
    trips: AtomicU64,
}

const STATE_TAGS: [ServiceState; 4] = [
    ServiceState::Starting,
    ServiceState::Ready,
    ServiceState::Degraded,
    ServiceState::Restarting,
];

impl Health {
    /// A fresh health record in [`ServiceState::Starting`] with zeroed
    /// counters.
    pub fn new() -> Health {
        Health::default()
    }

    /// The current state.
    pub fn state(&self) -> ServiceState {
        STATE_TAGS[usize::from(self.state.load(Ordering::SeqCst)) % STATE_TAGS.len()]
    }

    /// Move to `state`.
    pub fn set_state(&self, state: ServiceState) {
        let tag = STATE_TAGS
            .iter()
            .position(|&s| s == state)
            .expect("state is one of the four tags") as u8;
        self.state.store(tag, Ordering::SeqCst);
    }

    /// `true` only in [`ServiceState::Ready`] — the `/readyz`
    /// criterion.
    pub fn is_ready(&self) -> bool {
        self.state() == ServiceState::Ready
    }

    /// Count one worker restart.
    pub fn record_restart(&self) {
        self.restarts.fetch_add(1, Ordering::SeqCst);
    }

    /// Worker restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::SeqCst)
    }

    /// Count one circuit-breaker trip.
    pub fn record_trip(&self) {
        self.trips.fetch_add(1, Ordering::SeqCst);
    }

    /// Breaker trips so far.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_machine_roundtrips_all_states() {
        let health = Health::new();
        for state in STATE_TAGS {
            health.set_state(state);
            assert_eq!(health.state(), state);
            assert_eq!(health.is_ready(), state == ServiceState::Ready);
        }
    }

    #[test]
    fn counters_accumulate() {
        let health = Health::new();
        health.record_restart();
        health.record_restart();
        health.record_trip();
        assert_eq!(health.restarts(), 2);
        assert_eq!(health.trips(), 1);
    }

    #[test]
    fn names_match_the_readyz_contract() {
        assert_eq!(ServiceState::Starting.to_string(), "starting");
        assert_eq!(ServiceState::Ready.to_string(), "ready");
        assert_eq!(ServiceState::Degraded.to_string(), "degraded");
        assert_eq!(ServiceState::Restarting.to_string(), "restarting");
    }
}
