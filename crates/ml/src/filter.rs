//! Attribute filters: standardisation, min–max normalisation, and
//! median imputation, fitted on training data and applied to anything
//! (the WEKA `Standardize`/`Normalize`/`ReplaceMissingValues` filters).

use serde::{Deserialize, Serialize};

use crate::data::Dataset;

/// Z-score standardisation: `(x - mean) / std` per feature, with
/// zero-variance features passed through centred.
///
/// # Examples
///
/// ```
/// use hbmd_ml::{Dataset, Standardize};
///
/// let mut data = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()])?;
/// data.push(vec![0.0], 0)?;
/// data.push(vec![10.0], 1)?;
/// let filter = Standardize::fit(&data);
/// let z = filter.transform_row(&[5.0]);
/// assert!(z[0].abs() < 1e-9, "the mean maps to zero");
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardize {
    stats: Vec<(f64, f64)>,
}

impl Standardize {
    /// Fit per-feature means and deviations on `data`.
    pub fn fit(data: &Dataset) -> Standardize {
        Standardize {
            stats: data.feature_stats(),
        }
    }

    /// Transform one row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the fitted schema.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.stats.len(), "row width mismatch");
        row.iter()
            .zip(&self.stats)
            .map(|(&x, &(mean, std))| {
                if std > 1e-12 {
                    (x - mean) / std
                } else {
                    x - mean
                }
            })
            .collect()
    }

    /// Transform a whole dataset (labels preserved).
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let rows = data.rows().iter().map(|r| self.transform_row(r)).collect();
        Dataset::from_rows(
            data.feature_names().to_vec(),
            data.class_names().to_vec(),
            rows,
            data.labels().to_vec(),
        )
        .expect("same schema")
    }
}

/// Min–max normalisation to `[0, 1]` per feature; constant features map
/// to 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxNormalize {
    ranges: Vec<(f64, f64)>,
}

impl MinMaxNormalize {
    /// Fit per-feature ranges on `data`.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty (a range needs at least one value).
    pub fn fit(data: &Dataset) -> MinMaxNormalize {
        assert!(!data.is_empty(), "cannot fit ranges on an empty dataset");
        let ranges = (0..data.num_features())
            .map(|j| {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for row in data.rows() {
                    lo = lo.min(row[j]);
                    hi = hi.max(row[j]);
                }
                (lo, hi)
            })
            .collect();
        MinMaxNormalize { ranges }
    }

    /// Transform one row; out-of-range values are clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the fitted schema.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.ranges.len(), "row width mismatch");
        row.iter()
            .zip(&self.ranges)
            .map(|(&x, &(lo, hi))| {
                if hi - lo > 1e-12 {
                    ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Transform a whole dataset (labels preserved).
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let rows = data.rows().iter().map(|r| self.transform_row(r)).collect();
        Dataset::from_rows(
            data.feature_names().to_vec(),
            data.class_names().to_vec(),
            rows,
            data.labels().to_vec(),
        )
        .expect("same schema")
    }
}

/// Median imputation for corrupted readings: per-feature medians are
/// fitted over the *finite* training values, then any non-finite value
/// (NaN from a starved multiplexed counter, ±∞ from a scaling blowup)
/// is replaced by its feature's median — WEKA's `ReplaceMissingValues`
/// with medians instead of means, which survive the heavy-tailed
/// corruption fault injection produces.
///
/// # Examples
///
/// ```
/// use hbmd_ml::{Dataset, Impute};
///
/// let mut data = Dataset::new(vec!["x".into()], vec!["a".into(), "b".into()])?;
/// data.push(vec![1.0], 0)?;
/// data.push(vec![3.0], 1)?;
/// data.push(vec![100.0], 0)?;
/// let filter = Impute::fit(&data);
/// assert_eq!(filter.transform_row(&[f64::NAN]), vec![3.0]);
/// # Ok::<(), hbmd_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Impute {
    medians: Vec<f64>,
}

impl Impute {
    /// Fit per-feature medians over the finite training values; a
    /// feature with no finite values at all imputes to zero.
    pub fn fit(data: &Dataset) -> Impute {
        let medians = (0..data.num_features())
            .map(|j| {
                let mut finite: Vec<f64> = data
                    .rows()
                    .iter()
                    .map(|r| r[j])
                    .filter(|v| v.is_finite())
                    .collect();
                median_in_place(&mut finite)
            })
            .collect();
        Impute { medians }
    }

    /// The fitted per-feature medians.
    pub fn medians(&self) -> &[f64] {
        &self.medians
    }

    /// Transform one row: non-finite values become their feature's
    /// median, finite values pass through untouched.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the fitted schema.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.medians.len(), "row width mismatch");
        row.iter()
            .zip(&self.medians)
            .map(|(&x, &median)| if x.is_finite() { x } else { median })
            .collect()
    }

    /// Transform a whole dataset (labels preserved).
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let rows = data.rows().iter().map(|r| self.transform_row(r)).collect();
        Dataset::from_rows(
            data.feature_names().to_vec(),
            data.class_names().to_vec(),
            rows,
            data.labels().to_vec(),
        )
        .expect("same schema")
    }
}

/// Median of `values` (sorted in place); zero for an empty slice. Even
/// lengths average the middle pair.
pub(crate) fn median_in_place(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

use crate::snap::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for Standardize {
    fn snap(&self, w: &mut SnapWriter) {
        self.stats.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Standardize {
            stats: Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(
            vec!["a".into(), "flat".into()],
            vec!["x".into(), "y".into()],
        )
        .expect("schema");
        for i in 0..5 {
            d.push(vec![i as f64 * 2.0, 7.0], i % 2).expect("row");
        }
        d
    }

    #[test]
    fn standardize_produces_zero_mean_unit_variance() {
        let d = toy();
        let f = Standardize::fit(&d);
        let t = f.transform(&d);
        let stats = t.feature_stats();
        assert!(stats[0].0.abs() < 1e-9);
        assert!((stats[0].1 - 1.0).abs() < 1e-9);
        // Constant feature: centred, not scaled.
        assert!(stats[1].0.abs() < 1e-9);
        assert!(stats[1].1.abs() < 1e-9);
    }

    #[test]
    fn standardize_applies_train_stats_to_new_rows() {
        let d = toy();
        let f = Standardize::fit(&d);
        let z = f.transform_row(&[100.0, 7.0]);
        assert!(z[0] > 3.0, "far outlier stays far: {}", z[0]);
        assert_eq!(z[1], 0.0);
    }

    #[test]
    fn minmax_maps_to_unit_interval_and_clamps() {
        let d = toy();
        let f = MinMaxNormalize::fit(&d);
        let t = f.transform(&d);
        for row in t.rows() {
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        let clamped = f.transform_row(&[-50.0, 7.0]);
        assert_eq!(clamped[0], 0.0);
        let clamped = f.transform_row(&[999.0, 7.0]);
        assert_eq!(clamped[0], 1.0);
    }

    #[test]
    fn impute_replaces_only_non_finite_values() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], vec!["x".into(), "y".into()])
            .expect("schema");
        d.push(vec![1.0, f64::NAN], 0).expect("row");
        d.push(vec![3.0, 10.0], 1).expect("row");
        d.push(vec![5.0, 20.0], 0).expect("row");
        let f = Impute::fit(&d);
        // Feature medians ignore the NaN: [1,3,5] → 3, [10,20] → 15.
        assert_eq!(f.medians(), &[3.0, 15.0]);
        assert_eq!(f.transform_row(&[f64::INFINITY, 12.5]), vec![3.0, 12.5]);
        let t = f.transform(&d);
        assert!(t.rows().iter().flatten().all(|v| v.is_finite()));
        assert_eq!(t.labels(), d.labels());
    }

    #[test]
    fn impute_on_hopeless_feature_defaults_to_zero() {
        let mut d = Dataset::new(vec!["a".into()], vec!["x".into(), "y".into()]).expect("schema");
        d.push(vec![f64::NAN], 0).expect("row");
        d.push(vec![f64::NEG_INFINITY], 1).expect("row");
        let f = Impute::fit(&d);
        assert_eq!(f.transform_row(&[f64::NAN]), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let f = Standardize::fit(&toy());
        let _ = f.transform_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn minmax_rejects_empty() {
        let d = Dataset::new(vec!["a".into()], vec!["x".into(), "y".into()]).expect("schema");
        let _ = MinMaxNormalize::fit(&d);
    }
}
