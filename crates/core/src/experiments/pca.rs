//! Table 2, Figure 8 and Figures 9–12: the PCA artefacts — per-class
//! reduced feature sets, the eigen summary, and the top-2-component
//! scatter data.

use hbmd_malware::AppClass;
use hbmd_ml::Pca;
use serde::{Deserialize, Serialize};

use crate::convert::to_binary_dataset;
use crate::error::CoreError;
use crate::experiments::cache::CollectCache;
use crate::experiments::ExperimentConfig;
use crate::features::{FeaturePlan, VARIANCE_RETAINED};

/// Table 2 as data: the common features plus the per-class custom 8.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table2 {
    /// Features common to every class' top-8, ordered by average rank.
    pub common: Vec<&'static str>,
    /// `(class, top-8 feature names)` per malware family.
    pub per_class: Vec<(AppClass, Vec<&'static str>)>,
}

/// Run the Table 2 experiment: fit the feature plan on the training
/// split and report the common and per-class reduced sets.
///
/// # Errors
///
/// Propagates collection and feature-plan errors.
pub fn table2(config: &ExperimentConfig) -> Result<Table2, CoreError> {
    table2_with(CollectCache::global(), config)
}

/// [`table2`] against an explicit [`CollectCache`].
///
/// # Errors
///
/// Propagates collection and feature-plan errors.
pub fn table2_with(cache: &CollectCache, config: &ExperimentConfig) -> Result<Table2, CoreError> {
    let collection = cache.collect(config)?;
    let (train_hpc, _) = collection.dataset.split(0.7, config.split_seed);
    let plan = FeaturePlan::fit(&train_hpc)?;
    let common = plan
        .common_features(4)
        .into_iter()
        .map(|f| {
            hbmd_events::HpcEvent::from_index(f)
                .expect("valid column")
                .name()
        })
        .collect();
    Ok(Table2 {
        common,
        per_class: plan.table2(),
    })
}

/// Figure 8's content: the eigen summary of the full binary dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EigenSummary {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Fraction of variance each component explains.
    pub explained: Vec<f64>,
    /// Components needed to retain 95 % variance (`-R 0.95`).
    pub components_for_95: usize,
    /// The ranked attribute names, best first, with scores.
    pub ranking: Vec<(String, f64)>,
}

/// Run the Figure 8 experiment.
///
/// # Errors
///
/// Propagates collection and PCA errors.
pub fn eigen_summary(config: &ExperimentConfig) -> Result<EigenSummary, CoreError> {
    eigen_summary_with(CollectCache::global(), config)
}

/// [`eigen_summary`] against an explicit [`CollectCache`].
///
/// # Errors
///
/// Propagates collection and PCA errors.
pub fn eigen_summary_with(
    cache: &CollectCache,
    config: &ExperimentConfig,
) -> Result<EigenSummary, CoreError> {
    let collection = cache.collect(config)?;
    let (train_hpc, _) = collection.dataset.split(0.7, config.split_seed);
    let data = to_binary_dataset(&train_hpc);
    let pca = Pca::fit(&data)?;
    let ranking = pca
        .rank_attributes(VARIANCE_RETAINED)
        .into_iter()
        .map(|r| (r.name, r.score))
        .collect();
    Ok(EigenSummary {
        eigenvalues: pca.eigenvalues().to_vec(),
        explained: pca.explained_variance_ratio(),
        components_for_95: pca.components_for_variance(VARIANCE_RETAINED),
        ranking,
    })
}

/// One point of a Figures 9–12 scatter plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Projection onto the first principal component.
    pub pc1: f64,
    /// Projection onto the second principal component.
    pub pc2: f64,
    /// `true` for the malware class, `false` for benign.
    pub malware: bool,
}

/// Run one of the Figures 9–12 experiments: project the
/// class-vs-benign dataset onto its top two principal components.
///
/// # Errors
///
/// Returns [`CoreError::Config`] for `AppClass::Benign` and propagates
/// collection/PCA errors.
pub fn scatter(config: &ExperimentConfig, class: AppClass) -> Result<Vec<ScatterPoint>, CoreError> {
    scatter_with(CollectCache::global(), config, class)
}

/// [`scatter`] against an explicit [`CollectCache`].
///
/// # Errors
///
/// Returns [`CoreError::Config`] for `AppClass::Benign` and propagates
/// collection/PCA errors.
pub fn scatter_with(
    cache: &CollectCache,
    config: &ExperimentConfig,
    class: AppClass,
) -> Result<Vec<ScatterPoint>, CoreError> {
    if !class.is_malware() {
        return Err(CoreError::Config(
            "scatter plots compare a malware class against benign".to_owned(),
        ));
    }
    let collection = cache.collect(config)?;
    let subset = collection
        .dataset
        .filtered(|c| c == class || c == AppClass::Benign);
    let data = to_binary_dataset(&subset);
    let pca = Pca::fit(&data)?;
    Ok(data
        .iter()
        .map(|(row, label)| {
            let projected = pca.transform_row_k(row, 2);
            ScatterPoint {
                pc1: projected[0],
                pc2: projected[1],
                malware: label == 1,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_the_paper_shape() {
        let table = table2(&ExperimentConfig::fast()).expect("experiment");
        assert_eq!(table.common.len(), 4);
        assert_eq!(table.per_class.len(), 5);
        for (_, features) in &table.per_class {
            assert_eq!(features.len(), 8);
        }
    }

    #[test]
    fn eigen_summary_is_consistent() {
        let summary = eigen_summary(&ExperimentConfig::fast()).expect("experiment");
        assert_eq!(summary.eigenvalues.len(), 16);
        assert_eq!(summary.ranking.len(), 16);
        assert!((summary.explained.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(summary.components_for_95 >= 1);
        assert!(summary.components_for_95 <= 16);
        // Eigenvalues descend.
        for pair in summary.eigenvalues.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-9);
        }
    }

    #[test]
    fn scatter_separates_a_strong_class() {
        // Worms are behaviourally far from benign: their PC1 centroid
        // must be displaced.
        let points = scatter(&ExperimentConfig::fast(), AppClass::Worm).expect("experiment");
        assert!(points.len() > 10);
        let mean = |malware: bool| {
            let values: Vec<f64> = points
                .iter()
                .filter(|p| p.malware == malware)
                .map(|p| p.pc1)
                .collect();
            values.iter().sum::<f64>() / values.len() as f64
        };
        assert!((mean(true) - mean(false)).abs() > 0.5);
    }

    #[test]
    fn benign_scatter_is_rejected() {
        assert!(scatter(&ExperimentConfig::fast(), AppClass::Benign).is_err());
    }
}
